//! # gem-telemetry
//!
//! Zero-dependency runtime telemetry for the serving stack: the instruments a live
//! `gem-served` exports so an operator (or a load balancer) can *see* the replica —
//! latency distributions, queue depth, shed load — instead of inferring its health from
//! timeouts.
//!
//! Four instrument types, all lock-free (shared atomics, `Ordering::Relaxed` — the
//! hot-path cost of recording is one or two atomic RMWs, and scrapes read a consistent
//! *enough* snapshot for monitoring):
//!
//! * [`Counter`] — a monotonically increasing event count (`gem_requests_shed_total`).
//! * [`Gauge`] — an instantaneous integer level with built-in high-water tracking
//!   (`gem_queue_depth`, `gem_busy_workers`).
//! * [`FloatGauge`] — an instantaneous float level, for derived values like rates.
//! * [`Histogram`] — a log-scaled fixed-bucket latency distribution: 4 sub-buckets per
//!   power of two of microseconds (≤ ~19% relative error), with total count and sum, and
//!   quantile readout ([`Histogram::p50`] / [`Histogram::p90`] / [`Histogram::p99`]).
//!
//! [`RateWindow`] derives a per-second rate from any monotone counter with the
//! delta/elapsed idiom (observe the total, divide the growth by the time since the last
//! observation), so scrape-time rates need no background thread.
//!
//! [`MetricsRegistry`] names the instruments (with optional fixed label sets, e.g.
//! `shape="fit"`) and renders them all as Prometheus text exposition format
//! ([`MetricsRegistry::render`]): counters and gauges as their value, histograms as a
//! `summary` with `quantile="0.5" / 0.9 / 0.99"` series plus `_count` and `_sum` (in
//! seconds). The output is what `gem-served --metrics-addr` serves to scrapers.
//!
//! ```
//! use gem_telemetry::MetricsRegistry;
//! use std::time::Duration;
//!
//! let mut registry = MetricsRegistry::new();
//! let shed = registry.counter("gem_requests_shed_total", "requests shed at admission");
//! let depth = registry.gauge("gem_queue_depth", "frames waiting for an executor");
//! let lat = registry.labeled_histogram(
//!     "gem_request_seconds",
//!     "request latency by shape",
//!     &[("shape", "fit")],
//! );
//! shed.inc();
//! depth.set(3);
//! lat.record(Duration::from_micros(250));
//! let text = registry.render();
//! assert!(text.contains("# TYPE gem_requests_shed_total counter"));
//! assert!(text.contains("gem_request_seconds{shape=\"fit\",quantile=\"0.99\"}"));
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Count one event.
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Count `n` events at once.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// An instantaneous integer level (queue depth, busy workers, resident models) with a
/// built-in high-water mark: every increase also ratchets [`Gauge::high_water`], so the
/// worst observed level survives between scrapes even if the spike itself does not.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
    high_water: AtomicU64,
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Set the level outright (also ratchets the high-water mark).
    pub fn set(&self, value: u64) {
        self.value.store(value, Ordering::Relaxed);
        self.high_water.fetch_max(value, Ordering::Relaxed);
    }

    /// Raise the level to `value` if it is higher, never lowering it — a monotone
    /// "peak" gauge (e.g. the deepest any connection's pipeline has ever been) that
    /// concurrent observers can feed without a read-modify-write race.
    pub fn ratchet(&self, value: u64) {
        self.value.fetch_max(value, Ordering::Relaxed);
        self.high_water.fetch_max(value, Ordering::Relaxed);
    }

    /// Raise the level by one; returns the new level.
    pub fn inc(&self) -> u64 {
        let now = self.value.fetch_add(1, Ordering::Relaxed) + 1;
        self.high_water.fetch_max(now, Ordering::Relaxed);
        now
    }

    /// Lower the level by one (saturating at zero: a stray extra `dec` must not wrap
    /// the gauge to 2^64, which would poison every scrape after it).
    pub fn dec(&self) {
        // CAS loop instead of fetch_sub so concurrent decrements at zero saturate.
        let mut current = self.value.load(Ordering::Relaxed);
        while current > 0 {
            match self.value.compare_exchange_weak(
                current,
                current - 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => current = seen,
            }
        }
    }

    /// The current level.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// The highest level ever observed.
    pub fn high_water(&self) -> u64 {
        self.high_water.load(Ordering::Relaxed)
    }
}

/// An instantaneous float level — for derived values (rates, ratios) a scraper should
/// read as a gauge. Stored as IEEE-754 bits in an atomic, so it is lock-free like
/// everything else here.
#[derive(Debug, Default)]
pub struct FloatGauge {
    bits: AtomicU64,
}

impl FloatGauge {
    /// A gauge at 0.0.
    pub fn new() -> Self {
        FloatGauge::default()
    }

    /// Set the level.
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// The current level.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Number of histogram buckets: values 0–3 µs exactly, then 4 sub-buckets per power of
/// two up to 2^31 µs (~36 minutes) — far beyond any serving latency this stack produces.
const N_BUCKETS: usize = 124;
/// Index of the overflow bucket (everything ≥ 2^31 µs).
const LAST_BUCKET: usize = N_BUCKETS - 1;

/// A log-scaled fixed-bucket latency histogram.
///
/// Recording is one bucket `fetch_add` plus count/sum updates — no allocation, no lock,
/// no floating point. The bucket layout is log-linear (4 linear sub-buckets per power of
/// two of microseconds), so quantile readouts overestimate by at most one sub-bucket
/// (≤ ~19% relative): good enough to tell a 2 ms p99 from a 200 ms one, which is what a
/// latency SLO needs, at a fixed 1 KiB per instrument.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; N_BUCKETS],
    count: AtomicU64,
    sum_micros: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; N_BUCKETS],
            count: AtomicU64::new(0),
            sum_micros: AtomicU64::new(0),
        }
    }
}

/// Which bucket holds a value: 0–3 µs map to buckets 0–3; above that, bucket
/// `(octave - 1) * 4 + sub` where `octave = floor(log2(µs))` and `sub` is the two bits
/// after the leading one — 4 linear sub-buckets per octave.
fn bucket_index(micros: u64) -> usize {
    if micros < 4 {
        return micros as usize;
    }
    let octave = 63 - u64::from(micros.leading_zeros());
    if octave > 31 {
        return LAST_BUCKET;
    }
    let sub = (micros >> (octave - 2)) & 3;
    ((octave - 1) * 4 + sub) as usize
}

/// The exclusive upper bound of a bucket, in microseconds — what quantile readouts
/// report (conservative: never *under* the true quantile).
fn bucket_upper_micros(index: usize) -> u64 {
    if index < 4 {
        return index as u64 + 1;
    }
    let octave = (index / 4 + 1) as u64;
    let sub = (index % 4) as u64 + 1;
    (1u64 << octave) + (sub << (octave - 2))
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one duration.
    pub fn record(&self, duration: Duration) {
        self.record_micros(u64::try_from(duration.as_micros()).unwrap_or(u64::MAX));
    }

    /// Record one latency given in microseconds.
    pub fn record_micros(&self, micros: u64) {
        self.buckets[bucket_index(micros)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
    }

    /// How many durations were recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// The sum of every recorded duration, in microseconds.
    pub fn sum_micros(&self) -> u64 {
        self.sum_micros.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`0.0 < q <= 1.0`) in microseconds: the upper bound of the
    /// bucket holding the target observation. Returns 0 when nothing was recorded.
    pub fn quantile_micros(&self, q: f64) -> u64 {
        let total: u64 = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum();
        if total == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (index, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= target {
                return bucket_upper_micros(index);
            }
        }
        bucket_upper_micros(LAST_BUCKET)
    }

    /// The median latency, in microseconds.
    pub fn p50(&self) -> u64 {
        self.quantile_micros(0.50)
    }

    /// The 90th-percentile latency, in microseconds.
    pub fn p90(&self) -> u64 {
        self.quantile_micros(0.90)
    }

    /// The 99th-percentile latency, in microseconds.
    pub fn p99(&self) -> u64 {
        self.quantile_micros(0.99)
    }
}

/// A per-second rate derived from a monotone total with the delta/elapsed idiom: each
/// [`RateWindow::observe`] divides the total's growth by the time since the previous
/// observation. No background thread, no sample ring — the scraper's own cadence *is*
/// the window.
#[derive(Debug)]
pub struct RateWindow {
    origin: Instant,
    last_total: AtomicU64,
    last_micros: AtomicU64,
    rate_bits: AtomicU64,
}

impl Default for RateWindow {
    fn default() -> Self {
        RateWindow {
            origin: Instant::now(),
            last_total: AtomicU64::new(0),
            last_micros: AtomicU64::new(0),
            rate_bits: AtomicU64::new(0),
        }
    }
}

impl RateWindow {
    /// A window starting now, with a total of zero.
    pub fn new() -> Self {
        RateWindow::default()
    }

    /// Feed the current monotone total; returns events per second since the previous
    /// observation. Back-to-back observations (under a microsecond apart) and totals
    /// that went backwards return the previously computed rate instead of dividing by
    /// zero or inventing a negative rate.
    pub fn observe(&self, total: u64) -> f64 {
        let now = u64::try_from(self.origin.elapsed().as_micros()).unwrap_or(u64::MAX);
        let then = self.last_micros.swap(now, Ordering::Relaxed);
        let previous = self.last_total.swap(total, Ordering::Relaxed);
        let elapsed = now.saturating_sub(then);
        if elapsed == 0 || total < previous {
            return f64::from_bits(self.rate_bits.load(Ordering::Relaxed));
        }
        let rate = (total - previous) as f64 / (elapsed as f64 / 1e6);
        self.rate_bits.store(rate.to_bits(), Ordering::Relaxed);
        rate
    }

    /// The most recently computed rate, without feeding a new observation.
    pub fn last_rate(&self) -> f64 {
        f64::from_bits(self.rate_bits.load(Ordering::Relaxed))
    }
}

/// One registered instrument.
#[derive(Debug, Clone)]
enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Float(Arc<FloatGauge>),
    Histogram(Arc<Histogram>),
}

/// One series: an instrument plus its fixed labels (`[("shape", "fit")]`).
#[derive(Debug)]
struct Series {
    labels: Vec<(String, String)>,
    instrument: Instrument,
}

/// A named family of series sharing one `# TYPE` declaration.
#[derive(Debug)]
struct Family {
    name: String,
    help: String,
    series: Vec<Series>,
}

/// The set of named instruments a process exports, and the renderer that turns them
/// into Prometheus text exposition format.
///
/// Register instruments while building (requires `&mut self`), then share the registry
/// behind an [`Arc`] — every instrument handle is itself an `Arc`, so hot paths keep
/// their own clones and never touch the registry again.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    families: Vec<Family>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    fn family(&mut self, name: &str, help: &str) -> &mut Family {
        if let Some(at) = self.families.iter().position(|f| f.name == name) {
            return &mut self.families[at];
        }
        self.families.push(Family {
            name: name.to_string(),
            help: help.to_string(),
            series: Vec::new(),
        });
        let last = self.families.len() - 1;
        &mut self.families[last]
    }

    fn push(&mut self, name: &str, help: &str, labels: &[(&str, &str)], instrument: Instrument) {
        self.family(name, help).series.push(Series {
            labels: labels
                .iter()
                .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
                .collect(),
            instrument,
        });
    }

    /// Register an unlabeled counter.
    pub fn counter(&mut self, name: &str, help: &str) -> Arc<Counter> {
        self.labeled_counter(name, help, &[])
    }

    /// Register one counter series under `name` with fixed labels; call again with the
    /// same name and different labels to grow the family.
    pub fn labeled_counter(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
    ) -> Arc<Counter> {
        let counter = Arc::new(Counter::new());
        self.push(
            name,
            help,
            labels,
            Instrument::Counter(Arc::clone(&counter)),
        );
        counter
    }

    /// Register an unlabeled gauge.
    pub fn gauge(&mut self, name: &str, help: &str) -> Arc<Gauge> {
        self.labeled_gauge(name, help, &[])
    }

    /// Register one gauge series under `name` with fixed labels.
    pub fn labeled_gauge(&mut self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let gauge = Arc::new(Gauge::new());
        self.push(name, help, labels, Instrument::Gauge(Arc::clone(&gauge)));
        gauge
    }

    /// Register an unlabeled float gauge.
    pub fn float_gauge(&mut self, name: &str, help: &str) -> Arc<FloatGauge> {
        let gauge = Arc::new(FloatGauge::new());
        self.push(name, help, &[], Instrument::Float(Arc::clone(&gauge)));
        gauge
    }

    /// Register an unlabeled histogram.
    pub fn histogram(&mut self, name: &str, help: &str) -> Arc<Histogram> {
        self.labeled_histogram(name, help, &[])
    }

    /// Register one histogram series under `name` with fixed labels (one series per
    /// request shape is the serving stack's layout).
    pub fn labeled_histogram(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        let histogram = Arc::new(Histogram::new());
        self.push(
            name,
            help,
            labels,
            Instrument::Histogram(Arc::clone(&histogram)),
        );
        histogram
    }

    /// Render every family as Prometheus text exposition format: `# HELP` and `# TYPE`
    /// lines per family, one sample line per series (histograms as a `summary`:
    /// `quantile="0.5" / 0.9 / 0.99"` plus `_count` and `_sum`, in seconds). Families
    /// render in registration order, so output is deterministic and diffable.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for family in &self.families {
            let kind = match family.series.first().map(|s| &s.instrument) {
                Some(Instrument::Histogram(_)) => "summary",
                Some(Instrument::Counter(_)) => "counter",
                _ => "gauge",
            };
            out.push_str(&format!("# HELP {} {}\n", family.name, family.help));
            out.push_str(&format!("# TYPE {} {}\n", family.name, kind));
            for series in &family.series {
                match &series.instrument {
                    Instrument::Counter(c) => {
                        sample(
                            &mut out,
                            &family.name,
                            &series.labels,
                            &[],
                            &c.get().to_string(),
                        );
                    }
                    Instrument::Gauge(g) => {
                        sample(
                            &mut out,
                            &family.name,
                            &series.labels,
                            &[],
                            &g.get().to_string(),
                        );
                    }
                    Instrument::Float(g) => {
                        sample(
                            &mut out,
                            &family.name,
                            &series.labels,
                            &[],
                            &format!("{}", g.get()),
                        );
                    }
                    Instrument::Histogram(h) => {
                        for (q, label) in [(0.50, "0.5"), (0.90, "0.9"), (0.99, "0.99")] {
                            let seconds = h.quantile_micros(q) as f64 / 1e6;
                            sample(
                                &mut out,
                                &family.name,
                                &series.labels,
                                &[("quantile", label)],
                                &format!("{seconds}"),
                            );
                        }
                        let count_name = format!("{}_count", family.name);
                        sample(
                            &mut out,
                            &count_name,
                            &series.labels,
                            &[],
                            &h.count().to_string(),
                        );
                        let sum_name = format!("{}_sum", family.name);
                        let sum_seconds = h.sum_micros() as f64 / 1e6;
                        sample(
                            &mut out,
                            &sum_name,
                            &series.labels,
                            &[],
                            &format!("{sum_seconds}"),
                        );
                    }
                }
            }
        }
        out
    }
}

/// Append one sample line: `name{labels,extra} value`.
fn sample(
    out: &mut String,
    name: &str,
    labels: &[(String, String)],
    extra: &[(&str, &str)],
    value: &str,
) {
    out.push_str(name);
    if !labels.is_empty() || !extra.is_empty() {
        out.push('{');
        let mut first = true;
        for (key, val) in labels
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .chain(extra.iter().copied())
        {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("{key}=\"{val}\""));
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_track_levels_and_high_water() {
        let counter = Counter::new();
        counter.inc();
        counter.add(4);
        assert_eq!(counter.get(), 5);

        let gauge = Gauge::new();
        assert_eq!(gauge.inc(), 1);
        assert_eq!(gauge.inc(), 2);
        gauge.dec();
        assert_eq!(gauge.get(), 1);
        assert_eq!(gauge.high_water(), 2);
        gauge.set(7);
        assert_eq!(gauge.high_water(), 7);
        gauge.set(0);
        // Saturating: extra decrements never wrap to 2^64.
        gauge.dec();
        gauge.dec();
        assert_eq!(gauge.get(), 0);

        let rate = FloatGauge::new();
        rate.set(12.5);
        assert_eq!(rate.get(), 12.5);
    }

    #[test]
    fn bucket_layout_is_monotone_and_self_consistent() {
        // Every value lands in a bucket whose upper bound exceeds it, and bucket
        // indices never decrease as values grow.
        let mut previous_index = 0;
        for micros in (0..4096).chain([1 << 20, 1 << 30, u64::MAX]) {
            let index = bucket_index(micros);
            assert!(index >= previous_index, "non-monotone at {micros}");
            assert!(index < N_BUCKETS);
            if index < LAST_BUCKET {
                assert!(
                    bucket_upper_micros(index) > micros,
                    "upper bound {} does not cover {micros}",
                    bucket_upper_micros(index)
                );
            }
            previous_index = index;
        }
        // The log-linear promise: the upper bound overestimates by at most ~19% + 1µs.
        for micros in [10u64, 100, 1_000, 55_555, 1_000_000] {
            let upper = bucket_upper_micros(bucket_index(micros));
            assert!(
                (upper as f64) <= micros as f64 * 1.25 + 1.0,
                "{micros} -> {upper}"
            );
        }
    }

    #[test]
    fn histogram_quantiles_bracket_the_true_values() {
        let h = Histogram::new();
        assert_eq!(h.p99(), 0, "empty histograms read zero");
        // 90 fast requests at ~100µs, 10 slow ones at ~80ms.
        for _ in 0..90 {
            h.record_micros(100);
        }
        for _ in 0..10 {
            h.record(Duration::from_millis(80));
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum_micros(), 90 * 100 + 10 * 80_000);
        let p50 = h.p50();
        assert!((100..=125).contains(&p50), "p50 {p50}");
        let p99 = h.p99();
        assert!((80_000..=100_000).contains(&p99), "p99 {p99}");
        assert!(h.p90() <= p99);
    }

    #[test]
    fn histograms_are_safe_under_concurrent_recording() {
        let h = Arc::new(Histogram::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let h = Arc::clone(&h);
                scope.spawn(move || {
                    for micros in 0..1000 {
                        h.record_micros(micros);
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
        let bucket_total: u64 = h.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum();
        assert_eq!(bucket_total, 4000, "no recording is lost or double-counted");
    }

    #[test]
    fn rate_windows_divide_delta_by_elapsed() {
        let window = RateWindow::new();
        std::thread::sleep(Duration::from_millis(20));
        let rate = window.observe(100);
        // 100 events over ≥20ms: between 0 and 5000/s, and certainly positive.
        assert!(rate > 0.0 && rate <= 5_000.0, "rate {rate}");
        // A total that goes backwards (counter reset) keeps the previous rate instead
        // of going negative.
        std::thread::sleep(Duration::from_millis(1));
        assert_eq!(window.observe(50), rate);
        assert_eq!(window.last_rate(), rate);
    }

    #[test]
    fn registry_renders_prometheus_exposition_text() {
        let mut registry = MetricsRegistry::new();
        let shed = registry.counter("gem_requests_shed_total", "requests shed at admission");
        let depth = registry.gauge("gem_queue_depth", "frames awaiting an executor");
        let rate = registry.float_gauge("gem_requests_per_second", "scrape-to-scrape rate");
        let fit = registry.labeled_histogram("gem_request_seconds", "latency", &[("shape", "fit")]);
        let embed =
            registry.labeled_histogram("gem_request_seconds", "latency", &[("shape", "embed")]);
        shed.add(2);
        depth.set(5);
        rate.set(1.5);
        fit.record(Duration::from_micros(300));
        embed.record(Duration::from_micros(40));
        let text = registry.render();

        for type_line in [
            "# TYPE gem_requests_shed_total counter",
            "# TYPE gem_queue_depth gauge",
            "# TYPE gem_requests_per_second gauge",
            "# TYPE gem_request_seconds summary",
        ] {
            assert!(
                text.contains(type_line),
                "missing `{type_line}` in:\n{text}"
            );
        }
        assert!(text.contains("gem_requests_shed_total 2"));
        assert!(text.contains("gem_queue_depth 5"));
        assert!(text.contains("gem_requests_per_second 1.5"));
        // Both labeled series render under one family, each with the three quantiles
        // plus count and sum.
        for series in [
            "gem_request_seconds{shape=\"fit\",quantile=\"0.5\"}",
            "gem_request_seconds{shape=\"embed\",quantile=\"0.99\"}",
            "gem_request_seconds_count{shape=\"fit\"} 1",
            "gem_request_seconds_sum{shape=\"embed\"}",
        ] {
            assert!(text.contains(series), "missing `{series}` in:\n{text}");
        }
        // Exactly one TYPE line for the two-series family.
        assert_eq!(
            text.matches("# TYPE gem_request_seconds summary").count(),
            1
        );
        // Every sample line's metric name traces back to a TYPE declaration (the
        // well-formedness CI asserts on the live endpoint).
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let name = line.split(['{', ' ']).next().unwrap();
            let base = name.trim_end_matches("_count").trim_end_matches("_sum");
            assert!(
                text.contains(&format!("# TYPE {base} ")),
                "sample `{line}` has no TYPE declaration"
            );
        }
    }
}
