//! Operate an on-disk model store from the command line.
//!
//! ```sh
//! store list <dir>                      # entries, oldest first
//! store stats <dir>                     # entry count and total bytes
//! store inspect <dir> <fingerprint>     # validate one snapshot and summarise the model
//! store gc <dir> [--max-age-secs N] [--max-entries N] [--max-bytes N] [--dry-run]
//! ```
//!
//! `<fingerprint>` is the hex key a snapshot files under (`<corpus>-<config>`, as
//! printed by `store list`). `gc` with no bounds removes nothing; `--dry-run` prints
//! what would be removed — entry count **and** the bytes it would free — without
//! deleting.
//!
//! Exit codes (scriptable):
//! * `0` — success,
//! * `1` — usage or I/O failure,
//! * `2` — `inspect` of a fingerprint with no snapshot,
//! * `3` — `inspect` of a snapshot that exists but is corrupt or version-mismatched.

use gem_core::Composition;
use gem_store::{GcPolicy, ModelStore, StoreEntry, StoreError};
use std::process::ExitCode;
use std::time::{Duration, SystemTime};

/// A failed command, carrying its exit code class.
enum Failure {
    /// Bad arguments or an I/O problem (exit 1).
    Usage(String),
    /// The inspected fingerprint has no snapshot (exit 2).
    Missing(String),
    /// The inspected snapshot exists but cannot be trusted (exit 3).
    Damaged(String),
}

impl From<String> for Failure {
    fn from(message: String) -> Self {
        Failure::Usage(message)
    }
}

fn age_of(entry: &StoreEntry) -> String {
    match SystemTime::now().duration_since(entry.modified) {
        Ok(age) => format!("{}s", age.as_secs()),
        Err(_) => "future".to_string(),
    }
}

fn list(store: &ModelStore) -> Result<(), String> {
    let entries = store.list().map_err(|e| e.to_string())?;
    println!("{:<33} {:>10} {:>8}", "fingerprint", "bytes", "age");
    for entry in &entries {
        println!(
            "{:<33} {:>10} {:>8}",
            entry.key.to_hex(),
            entry.bytes,
            age_of(entry)
        );
    }
    println!("{} entries", entries.len());
    Ok(())
}

fn stats(store: &ModelStore) -> Result<(), String> {
    let stats = store.stats().map_err(|e| e.to_string())?;
    println!(
        "{} entries, {} bytes ({})",
        stats.entries,
        stats.total_bytes,
        store.dir().display()
    );
    Ok(())
}

fn inspect(store: &ModelStore, fingerprint: &str) -> Result<(), Failure> {
    let key = ModelStore::parse_key(fingerprint).map_err(|e| Failure::Usage(e.to_string()))?;
    let model = store
        .load(key)
        .map_err(|e| match e {
            // The snapshot is there but cannot be trusted: distinct exit code so
            // monitoring can tell "never persisted" from "persisted and damaged".
            StoreError::Corrupt { .. } | StoreError::VersionMismatch { .. } => {
                Failure::Damaged(e.to_string())
            }
            other => Failure::Usage(other.to_string()),
        })?
        .ok_or_else(|| Failure::Missing(format!("no snapshot for {fingerprint}")))?;
    println!("fingerprint:    {}", key.to_hex());
    println!("path:           {}", store.path_of(key).display());
    println!("features:       {}", model.features().label());
    println!("composition:    {}", model.config().composition.label());
    match model.gmm() {
        Some(gmm) => println!("gmm:            {} components", gmm.n_components()),
        None => println!("gmm:            (not fitted — no distributional features)"),
    }
    println!(
        "scaler:         {}",
        if model.scaler().is_some() {
            "fitted"
        } else {
            "(not fitted — no statistical features)"
        }
    );
    if let Composition::Autoencoder { latent_dim, .. } = model.config().composition {
        println!("autoencoder:    latent dim {latent_dim}");
    }
    println!("fit columns:    {}", model.n_fit_columns());
    println!("embedding dim:  {}", model.dim());
    println!(
        "approx memory:  {} bytes resident",
        model.approx_mem_bytes()
    );
    Ok(())
}

fn gc(store: &ModelStore, args: &[String]) -> Result<(), String> {
    let mut policy = GcPolicy::default();
    let mut dry_run = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut parse = |name: &str| -> Result<u64, String> {
            iter.next()
                .and_then(|v| v.parse::<u64>().ok())
                .ok_or_else(|| format!("{name} needs a non-negative integer"))
        };
        match arg.as_str() {
            "--max-age-secs" => {
                policy.max_age = Some(Duration::from_secs(parse("--max-age-secs")?))
            }
            "--max-entries" => policy.max_entries = Some(parse("--max-entries")? as usize),
            "--max-bytes" => policy.max_total_bytes = Some(parse("--max-bytes")?),
            "--dry-run" => dry_run = true,
            other => return Err(format!("unknown gc flag `{other}`")),
        }
    }
    let removed = if dry_run {
        store.gc_plan(&policy).map_err(|e| e.to_string())?
    } else {
        store.gc(&policy).map_err(|e| e.to_string())?
    };
    let verb = if dry_run { "would remove" } else { "removed" };
    for entry in &removed {
        println!("{verb} {} ({} bytes)", entry.key.to_hex(), entry.bytes);
    }
    let freed: u64 = removed.iter().map(|e| e.bytes).sum();
    let freed_verb = if dry_run { "would be freed" } else { "freed" };
    println!(
        "{} entries {verb}, {freed} bytes {freed_verb}",
        removed.len()
    );
    Ok(())
}

fn run() -> Result<(), Failure> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let usage = "usage: store <list|stats|inspect|gc> <dir> [args]\n  \
                 store list <dir>\n  \
                 store stats <dir>\n  \
                 store inspect <dir> <fingerprint>\n  \
                 store gc <dir> [--max-age-secs N] [--max-entries N] [--max-bytes N] [--dry-run]";
    let (command, dir) = match (args.first(), args.get(1)) {
        (Some(command), Some(dir)) => (command.as_str(), dir),
        _ => return Err(Failure::Usage(usage.to_string())),
    };
    // Every CLI command observes an existing store; silently mkdir-ing a typo'd path
    // and reporting it as an empty store would mislead the operator.
    if !std::path::Path::new(dir).is_dir() {
        return Err(Failure::Usage(format!(
            "`{dir}` is not a directory (stores are created by the serving process, not the CLI)"
        )));
    }
    let store = ModelStore::open(dir).map_err(|e| Failure::Usage(e.to_string()))?;
    match command {
        "list" => list(&store).map_err(Failure::from),
        "stats" => stats(&store).map_err(Failure::from),
        "inspect" => {
            let fingerprint = args
                .get(2)
                .ok_or_else(|| Failure::Usage("inspect needs a <fingerprint>".to_string()))?;
            inspect(&store, fingerprint)
        }
        "gc" => gc(&store, &args[2..]).map_err(Failure::from),
        other => Err(Failure::Usage(format!(
            "unknown command `{other}`\n{usage}"
        ))),
    }
}

fn main() -> ExitCode {
    let (message, code) = match run() {
        Ok(()) => return ExitCode::SUCCESS,
        Err(Failure::Usage(message)) => (message, 1),
        Err(Failure::Missing(message)) => (message, 2),
        Err(Failure::Damaged(message)) => (message, 3),
    };
    eprintln!("store: {message}");
    ExitCode::from(code)
}
