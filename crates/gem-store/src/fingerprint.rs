//! Deterministic model keys: a corpus fingerprint combined with a configuration hash.
//!
//! A fitted [`gem_core::GemModel`] is a pure function of the fit corpus and the
//! configuration, so a cache can key models by a fingerprint of both. The fingerprint
//! must be deterministic across runs and platforms (FNV-1a over explicit byte
//! encodings — no `DefaultHasher`, whose seeds vary per process) and sensitive to every
//! input that changes the fitted model: any value bit, any header byte, the column
//! order, and every configuration field.

use gem_core::{FeatureSet, GemColumn, GemConfig};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// An incremental 64-bit FNV-1a hasher — the workspace's canonical implementation
/// (exposed so digest-printing tools don't grow their own copies of the constants).
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv1a {
    /// A hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv1a(FNV_OFFSET)
    }

    /// Absorb raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorb a `u64` as its little-endian bytes.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The digest so far.
    pub fn finish(self) -> u64 {
        self.0
    }
}

/// The cache key of one fitted model: which corpus it was fitted on and with which
/// configuration. Identical inputs always produce identical keys; distinct inputs
/// produce distinct keys up to 64-bit FNV-1a collisions — FNV is fast and stable but not
/// collision-resistant, so the cache assumes cooperating callers (a serving deployment's
/// own corpora), not adversarial ones. A collision would serve the colliding corpus's
/// model; swap in a cryptographic digest before exposing the cache to untrusted input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ModelKey {
    /// Fingerprint of the fit corpus (values, headers and column order).
    pub corpus: u64,
    /// Fingerprint of the pipeline configuration and feature set.
    pub config: u64,
}

impl ModelKey {
    /// Canonical hex rendering `{corpus:016x}-{config:016x}` — the address a model store
    /// files the key's model under, and the form the `store` CLI accepts.
    pub fn to_hex(self) -> String {
        format!("{:016x}-{:016x}", self.corpus, self.config)
    }

    /// Parse a [`ModelKey::to_hex`] rendering. Returns `None` for anything that is not
    /// exactly two 16-digit lower-case hex halves joined by `-` — the strictness
    /// guarantees `from_hex(k.to_hex()) == Some(k)` *and* that every accepted string is
    /// some key's `to_hex` (no `+`-prefixed or upper-case aliases for the same key).
    pub fn from_hex(text: &str) -> Option<ModelKey> {
        let (corpus, config) = text.split_once('-')?;
        let parse = |half: &str| -> Option<u64> {
            if half.len() != 16 || !half.bytes().all(|b| matches!(b, b'0'..=b'9' | b'a'..=b'f')) {
                return None;
            }
            u64::from_str_radix(half, 16).ok()
        };
        Some(ModelKey {
            corpus: parse(corpus)?,
            config: parse(config)?,
        })
    }
}

impl std::fmt::Display for ModelKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// Fingerprint a corpus: every value bit (via `f64::to_bits`, so `-0.0` vs `0.0` and NaN
/// payloads are distinguished), every header byte, and the column order and boundaries.
pub fn corpus_fingerprint(columns: &[GemColumn]) -> u64 {
    let mut h = CorpusHasher::new(columns.len() as u64);
    h.push_columns(columns);
    h.finish()
}

/// Incremental form of [`corpus_fingerprint`] for corpora that arrive in slices — the
/// binary wire codec's chunked upload streams columns through one of these so a server
/// (or routing tier) computes the fingerprint **as chunks land**, without a second pass
/// over the assembled corpus. The digest depends only on the column stream, never on
/// chunk boundaries: feeding the same columns in any slicing yields exactly
/// `corpus_fingerprint` of the whole — which is what keeps a chunk-uploaded fit's handle
/// bit-identical to the key the client computes locally.
///
/// The total column count is hashed first (it prefixes the flat encoding), which is why
/// the chunked upload protocol declares it up front in `begin_fit`.
#[derive(Debug, Clone, Copy)]
pub struct CorpusHasher {
    h: Fnv1a,
}

impl CorpusHasher {
    /// Start a corpus digest that will cover exactly `total_columns` columns.
    pub fn new(total_columns: u64) -> Self {
        let mut h = Fnv1a::new();
        h.write_u64(total_columns);
        CorpusHasher { h }
    }

    /// Absorb the next column of the stream (corpus order).
    pub fn push_column(&mut self, column: &GemColumn) {
        self.h.write_u64(column.header.len() as u64);
        self.h.write(column.header.as_bytes());
        self.h.write_u64(column.values.len() as u64);
        for &v in &column.values {
            self.h.write_u64(v.to_bits());
        }
    }

    /// Absorb a slice of consecutive columns.
    pub fn push_columns(&mut self, columns: &[GemColumn]) {
        for column in columns {
            self.push_column(column);
        }
    }

    /// The corpus fingerprint. Equals [`corpus_fingerprint`] of the concatenated stream
    /// when exactly the declared number of columns was pushed.
    pub fn finish(self) -> u64 {
        self.h.finish()
    }
}

/// Fingerprint a pipeline configuration plus feature set. Hashes the `Debug` rendering,
/// which covers every field of [`GemConfig`] (including the nested GMM configuration and
/// composition) and stays in sync automatically when fields are added; float fields
/// render with shortest-round-trip formatting, so distinct values never collide.
///
/// The `parallel` flag is canonicalised away first: it selects the execution strategy,
/// not the fitted model (the parallel and serial paths are bit-identical by
/// construction), so requests differing only in it share one cached model.
pub fn config_fingerprint(config: &GemConfig, features: FeatureSet) -> u64 {
    let canonical = config.clone().with_parallel(true);
    let mut h = Fnv1a::new();
    h.write(format!("{canonical:?}|{features:?}").as_bytes());
    h.finish()
}

/// The full model key for fitting `config`/`features` on `columns`.
pub fn model_key(columns: &[GemColumn], config: &GemConfig, features: FeatureSet) -> ModelKey {
    ModelKey {
        corpus: corpus_fingerprint(columns),
        config: config_fingerprint(config, features),
    }
}

/// The key of the model produced by folding `new_columns` into the model at `parent` via
/// `GemModel::fit_update`.
///
/// The corpus half is a domain-separated chain over the parent's corpus fingerprint and
/// the new columns' fingerprint, so it is sensitive to the *entire update history*: the
/// same new columns folded into different parents — or the same columns applied in a
/// different order along an update chain — yield distinct keys, and an updated model can
/// never collide with a from-scratch fit of the grown corpus (which would wrongly claim
/// its parameters were re-estimated). The config half is inherited unchanged: an update
/// reuses the parent's frozen configuration by definition.
pub fn updated_model_key(parent: ModelKey, new_columns: &[GemColumn]) -> ModelKey {
    updated_model_key_from_fingerprint(parent, corpus_fingerprint(new_columns))
}

/// [`updated_model_key`] when the new columns' fingerprint is already known — e.g.
/// computed incrementally by a [`CorpusHasher`] while a chunked upload streamed in, so
/// routing a chunked `fit_update` never re-walks the assembled corpus.
pub fn updated_model_key_from_fingerprint(parent: ModelKey, new_corpus: u64) -> ModelKey {
    let mut h = Fnv1a::new();
    h.write(b"gem-fit-update");
    h.write_u64(parent.corpus);
    h.write_u64(new_corpus);
    ModelKey {
        corpus: h.finish(),
        config: parent.config,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn columns() -> Vec<GemColumn> {
        vec![
            GemColumn::new(vec![1.0, 2.0, 3.0], "age"),
            GemColumn::new(vec![10.0, 20.0], "price"),
        ]
    }

    #[test]
    fn fingerprint_is_deterministic() {
        assert_eq!(
            corpus_fingerprint(&columns()),
            corpus_fingerprint(&columns())
        );
        let cfg = GemConfig::fast();
        assert_eq!(
            config_fingerprint(&cfg, FeatureSet::ds()),
            config_fingerprint(&cfg, FeatureSet::ds())
        );
    }

    #[test]
    fn fingerprint_is_sensitive_to_values_headers_and_order() {
        let base = corpus_fingerprint(&columns());
        let mut changed_value = columns();
        changed_value[0].values[1] = 2.0000000001;
        assert_ne!(base, corpus_fingerprint(&changed_value));
        let mut changed_header = columns();
        changed_header[1].header = "cost".to_string();
        assert_ne!(base, corpus_fingerprint(&changed_header));
        let mut reordered = columns();
        reordered.swap(0, 1);
        assert_ne!(base, corpus_fingerprint(&reordered));
        // Moving a value across a column boundary changes the key even though the flat
        // value stream is unchanged.
        let regrouped = vec![
            GemColumn::new(vec![1.0, 2.0], "age"),
            GemColumn::new(vec![3.0, 10.0, 20.0], "price"),
        ];
        let grouped = vec![
            GemColumn::new(vec![1.0, 2.0, 3.0], "age"),
            GemColumn::new(vec![10.0, 20.0], "price"),
        ];
        assert_ne!(corpus_fingerprint(&regrouped), corpus_fingerprint(&grouped));
    }

    #[test]
    fn fingerprint_distinguishes_negative_zero_from_zero() {
        let a = vec![GemColumn::values_only(vec![0.0])];
        let b = vec![GemColumn::values_only(vec![-0.0])];
        assert_ne!(corpus_fingerprint(&a), corpus_fingerprint(&b));
    }

    #[test]
    fn config_fingerprint_is_sensitive_to_every_axis() {
        let base = config_fingerprint(&GemConfig::fast(), FeatureSet::ds());
        assert_ne!(
            base,
            config_fingerprint(&GemConfig::fast(), FeatureSet::dsc())
        );
        let mut more_components = GemConfig::fast();
        more_components.gmm.n_components += 1;
        assert_ne!(base, config_fingerprint(&more_components, FeatureSet::ds()));
        let mut other_seed = GemConfig::fast();
        other_seed.gmm.seed ^= 1;
        assert_ne!(base, config_fingerprint(&other_seed, FeatureSet::ds()));
        let agg = GemConfig::fast().with_composition(gem_core::Composition::Aggregation);
        assert_ne!(base, config_fingerprint(&agg, FeatureSet::ds()));
    }

    #[test]
    fn parallel_flag_does_not_change_the_fingerprint() {
        // `parallel` picks the execution strategy, not the model; both settings produce
        // bit-identical fits, so they must share one cache entry.
        let serial = GemConfig::fast().with_parallel(false);
        let parallel = GemConfig::fast().with_parallel(true);
        assert_eq!(
            config_fingerprint(&serial, FeatureSet::ds()),
            config_fingerprint(&parallel, FeatureSet::ds())
        );
    }

    #[test]
    fn model_key_hex_rendering_round_trips() {
        let key = model_key(&columns(), &GemConfig::fast(), FeatureSet::ds());
        let hex = key.to_hex();
        assert_eq!(hex.len(), 33);
        assert_eq!(ModelKey::from_hex(&hex), Some(key));
        assert_eq!(format!("{key}"), hex);
        for bad in [
            "",
            "abc",
            "0-1",
            &hex[..32],
            "zzzzzzzzzzzzzzzz-0000000000000000",
            // Aliases u64 parsing would accept but to_hex never produces.
            "+fffffffffffffff-0000000000000000",
            "FFFFFFFFFFFFFFFF-0000000000000000",
        ] {
            assert_eq!(ModelKey::from_hex(bad), None, "{bad}");
        }
    }

    #[test]
    fn updated_key_is_chain_sensitive_and_collision_free() {
        let cfg = GemConfig::fast();
        let parent = model_key(&columns(), &cfg, FeatureSet::ds());
        let growth = vec![GemColumn::new(vec![5.0, 6.0], "score")];
        let updated = updated_model_key(parent, &growth);
        // Config half inherited, corpus half distinct from both the parent's and a
        // from-scratch fit of the grown corpus.
        assert_eq!(updated.config, parent.config);
        assert_ne!(updated.corpus, parent.corpus);
        let mut grown = columns();
        grown.extend(growth.iter().cloned());
        let refit = model_key(&grown, &cfg, FeatureSet::ds());
        assert_ne!(updated.corpus, refit.corpus);
        // Deterministic, parent-sensitive, and order-sensitive along a chain.
        assert_eq!(updated, updated_model_key(parent, &growth));
        let other_parent = model_key(&grown, &cfg, FeatureSet::ds());
        assert_ne!(updated, updated_model_key(other_parent, &growth));
        let second = vec![GemColumn::new(vec![7.0], "rank")];
        let a_then_b = updated_model_key(updated_model_key(parent, &growth), &second);
        let b_then_a = updated_model_key(updated_model_key(parent, &second), &growth);
        assert_ne!(a_then_b, b_then_a);
    }

    #[test]
    fn incremental_hashing_is_chunking_invariant() {
        // The chunked-upload equality the wire protocol depends on: any slicing of the
        // column stream digests to the one-shot fingerprint.
        let corpus: Vec<GemColumn> = (0..17)
            .map(|c| {
                GemColumn::new(
                    (0..(c % 5) + 1)
                        .map(|i| (c * 31 + i) as f64 * 0.25 - 3.0)
                        .collect(),
                    format!("col_{c}"),
                )
            })
            .collect();
        let one_shot = corpus_fingerprint(&corpus);
        for chunk_size in [1, 2, 3, 5, 16, 17, 100] {
            let mut h = CorpusHasher::new(corpus.len() as u64);
            for slice in corpus.chunks(chunk_size) {
                h.push_columns(slice);
            }
            assert_eq!(h.finish(), one_shot, "chunk_size {chunk_size}");
        }
        // Column-at-a-time matches too, and the declared count matters.
        let mut h = CorpusHasher::new(corpus.len() as u64);
        for column in &corpus {
            h.push_column(column);
        }
        assert_eq!(h.finish(), one_shot);
        let mut wrong_total = CorpusHasher::new(corpus.len() as u64 + 1);
        wrong_total.push_columns(&corpus);
        assert_ne!(wrong_total.finish(), one_shot);
    }

    #[test]
    fn updated_key_from_fingerprint_matches_the_column_form() {
        let cfg = GemConfig::fast();
        let parent = model_key(&columns(), &cfg, FeatureSet::ds());
        let growth = vec![GemColumn::new(vec![5.0, 6.0], "score")];
        let mut h = CorpusHasher::new(growth.len() as u64);
        h.push_columns(&growth);
        assert_eq!(
            updated_model_key_from_fingerprint(parent, h.finish()),
            updated_model_key(parent, &growth)
        );
    }

    #[test]
    fn model_key_combines_both_fingerprints() {
        let cfg = GemConfig::fast();
        let key = model_key(&columns(), &cfg, FeatureSet::ds());
        assert_eq!(key.corpus, corpus_fingerprint(&columns()));
        assert_eq!(key.config, config_fingerprint(&cfg, FeatureSet::ds()));
        let other = model_key(&columns(), &cfg, FeatureSet::d());
        assert_eq!(key.corpus, other.corpus);
        assert_ne!(key, other);
    }
}
