//! # gem-store
//!
//! Full [`gem_core::GemModel`] persistence: deterministic model fingerprints and a
//! fingerprint-addressed on-disk store, the durability tier of the serving stack.
//!
//! The EM fit is the expensive step of the Gem pipeline; PR 2's in-memory model cache
//! amortises it *within* a process, but every restart still re-paid ~90ms per model.
//! This crate closes that gap:
//!
//! * [`fingerprint`] — deterministic [`ModelKey`]s (FNV-1a over every value bit, header
//!   byte, column boundary and configuration field). Moved here from `gem-serve` so the
//!   cache key and the storage address are literally the same value; `gem-serve`
//!   re-exports it unchanged.
//! * [`ModelStore`] — a directory of serialised models, one file per key
//!   (`<corpus>-<config>.gem.json`), written atomically (temp file + rename) with a
//!   magic/version header that is validated before any payload is interpreted.
//!   [`ModelStore::list`] / [`ModelStore::gc`] / [`ModelStore::stats`] operate the
//!   directory; the `store` CLI bin wraps them for humans.
//!
//! A saved model reloaded in a fresh process produces **bit-identical**
//! `GemModel::transform` output — every fitted component (GMM, Equation 7 scaler,
//! autoencoder weights, text embedder) round-trips exactly (weights via IEEE-754 bit
//! patterns). `gem-serve`'s `ModelCache` uses the store as its second tier: evicted
//! models spill to disk and cache misses warm-start from disk before falling back to a
//! cold fit.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod fingerprint;
mod store;

pub use fingerprint::{
    config_fingerprint, corpus_fingerprint, model_key, updated_model_key,
    updated_model_key_from_fingerprint, CorpusHasher, ModelKey,
};
pub use store::{
    decode_snapshot, encode_snapshot, encode_snapshot_with_parent, snapshot_parent, GcPolicy,
    ModelStore, SnapshotError, StoreEntry, StoreError, StoreStats, STORE_FORMAT_MIN_VERSION,
    STORE_FORMAT_VERSION, STORE_MAGIC,
};
