//! The fingerprint-addressed on-disk model store.
//!
//! A [`ModelStore`] is a directory of serialised [`GemModel`]s, one file per
//! [`ModelKey`], named by the key's hex rendering. It is the persistence tier beneath
//! the in-memory serving cache: evicted models spill here, and a fresh process
//! warm-starts from here instead of re-paying the EM fit.
//!
//! Durability properties:
//!
//! * **Atomic writes** — models are written to a temporary file in the store directory
//!   and `rename`d into place, so a crash mid-write can never leave a half-written file
//!   under a valid key name; readers either see the old snapshot or the new one.
//! * **Versioned headers** — every file carries a magic string and a format version,
//!   validated on load *before* the model payload is interpreted. A snapshot written by
//!   an incompatible future format is rejected with [`StoreError::VersionMismatch`], and
//!   anything unparseable with [`StoreError::Corrupt`] — never silently misread.
//! * **Key integrity** — the header repeats the model key; a file whose header key
//!   disagrees with its filename (a renamed or copied snapshot) is rejected as corrupt.

use crate::fingerprint::ModelKey;
use gem_core::GemModel;
use gem_json::{object, string, FromJson, Json, ToJson};
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, SystemTime};

/// Magic string identifying a model-store file.
pub const STORE_MAGIC: &str = "gem-model-store";

/// On-disk format version of the store envelope (the wrapper around the model payload;
/// the payload itself carries [`gem_core::GEM_MODEL_SCHEMA_VERSION`] separately).
///
/// Version history:
/// * `1` — magic, format version, key, model payload.
/// * `2` — adds the optional `parent` lineage field recording the [`ModelKey`] a
///   `fit_update` model was derived from.
///
/// Writers emit the *lowest* version that can express a snapshot (version 1 when there
/// is no lineage to record), so plain snapshots stay readable by older builds during a
/// rolling upgrade; readers accept every version from
/// [`STORE_FORMAT_MIN_VERSION`] to [`STORE_FORMAT_VERSION`].
pub const STORE_FORMAT_VERSION: u64 = 2;

/// Oldest store envelope version this build still reads (version-1 snapshots simply
/// have no lineage recorded).
pub const STORE_FORMAT_MIN_VERSION: u64 = 1;

/// Filename suffix of store entries.
const ENTRY_SUFFIX: &str = ".gem.json";

/// Monotonic discriminator for temporary file names, so concurrent saves within one
/// process never collide (cross-process collisions are prevented by the pid component).
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Why a snapshot envelope (the JSON object a store file holds — and the payload a
/// `PushModel` serving request ships) failed to validate, independent of any file path.
/// [`StoreError`] wraps this with the offending path when the envelope came from disk.
#[derive(Debug)]
pub enum SnapshotError {
    /// The envelope could not be interpreted (bad magic, malformed header or payload).
    Corrupt {
        /// Why it was rejected.
        reason: String,
    },
    /// The envelope was written by a snapshot format this build does not read.
    VersionMismatch {
        /// Version found in the envelope header.
        found: u64,
        /// Version this build reads ([`STORE_FORMAT_VERSION`]).
        expected: u64,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Corrupt { reason } => write!(f, "corrupt model snapshot: {reason}"),
            SnapshotError::VersionMismatch { found, expected } => write!(
                f,
                "model snapshot has format version {found}, this build reads {expected}"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Encode the snapshot envelope for (`key`, `model`): the exact JSON object
/// [`ModelStore::save`] writes to disk — magic, format version, the key, and the full
/// model payload. The serving protocol's `PushModel`/`PullModel` requests ship this
/// object verbatim, so a pulled snapshot is byte-interchangeable with a store file.
pub fn encode_snapshot(key: ModelKey, model: &GemModel) -> Json {
    encode_snapshot_with_parent(key, None, model)
}

/// [`encode_snapshot`] with lineage: when `parent` is `Some`, the envelope records the
/// key of the model this one was derived from by an incremental `fit_update`, and the
/// header carries format version 2. With `parent: None` the output is byte-identical to
/// a plain [`encode_snapshot`] (version 1) — lineage-free snapshots never pay the
/// version bump.
pub fn encode_snapshot_with_parent(
    key: ModelKey,
    parent: Option<ModelKey>,
    model: &GemModel,
) -> Json {
    let version = if parent.is_some() {
        STORE_FORMAT_VERSION
    } else {
        STORE_FORMAT_MIN_VERSION
    };
    let mut fields = vec![
        ("magic", string(STORE_MAGIC)),
        ("format_version", gem_json::u64_number(version)),
        ("key", string(key.to_hex())),
    ];
    if let Some(parent) = parent {
        fields.push(("parent", string(parent.to_hex())));
    }
    fields.push(("model", model.to_json()));
    object(fields)
}

/// Decode and validate a snapshot envelope. Header validation comes first — magic, then
/// format version, then key well-formedness (and agreement with `expected_key` when the
/// caller knows which key the envelope should name) — and only a fully validated header
/// earns an attempt at the model payload. Returns the key the envelope names and the
/// rehydrated model.
///
/// # Errors
/// [`SnapshotError::VersionMismatch`] for foreign format versions,
/// [`SnapshotError::Corrupt`] for everything else.
pub fn decode_snapshot(
    envelope: &Json,
    expected_key: Option<ModelKey>,
) -> Result<(ModelKey, GemModel), SnapshotError> {
    let corrupt = |reason: String| SnapshotError::Corrupt { reason };
    let header_key = validate_snapshot_header(envelope, expected_key)?;
    let model = envelope
        .field("model")
        .map_err(|e| corrupt(e.to_string()))?;
    let model = GemModel::from_json(model).map_err(|e| corrupt(e.to_string()))?;
    Ok((header_key, model))
}

/// The lineage a snapshot envelope records: the [`ModelKey`] of the parent model a
/// `fit_update` derived this one from, or `None` for models fitted from scratch (and
/// for all version-1 envelopes, which predate lineage). The header is validated
/// exactly like [`decode_snapshot`] but the model payload is *not* rehydrated, so this
/// is cheap enough for listing tools to call per entry.
///
/// # Errors
/// As [`decode_snapshot`], minus payload errors.
pub fn snapshot_parent(envelope: &Json) -> Result<Option<ModelKey>, SnapshotError> {
    validate_snapshot_header(envelope, None)?;
    parse_parent_field(envelope)
}

/// Validate magic, format version and header key, returning the key the envelope names.
fn validate_snapshot_header(
    envelope: &Json,
    expected_key: Option<ModelKey>,
) -> Result<ModelKey, SnapshotError> {
    let corrupt = |reason: String| SnapshotError::Corrupt { reason };
    let magic = envelope
        .str_field("magic")
        .map_err(|e| corrupt(e.to_string()))?;
    if magic != STORE_MAGIC {
        return Err(corrupt(format!("bad magic `{magic}`")));
    }
    let found = envelope
        .u64_field("format_version")
        .map_err(|e| corrupt(e.to_string()))?;
    if !(STORE_FORMAT_MIN_VERSION..=STORE_FORMAT_VERSION).contains(&found) {
        return Err(SnapshotError::VersionMismatch {
            found,
            expected: STORE_FORMAT_VERSION,
        });
    }
    if found < 2 && envelope.get("parent").is_some() {
        return Err(corrupt(format!(
            "version-{found} envelope carries a `parent` field, which only version 2 defines"
        )));
    }
    let header_key = envelope
        .str_field("key")
        .map_err(|e| corrupt(e.to_string()))?;
    let header_key = ModelKey::from_hex(&header_key)
        .ok_or_else(|| corrupt(format!("malformed header key `{header_key}`")))?;
    if let Some(expected) = expected_key {
        if header_key != expected {
            return Err(corrupt(format!(
                "header key {header_key} does not match expected key {expected}"
            )));
        }
    }
    // An envelope that records lineage must record it well-formed, even for callers
    // that never look at it.
    parse_parent_field(envelope)?;
    Ok(header_key)
}

/// Parse the optional `parent` field (strictly: present means a canonical hex key).
fn parse_parent_field(envelope: &Json) -> Result<Option<ModelKey>, SnapshotError> {
    let Some(parent) = envelope.get("parent") else {
        return Ok(None);
    };
    let text = parent.as_str().ok_or_else(|| SnapshotError::Corrupt {
        reason: "`parent` field is not a string".to_string(),
    })?;
    ModelKey::from_hex(text)
        .map(Some)
        .ok_or_else(|| SnapshotError::Corrupt {
            reason: format!("malformed parent key `{text}`"),
        })
}

/// Errors from store operations.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io {
        /// The path involved.
        path: PathBuf,
        /// The OS error.
        source: std::io::Error,
    },
    /// A file existed but could not be interpreted as a model snapshot.
    Corrupt {
        /// The offending file.
        path: PathBuf,
        /// Why it was rejected.
        reason: String,
    },
    /// A file was written by a store format this build does not read.
    VersionMismatch {
        /// The offending file.
        path: PathBuf,
        /// Version found in the file header.
        found: u64,
        /// Version this build reads.
        expected: u64,
    },
    /// A caller-supplied key string is not a canonical `<corpus>-<config>` hex pair
    /// (the `*_hex` lookup entry points; typed [`ModelKey`]s cannot be malformed).
    InvalidKey {
        /// The rejected text.
        text: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, source } => {
                write!(f, "store I/O error at {}: {source}", path.display())
            }
            StoreError::Corrupt { path, reason } => {
                write!(f, "corrupt store file {}: {reason}", path.display())
            }
            StoreError::VersionMismatch {
                path,
                found,
                expected,
            } => write!(
                f,
                "store file {} has format version {found}, this build reads {expected}",
                path.display()
            ),
            StoreError::InvalidKey { text } => write!(
                f,
                "`{text}` is not a <corpus>-<config> model fingerprint (two 16-digit \
                 lower-case hex halves joined by `-`, as printed by `store list`)"
            ),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// One entry of a store listing.
#[derive(Debug, Clone)]
pub struct StoreEntry {
    /// The model key, parsed back from the filename.
    pub key: ModelKey,
    /// Absolute or store-relative path of the snapshot file.
    pub path: PathBuf,
    /// File size in bytes.
    pub bytes: u64,
    /// Last-modified time (which for an atomically renamed snapshot is its write time).
    pub modified: SystemTime,
}

/// Aggregate statistics of the on-disk state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Number of model snapshots.
    pub entries: usize,
    /// Total bytes across all snapshots.
    pub total_bytes: u64,
}

/// What [`ModelStore::gc`] is allowed to delete. Bounds combine: an entry is removed
/// when it violates *any* configured bound. Removal for the count/byte bounds is
/// oldest-first, so the working set that survives is the most recently written one.
#[derive(Debug, Clone, Copy, Default)]
pub struct GcPolicy {
    /// Remove entries whose snapshot is older than this.
    pub max_age: Option<Duration>,
    /// Keep at most this many entries.
    pub max_entries: Option<usize>,
    /// Keep at most this many total bytes.
    pub max_total_bytes: Option<u64>,
}

impl GcPolicy {
    /// A policy that only bounds entry age.
    pub fn older_than(age: Duration) -> Self {
        GcPolicy {
            max_age: Some(age),
            ..GcPolicy::default()
        }
    }
}

/// A directory of fitted models addressed by [`ModelKey`].
///
/// The store is safe to share across threads behind an `Arc` without extra locking: all
/// state lives on the filesystem, writes are atomic renames, and loads re-read the file.
#[derive(Debug)]
pub struct ModelStore {
    dir: PathBuf,
}

impl ModelStore {
    /// Open (creating if necessary) the store rooted at `dir`.
    ///
    /// # Errors
    /// Returns [`StoreError::Io`] when the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|source| StoreError::Io {
            path: dir.clone(),
            source,
        })?;
        Ok(ModelStore { dir })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The snapshot path a key files under.
    pub fn path_of(&self, key: ModelKey) -> PathBuf {
        self.dir.join(format!("{}{ENTRY_SUFFIX}", key.to_hex()))
    }

    /// Whether a snapshot exists for `key` (existence only; the file is not validated).
    pub fn contains(&self, key: ModelKey) -> bool {
        self.path_of(key).is_file()
    }

    /// Persist `model` under `key`, atomically: the envelope is written to a temporary
    /// file in the store directory, synced to disk, and renamed into place, replacing
    /// any previous snapshot for the key. Returns the snapshot path.
    ///
    /// The sync-before-rename ordering means a crash (process or power) never leaves a
    /// half-written file under a valid key name: the rename only becomes visible after
    /// the data it names is durable. (The directory entry itself is not fsynced, so a
    /// power loss immediately after rename can roll back to the *previous* snapshot —
    /// an older-but-valid state, which the loader handles like any other cold start.)
    ///
    /// # Errors
    /// Returns [`StoreError::Io`] when writing, syncing or renaming fails.
    pub fn save(&self, key: ModelKey, model: &GemModel) -> Result<PathBuf, StoreError> {
        self.save_with_parent(key, None, model)
    }

    /// [`ModelStore::save`] with lineage: records `parent` (the key of the model `model`
    /// was incrementally derived from) in the snapshot envelope, retrievable with
    /// [`ModelStore::parent_of`].
    ///
    /// # Errors
    /// As [`ModelStore::save`].
    pub fn save_with_parent(
        &self,
        key: ModelKey,
        parent: Option<ModelKey>,
        model: &GemModel,
    ) -> Result<PathBuf, StoreError> {
        let envelope = encode_snapshot_with_parent(key, parent, model);
        let target = self.path_of(key);
        let tmp = self.dir.join(format!(
            ".tmp-{}-{}-{}",
            key.to_hex(),
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let io_err = |path: &Path, source: std::io::Error| StoreError::Io {
            path: path.to_path_buf(),
            source,
        };
        let write_synced = || -> std::io::Result<()> {
            use std::io::Write;
            let mut file = fs::File::create(&tmp)?;
            file.write_all(envelope.to_compact_string().as_bytes())?;
            // Rename is atomic for the namespace only; sync the data first so the name
            // can never point at an unwritten file after a power failure.
            file.sync_all()
        };
        if let Err(e) = write_synced() {
            let _ = fs::remove_file(&tmp);
            return Err(io_err(&tmp, e));
        }
        if let Err(e) = fs::rename(&tmp, &target) {
            let _ = fs::remove_file(&tmp);
            return Err(io_err(&target, e));
        }
        Ok(target)
    }

    /// The lineage recorded for `key`'s snapshot: the parent model key a `fit_update`
    /// derived it from. Returns `Ok(None)` both when no snapshot exists and when the
    /// snapshot records no lineage (from-scratch fits, version-1 snapshots); use
    /// [`ModelStore::contains`] to distinguish. The model payload is not rehydrated.
    ///
    /// # Errors
    /// [`StoreError::Io`] on read failures, [`StoreError::VersionMismatch`] /
    /// [`StoreError::Corrupt`] for invalid snapshots.
    pub fn parent_of(&self, key: ModelKey) -> Result<Option<ModelKey>, StoreError> {
        let path = self.path_of(key);
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(source) => return Err(StoreError::Io { path, source }),
        };
        let corrupt = |reason: String| StoreError::Corrupt {
            path: path.clone(),
            reason,
        };
        let envelope = Json::parse(&text).map_err(|e| corrupt(e.to_string()))?;
        match snapshot_parent(&envelope) {
            Ok(parent) => Ok(parent),
            Err(SnapshotError::Corrupt { reason }) => Err(corrupt(reason)),
            Err(SnapshotError::VersionMismatch { found, expected }) => {
                Err(StoreError::VersionMismatch {
                    path,
                    found,
                    expected,
                })
            }
        }
    }

    /// Load the model stored under `key`. Returns `Ok(None)` when no snapshot exists;
    /// a snapshot that exists but cannot be validated is an error, never `None`, so
    /// corruption is surfaced instead of silently triggering a re-fit.
    ///
    /// # Errors
    /// [`StoreError::Io`] on read failures, [`StoreError::VersionMismatch`] for foreign
    /// format versions, [`StoreError::Corrupt`] for unparseable or inconsistent files.
    pub fn load(&self, key: ModelKey) -> Result<Option<GemModel>, StoreError> {
        let path = self.path_of(key);
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(source) => return Err(StoreError::Io { path, source }),
        };
        self.decode(&path, &text, Some(key)).map(Some)
    }

    /// Load and validate the snapshot at `path` without knowing its key in advance
    /// (the `store inspect` path). The header key must still match the filename.
    ///
    /// # Errors
    /// See [`ModelStore::load`].
    pub fn load_path(&self, path: &Path) -> Result<GemModel, StoreError> {
        let text = fs::read_to_string(path).map_err(|source| StoreError::Io {
            path: path.to_path_buf(),
            source,
        })?;
        self.decode(path, &text, entry_key(path))
    }

    fn decode(
        &self,
        path: &Path,
        text: &str,
        expected_key: Option<ModelKey>,
    ) -> Result<GemModel, StoreError> {
        let corrupt = |reason: String| StoreError::Corrupt {
            path: path.to_path_buf(),
            reason,
        };
        let envelope = Json::parse(text).map_err(|e| corrupt(e.to_string()))?;
        match decode_snapshot(&envelope, expected_key) {
            Ok((_, model)) => Ok(model),
            Err(SnapshotError::Corrupt { reason }) => Err(corrupt(reason)),
            Err(SnapshotError::VersionMismatch { found, expected }) => {
                Err(StoreError::VersionMismatch {
                    path: path.to_path_buf(),
                    found,
                    expected,
                })
            }
        }
    }

    /// Parse a caller-supplied hex fingerprint into a [`ModelKey`], rejecting anything
    /// non-canonical with [`StoreError::InvalidKey`] — the validation behind every
    /// `*_hex` entry point (the serving protocol and the `store` CLI address snapshots
    /// by hex string).
    ///
    /// # Errors
    /// Returns [`StoreError::InvalidKey`] for malformed fingerprints.
    pub fn parse_key(hex: &str) -> Result<ModelKey, StoreError> {
        ModelKey::from_hex(hex).ok_or_else(|| StoreError::InvalidKey {
            text: hex.to_string(),
        })
    }

    /// [`ModelStore::load`] addressed by hex fingerprint.
    ///
    /// # Errors
    /// [`StoreError::InvalidKey`] for malformed fingerprints, otherwise as
    /// [`ModelStore::load`].
    pub fn load_hex(&self, hex: &str) -> Result<Option<GemModel>, StoreError> {
        self.load(Self::parse_key(hex)?)
    }

    /// [`ModelStore::contains`] addressed by hex fingerprint.
    ///
    /// # Errors
    /// Returns [`StoreError::InvalidKey`] for malformed fingerprints.
    pub fn contains_hex(&self, hex: &str) -> Result<bool, StoreError> {
        Ok(self.contains(Self::parse_key(hex)?))
    }

    /// [`ModelStore::remove`] addressed by hex fingerprint.
    ///
    /// # Errors
    /// [`StoreError::InvalidKey`] for malformed fingerprints, otherwise as
    /// [`ModelStore::remove`].
    pub fn remove_hex(&self, hex: &str) -> Result<bool, StoreError> {
        self.remove(Self::parse_key(hex)?)
    }

    /// Remove the snapshot for `key`. Returns whether a snapshot existed.
    ///
    /// # Errors
    /// Returns [`StoreError::Io`] when the file exists but cannot be removed.
    pub fn remove(&self, key: ModelKey) -> Result<bool, StoreError> {
        let path = self.path_of(key);
        match fs::remove_file(&path) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(false),
            Err(source) => Err(StoreError::Io { path, source }),
        }
    }

    /// Enumerate every snapshot, oldest first (ties broken by path for determinism).
    /// Files that are not store entries (foreign files, leftover temp files) are skipped.
    ///
    /// # Errors
    /// Returns [`StoreError::Io`] when the directory cannot be read.
    pub fn list(&self) -> Result<Vec<StoreEntry>, StoreError> {
        let read_dir = fs::read_dir(&self.dir).map_err(|source| StoreError::Io {
            path: self.dir.clone(),
            source,
        })?;
        let mut entries = Vec::new();
        for item in read_dir {
            let item = item.map_err(|source| StoreError::Io {
                path: self.dir.clone(),
                source,
            })?;
            let path = item.path();
            let Some(key) = entry_key(&path) else {
                continue;
            };
            let meta = match item.metadata() {
                Ok(meta) if meta.is_file() => meta,
                _ => continue,
            };
            entries.push(StoreEntry {
                key,
                bytes: meta.len(),
                modified: meta.modified().unwrap_or(SystemTime::UNIX_EPOCH),
                path,
            });
        }
        entries.sort_by(|a, b| (a.modified, &a.path).cmp(&(b.modified, &b.path)));
        Ok(entries)
    }

    /// Aggregate on-disk statistics.
    ///
    /// # Errors
    /// Returns [`StoreError::Io`] when the directory cannot be read.
    pub fn stats(&self) -> Result<StoreStats, StoreError> {
        let entries = self.list()?;
        Ok(StoreStats {
            entries: entries.len(),
            total_bytes: entries.iter().map(|e| e.bytes).sum(),
        })
    }

    /// What [`ModelStore::gc`] would remove under `policy`, without deleting anything
    /// (the `store gc --dry-run` path). Selection is oldest-first: age-expired entries
    /// first, then survivors until the count and byte bounds hold.
    ///
    /// # Errors
    /// Returns [`StoreError::Io`] when the directory cannot be listed.
    pub fn gc_plan(&self, policy: &GcPolicy) -> Result<Vec<StoreEntry>, StoreError> {
        let entries = self.list()?; // oldest first
        let now = SystemTime::now();
        let mut keep: Vec<&StoreEntry> = Vec::new();
        let mut remove: Vec<StoreEntry> = Vec::new();
        for entry in &entries {
            let expired = policy.max_age.is_some_and(|age| {
                now.duration_since(entry.modified)
                    .is_ok_and(|elapsed| elapsed > age)
            });
            if expired {
                remove.push(entry.clone());
            } else {
                keep.push(entry);
            }
        }
        // Count / byte bounds: drop survivors oldest-first until within both.
        let mut total: u64 = keep.iter().map(|e| e.bytes).sum();
        let mut idx = 0;
        while idx < keep.len() {
            let over_count = policy.max_entries.is_some_and(|max| keep.len() - idx > max);
            let over_bytes = policy.max_total_bytes.is_some_and(|max| total > max);
            if !over_count && !over_bytes {
                break;
            }
            total -= keep[idx].bytes;
            remove.push(keep[idx].clone());
            idx += 1;
        }
        Ok(remove)
    }

    /// Apply `policy`, removing entries oldest-first until every configured bound holds.
    /// Returns the removed entries. With an empty policy nothing is removed.
    ///
    /// # Errors
    /// Returns [`StoreError::Io`] when listing or deletion fails.
    pub fn gc(&self, policy: &GcPolicy) -> Result<Vec<StoreEntry>, StoreError> {
        let remove = self.gc_plan(policy)?;
        for entry in &remove {
            fs::remove_file(&entry.path).map_err(|source| StoreError::Io {
                path: entry.path.clone(),
                source,
            })?;
        }
        Ok(remove)
    }

    /// Remove every snapshot.
    ///
    /// # Errors
    /// Returns [`StoreError::Io`] when listing or deletion fails.
    pub fn clear(&self) -> Result<usize, StoreError> {
        let entries = self.list()?;
        for entry in &entries {
            fs::remove_file(&entry.path).map_err(|source| StoreError::Io {
                path: entry.path.clone(),
                source,
            })?;
        }
        Ok(entries.len())
    }
}

/// The key a store path encodes, if it is a valid entry filename.
fn entry_key(path: &Path) -> Option<ModelKey> {
    let name = path.file_name()?.to_str()?;
    let stem = name.strip_suffix(ENTRY_SUFFIX)?;
    ModelKey::from_hex(stem)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::model_key;
    use gem_core::{FeatureSet, GemColumn, GemConfig};

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(name: &str) -> Self {
            let dir =
                std::env::temp_dir().join(format!("gem-store-test-{}-{name}", std::process::id()));
            let _ = fs::remove_dir_all(&dir);
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn corpus(seed: u64) -> Vec<GemColumn> {
        (0..4)
            .map(|c| {
                GemColumn::new(
                    (0..60)
                        .map(|i| (seed * 300 + c * 11) as f64 + (i % 13) as f64 * 0.7)
                        .collect(),
                    format!("col_{seed}_{c}"),
                )
            })
            .collect()
    }

    fn fitted(seed: u64) -> (ModelKey, GemModel) {
        let cols = corpus(seed);
        let config = GemConfig::fast();
        let key = model_key(&cols, &config, FeatureSet::ds());
        let model = GemModel::fit(&cols, &config, FeatureSet::ds()).unwrap();
        (key, model)
    }

    #[test]
    fn save_load_round_trip_transforms_bit_identically() {
        let tmp = TempDir::new("round-trip");
        let store = ModelStore::open(&tmp.0).unwrap();
        let (key, model) = fitted(1);
        let path = store.save(key, &model).unwrap();
        assert!(path.ends_with(format!("{}{ENTRY_SUFFIX}", key.to_hex())));
        assert!(store.contains(key));
        let loaded = store.load(key).unwrap().unwrap();
        let cols = corpus(1);
        assert_eq!(
            model.transform(&cols).unwrap().matrix,
            loaded.transform(&cols).unwrap().matrix
        );
        // Unknown keys are a clean None, not an error.
        let (other_key, _) = fitted(2);
        assert!(store.load(other_key).unwrap().is_none());
        assert!(!store.contains(other_key));
    }

    #[test]
    fn save_is_idempotent_and_replaces_atomically() {
        let tmp = TempDir::new("replace");
        let store = ModelStore::open(&tmp.0).unwrap();
        let (key, model) = fitted(1);
        store.save(key, &model).unwrap();
        store.save(key, &model).unwrap();
        assert_eq!(store.stats().unwrap().entries, 1);
        // No temp litter remains.
        let leftovers: Vec<_> = fs::read_dir(&tmp.0)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().starts_with(".tmp-"))
            .collect();
        assert!(leftovers.is_empty());
    }

    #[test]
    fn corrupt_files_error_instead_of_loading() {
        let tmp = TempDir::new("corrupt");
        let store = ModelStore::open(&tmp.0).unwrap();
        let (key, model) = fitted(1);
        let path = store.save(key, &model).unwrap();
        // Truncated JSON.
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, &text[..text.len() / 2]).unwrap();
        assert!(matches!(store.load(key), Err(StoreError::Corrupt { .. })));
        // Valid JSON, wrong magic.
        fs::write(&path, text.replace(STORE_MAGIC, "not-a-store")).unwrap();
        assert!(matches!(store.load(key), Err(StoreError::Corrupt { .. })));
        // Header key mismatching the filename (file copied under another name).
        let (other_key, other_model) = fitted(2);
        store.save(other_key, &other_model).unwrap();
        fs::copy(store.path_of(other_key), store.path_of(key)).unwrap();
        let err = store.load(key).unwrap_err();
        assert!(
            matches!(&err, StoreError::Corrupt { reason, .. } if reason.contains("does not match")),
            "{err}"
        );
    }

    #[test]
    fn foreign_format_versions_are_rejected_with_both_versions_reported() {
        let tmp = TempDir::new("version");
        let store = ModelStore::open(&tmp.0).unwrap();
        let (key, model) = fitted(1);
        let path = store.save(key, &model).unwrap();
        let text = fs::read_to_string(&path).unwrap();
        let needle = format!("\"format_version\":{STORE_FORMAT_MIN_VERSION}");
        assert!(text.contains(&needle), "snapshot header changed shape");
        fs::write(&path, text.replace(&needle, "\"format_version\":99")).unwrap();
        match store.load(key).unwrap_err() {
            StoreError::VersionMismatch {
                found, expected, ..
            } => {
                assert_eq!(found, 99);
                assert_eq!(expected, STORE_FORMAT_VERSION);
            }
            other => panic!("expected VersionMismatch, got {other}"),
        }
    }

    #[test]
    fn lineage_round_trips_and_plain_snapshots_stay_version_1() {
        let tmp = TempDir::new("lineage");
        let store = ModelStore::open(&tmp.0).unwrap();
        let (parent_key, parent) = fitted(1);
        store.save(parent_key, &parent).unwrap();
        // A from-scratch save records no lineage and keeps the version-1 envelope, so
        // older builds can still read it.
        assert_eq!(store.parent_of(parent_key).unwrap(), None);
        let text = fs::read_to_string(store.path_of(parent_key)).unwrap();
        assert!(text.contains(&format!("\"format_version\":{STORE_FORMAT_MIN_VERSION}")));
        assert!(!text.contains("\"parent\""));

        // A fit_update save records its parent, retrievable without rehydration, and
        // the updated model itself loads and transforms bit-identically to the parent.
        let updated = parent.fit_update(&corpus(9)).unwrap();
        let updated_key = crate::fingerprint::updated_model_key(parent_key, &corpus(9));
        store
            .save_with_parent(updated_key, Some(parent_key), &updated)
            .unwrap();
        assert_eq!(store.parent_of(updated_key).unwrap(), Some(parent_key));
        let text = fs::read_to_string(store.path_of(updated_key)).unwrap();
        assert!(text.contains(&format!("\"format_version\":{STORE_FORMAT_VERSION}")));
        let loaded = store.load(updated_key).unwrap().unwrap();
        let cols = corpus(1);
        assert_eq!(
            parent.transform(&cols).unwrap().matrix,
            loaded.transform(&cols).unwrap().matrix
        );
        // Lineage of a missing key is a clean None.
        let (other_key, _) = fitted(3);
        assert_eq!(store.parent_of(other_key).unwrap(), None);
    }

    #[test]
    fn malformed_lineage_is_rejected_as_corrupt() {
        let tmp = TempDir::new("bad-lineage");
        let store = ModelStore::open(&tmp.0).unwrap();
        let (key, model) = fitted(1);
        let (parent_key, _) = fitted(2);
        let path = store
            .save_with_parent(key, Some(parent_key), &model)
            .unwrap();
        let text = fs::read_to_string(&path).unwrap();
        // A parent that is not a canonical key is corrupt — even via load(), which
        // never looks at lineage.
        fs::write(&path, text.replace(&parent_key.to_hex(), "not-a-key")).unwrap();
        let err = store.load(key).unwrap_err();
        assert!(
            matches!(&err, StoreError::Corrupt { reason, .. } if reason.contains("parent")),
            "{err}"
        );
        assert!(store.parent_of(key).is_err());
        // A version-1 envelope must not smuggle a parent field.
        let v1 = text.replace(
            &format!("\"format_version\":{STORE_FORMAT_VERSION}"),
            &format!("\"format_version\":{STORE_FORMAT_MIN_VERSION}"),
        );
        fs::write(&path, v1).unwrap();
        let err = store.load(key).unwrap_err();
        assert!(
            matches!(&err, StoreError::Corrupt { reason, .. } if reason.contains("parent")),
            "{err}"
        );
    }

    #[test]
    fn list_stats_and_clear_cover_all_entries() {
        let tmp = TempDir::new("list");
        let store = ModelStore::open(&tmp.0).unwrap();
        for seed in 1..=3 {
            let (key, model) = fitted(seed);
            store.save(key, &model).unwrap();
        }
        // A foreign file is ignored by listings.
        fs::write(tmp.0.join("README.txt"), "not a model").unwrap();
        let entries = store.list().unwrap();
        assert_eq!(entries.len(), 3);
        assert!(entries.iter().all(|e| e.bytes > 0));
        let stats = store.stats().unwrap();
        assert_eq!(stats.entries, 3);
        assert_eq!(stats.total_bytes, entries.iter().map(|e| e.bytes).sum());
        assert_eq!(store.clear().unwrap(), 3);
        assert_eq!(store.stats().unwrap(), StoreStats::default());
    }

    #[test]
    fn gc_enforces_count_byte_and_age_bounds() {
        let tmp = TempDir::new("gc");
        let store = ModelStore::open(&tmp.0).unwrap();
        let mut keys = Vec::new();
        for seed in 1..=4 {
            let (key, model) = fitted(seed);
            store.save(key, &model).unwrap();
            keys.push(key);
        }
        // Nothing to do with an empty policy.
        assert!(store.gc(&GcPolicy::default()).unwrap().is_empty());
        // Entry-count bound removes the oldest.
        let removed = store
            .gc(&GcPolicy {
                max_entries: Some(3),
                ..GcPolicy::default()
            })
            .unwrap();
        assert_eq!(removed.len(), 1);
        assert_eq!(store.stats().unwrap().entries, 3);
        // Byte bound of zero removes everything that remains.
        let removed = store
            .gc(&GcPolicy {
                max_total_bytes: Some(0),
                ..GcPolicy::default()
            })
            .unwrap();
        assert_eq!(removed.len(), 3);
        // Age bound: re-add one entry; a generous max_age keeps it, a zero max_age
        // removes it.
        let (key, model) = fitted(5);
        store.save(key, &model).unwrap();
        assert!(store
            .gc(&GcPolicy::older_than(Duration::from_secs(3600)))
            .unwrap()
            .is_empty());
        std::thread::sleep(Duration::from_millis(20));
        let removed = store.gc(&GcPolicy::older_than(Duration::ZERO)).unwrap();
        assert_eq!(removed.len(), 1);
        assert_eq!(removed[0].key, key);
    }

    #[test]
    fn hex_lookups_mirror_the_typed_api_and_reject_malformed_keys() {
        let tmp = TempDir::new("hex");
        let store = ModelStore::open(&tmp.0).unwrap();
        let (key, model) = fitted(1);
        store.save(key, &model).unwrap();
        let hex = key.to_hex();
        assert!(store.contains_hex(&hex).unwrap());
        assert!(store.load_hex(&hex).unwrap().is_some());
        let (other, _) = fitted(2);
        assert!(!store.contains_hex(&other.to_hex()).unwrap());
        assert!(store.load_hex(&other.to_hex()).unwrap().is_none());
        for bad in ["", "zz", "0-1", "FFFFFFFFFFFFFFFF-0000000000000000"] {
            let err = store.load_hex(bad).unwrap_err();
            assert!(matches!(err, StoreError::InvalidKey { .. }), "{bad}: {err}");
        }
        assert!(store.remove_hex(&hex).unwrap());
        assert!(!store.remove_hex(&hex).unwrap());
        assert!(store.remove_hex("nope").is_err());
    }

    #[test]
    fn load_path_validates_like_load() {
        let tmp = TempDir::new("load-path");
        let store = ModelStore::open(&tmp.0).unwrap();
        let (key, model) = fitted(1);
        let path = store.save(key, &model).unwrap();
        let loaded = store.load_path(&path).unwrap();
        assert_eq!(loaded.features(), model.features());
        assert!(store.load_path(Path::new("/nonexistent/file")).is_err());
    }
}
