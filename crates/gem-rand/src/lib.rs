//! # gem-rand
//!
//! A small, deterministic pseudo-random number library exposing the subset of the
//! `rand` crate API this workspace uses (`StdRng`, [`SeedableRng`], [`Rng`],
//! [`seq::SliceRandom`], a `prelude`). The workspace builds in offline environments
//! where crates.io is unreachable, so the real `rand` cannot be a dependency; the
//! other crates rename this package to `rand` in their manifests, which keeps every
//! `use rand::...` call site source-compatible.
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded through SplitMix64 —
//! not cryptographically secure, but fast, well distributed and fully reproducible
//! across platforms, which is what the experiments need (the paper's pipelines are
//! seeded for reproducibility throughout).

#![deny(missing_docs)]
#![warn(clippy::all)]

/// Sources of raw random 64-bit words.
pub trait RngCore {
    /// The next raw 64-bit word from the generator.
    fn next_u64(&mut self) -> u64;

    /// The next raw 32-bit word (high bits of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from a generator ("standard" distribution).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        self.start + (self.end - self.start) * u
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        lo + (hi - lo) * u
    }
}

/// Uniform integer in `[0, span)` without modulo bias (Lemire's multiply-shift; the tiny
/// residual bias of the plain variant is irrelevant at 64-bit width for simulation use).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t; // full-width range
                }
                (lo as i128 + uniform_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its standard distribution (`f64` is uniform on
    /// `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Sample uniformly from a range, e.g. `rng.gen_range(0..10)` or
    /// `rng.gen_range(-1.0..1.0)`.
    fn gen_range<T, Rge: SampleRange<T>>(&mut self, range: Rge) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators seedable from compact seeds.
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed. Identical seeds produce identical streams.
    fn seed_from_u64(seed: u64) -> Self;

    /// Create a generator from OS-independent entropy. This library is deterministic by
    /// design, so "entropy" is a fixed constant — tests and experiments always pass an
    /// explicit seed.
    fn from_entropy() -> Self {
        Self::seed_from_u64(0x9E37_79B9_7F4A_7C15)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman & Vigna), seeded via
    /// SplitMix64 so that every 64-bit seed yields a well-mixed initial state.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Random operations on slices.
pub mod seq {
    use super::Rng;

    /// Shuffling and random choice on slices (the `rand::seq::SliceRandom` subset the
    /// workspace uses).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` for an empty slice.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Common imports, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

pub use rngs::StdRng as DefaultRng;

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn identical_seeds_give_identical_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_give_different_streams() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn f64_samples_lie_in_unit_interval_and_cover_it() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            lo = lo.min(x);
            hi = hi.max(x);
        }
        assert!(lo < 0.01 && hi > 0.99);
    }

    #[test]
    fn gen_range_respects_bounds_for_ints_and_floats() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let i = rng.gen_range(10..20);
            assert!((10..20).contains(&i));
            let j: i64 = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&j));
            let x = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&x));
        }
        // Every value of a small inclusive range is eventually hit.
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..=2)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation_and_choose_picks_members() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [usize; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }
}
