//! # gem-cluster
//!
//! Clustering substrate for the downstream evaluation of §4.6 of the Gem paper.
//!
//! The paper feeds Gem (and Squashing_SOM) embeddings into two deep-clustering algorithms —
//! SDCN (Bo et al., WWW 2020) and TableDC (Rauf et al., 2024) — and reports clustering
//! accuracy (ACC) and adjusted Rand index (ARI). This crate provides:
//!
//! * [`KMeans`] — Lloyd's algorithm with k-means++ seeding, used both on its own and to
//!   initialise the deep-clustering centroids,
//! * [`hungarian_assignment`] — the Hungarian (Kuhn–Munkres) algorithm used by the ACC
//!   metric to optimally match predicted clusters to ground-truth classes,
//! * [`Sdcn`] — a compact SDCN: autoencoder pre-training, a GCN branch over a k-NN graph of
//!   the embeddings, and DEC-style self-training on the fused representation,
//! * [`TableDc`] — a compact TableDC: autoencoder pre-training and self-training with the
//!   heavy-tailed (Cauchy) similarity kernel that TableDC argues suits dense, overlapping
//!   embedding spaces.
//!
//! Both deep methods implement [`DeepClustering`], so the Table 4 bench can swap them
//! freely.

#![deny(missing_docs)]
#![warn(clippy::all)]

mod deep;
mod hungarian;
mod kmeans;
mod sdcn;
mod tabledc;

pub use deep::{soft_assignments, target_distribution, DeepClustering, DeepClusteringConfig};
pub use hungarian::hungarian_assignment;
pub use kmeans::{KMeans, KMeansConfig};
pub use sdcn::Sdcn;
pub use tabledc::TableDc;
