//! The Hungarian (Kuhn–Munkres) assignment algorithm.
//!
//! Clustering accuracy (ACC, §4.1.2) requires the best one-to-one mapping between predicted
//! cluster ids and ground-truth class ids; that is a maximum-weight bipartite matching on
//! the contingency table, solved here as a minimum-cost assignment.

/// Solve the minimum-cost assignment problem for a square cost matrix given as rows of equal
/// length. Returns `assignment[row] = column`.
///
/// The implementation is the classic O(n³) potentials-based Hungarian algorithm.
///
/// # Panics
/// Panics when the matrix is empty or not square.
pub fn hungarian_assignment(cost: &[Vec<f64>]) -> Vec<usize> {
    let n = cost.len();
    assert!(n > 0, "cost matrix must be non-empty");
    assert!(
        cost.iter().all(|r| r.len() == n),
        "cost matrix must be square"
    );

    // Potentials-based implementation with 1-based internal indexing.
    let inf = f64::INFINITY;
    let mut u = vec![0.0f64; n + 1];
    let mut v = vec![0.0f64; n + 1];
    let mut p = vec![0usize; n + 1]; // p[col] = row assigned to col (0 = none)
    let mut way = vec![0usize; n + 1];

    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![inf; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = inf;
            let mut j1 = 0usize;
            for j in 1..=n {
                if used[j] {
                    continue;
                }
                let cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut assignment = vec![0usize; n];
    for j in 1..=n {
        if p[j] > 0 {
            assignment[p[j] - 1] = j - 1;
        }
    }
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;

    fn total_cost(cost: &[Vec<f64>], assignment: &[usize]) -> f64 {
        assignment
            .iter()
            .enumerate()
            .map(|(r, &c)| cost[r][c])
            .sum()
    }

    #[test]
    fn identity_is_optimal_for_diagonal_advantage() {
        let cost = vec![
            vec![0.0, 5.0, 5.0],
            vec![5.0, 0.0, 5.0],
            vec![5.0, 5.0, 0.0],
        ];
        let a = hungarian_assignment(&cost);
        assert_eq!(a, vec![0, 1, 2]);
        assert_eq!(total_cost(&cost, &a), 0.0);
    }

    #[test]
    fn solves_classic_example() {
        // Known optimum: assignment cost 5 (rows to cols 1, 0, 2 or similar permutation).
        let cost = vec![
            vec![4.0, 1.0, 3.0],
            vec![2.0, 0.0, 5.0],
            vec![3.0, 2.0, 2.0],
        ];
        let a = hungarian_assignment(&cost);
        assert!(
            (total_cost(&cost, &a) - 5.0).abs() < 1e-9,
            "assignment {a:?}"
        );
        // It is a permutation.
        let mut seen = [false; 3];
        for &c in &a {
            assert!(!seen[c]);
            seen[c] = true;
        }
    }

    #[test]
    fn beats_every_other_permutation_on_random_like_matrix() {
        let cost = vec![
            vec![7.0, 5.0, 9.0, 8.0],
            vec![6.0, 4.0, 3.0, 7.0],
            vec![5.0, 8.0, 1.0, 8.0],
            vec![7.0, 6.0, 9.0, 4.0],
        ];
        let a = hungarian_assignment(&cost);
        let best = total_cost(&cost, &a);
        // Brute force over all 24 permutations.
        let perms = permutations(&[0, 1, 2, 3]);
        let brute = perms
            .iter()
            .map(|p| total_cost(&cost, p))
            .fold(f64::INFINITY, f64::min);
        assert!((best - brute).abs() < 1e-9);
    }

    #[test]
    fn single_element() {
        assert_eq!(hungarian_assignment(&[vec![3.0]]), vec![0]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_matrix_panics() {
        hungarian_assignment(&[]);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn non_square_panics() {
        hungarian_assignment(&[vec![1.0, 2.0]]);
    }

    fn permutations(items: &[usize]) -> Vec<Vec<usize>> {
        if items.len() <= 1 {
            return vec![items.to_vec()];
        }
        let mut out = Vec::new();
        for (i, &x) in items.iter().enumerate() {
            let mut rest = items.to_vec();
            rest.remove(i);
            for mut p in permutations(&rest) {
                p.insert(0, x);
                out.push(p);
            }
        }
        out
    }
}
