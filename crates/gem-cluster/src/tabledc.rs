//! A compact TableDC (Rauf et al., 2024): deep clustering tailored to data-management
//! embeddings.
//!
//! TableDC's distinguishing choices relative to SDCN are (a) a heavy-tailed Cauchy
//! similarity between latent codes and centroids, which copes with the dense, overlapping
//! embedding spaces produced by table/column embedding models, and (b) whitening of the
//! latent space (a Mahalanobis-style correction) so that correlated embedding dimensions do
//! not dominate the distance. This implementation keeps both: latent codes are standardised
//! per dimension before clustering, and the self-training kernel uses one degree of freedom
//! (a Cauchy kernel).

use crate::deep::{
    hard_assignments, init_centroids, refine_centroids, soft_assignments, DeepClustering,
    DeepClusteringConfig,
};
use gem_nn::{Autoencoder, AutoencoderConfig, Optimizer};
use gem_numeric::standardize::standardize_columns;
use gem_numeric::Matrix;

/// The TableDC-style deep clustering algorithm.
#[derive(Debug, Clone)]
pub struct TableDc {
    /// Shared deep-clustering hyper-parameters.
    pub config: DeepClusteringConfig,
}

impl TableDc {
    /// Create a TableDC instance for `n_clusters` clusters with default hyper-parameters.
    pub fn new(n_clusters: usize) -> Self {
        TableDc {
            config: DeepClusteringConfig::new(n_clusters),
        }
    }

    /// Create a fast instance for tests.
    pub fn fast(n_clusters: usize) -> Self {
        TableDc {
            config: DeepClusteringConfig::fast(n_clusters),
        }
    }
}

impl DeepClustering for TableDc {
    fn name(&self) -> &'static str {
        "TableDC"
    }

    fn cluster(&self, embeddings: &Matrix) -> Vec<usize> {
        let n = embeddings.rows();
        if n == 0 {
            return Vec::new();
        }
        if n <= self.config.n_clusters {
            return (0..n).collect();
        }
        // 1. Autoencoder pre-training.
        let latent_dim = self.config.latent_dim.min(embeddings.cols().max(2));
        let mut ae_config = AutoencoderConfig::new(embeddings.cols(), latent_dim);
        ae_config.epochs = self.config.pretrain_epochs;
        ae_config.optimizer = Optimizer::adam(5e-3);
        ae_config.seed = self.config.seed.wrapping_add(101);
        let mut ae = Autoencoder::new(ae_config);
        ae.fit(embeddings);
        let latent = ae.encode(embeddings);

        // 2. Whitening: standardise each latent dimension (TableDC's Mahalanobis-style
        //    correction for dense, correlated embeddings).
        let whitened = standardize_columns(&latent);

        // 3. Cauchy-kernel self-training.
        let mut centroids = init_centroids(&whitened, self.config.n_clusters, self.config.seed);
        for _ in 0..self.config.refine_iterations {
            centroids = refine_centroids(
                &whitened,
                &centroids,
                self.config.kernel_dof,
                self.config.refine_learning_rate,
            );
        }
        let q = soft_assignments(&whitened, &centroids, self.config.kernel_dof);
        hard_assignments(&q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob_embeddings() -> Matrix {
        let mut rows = Vec::new();
        for i in 0..25 {
            rows.push(vec![(i % 5) as f64 * 0.05, 0.0, 50.0 + (i % 3) as f64]);
        }
        for i in 0..25 {
            rows.push(vec![
                12.0 + (i % 5) as f64 * 0.05,
                12.0,
                50.0 + (i % 3) as f64,
            ]);
        }
        Matrix::from_rows(&rows).unwrap()
    }

    #[test]
    fn clusters_two_separated_blobs() {
        let emb = blob_embeddings();
        let tabledc = TableDc::fast(2);
        let labels = tabledc.cluster(&emb);
        assert_eq!(labels.len(), 50);
        let first_label = labels[0];
        let first_purity = labels[..25].iter().filter(|&&l| l == first_label).count();
        let second_label = labels[25];
        let second_purity = labels[25..].iter().filter(|&&l| l == second_label).count();
        assert!(first_purity >= 20, "purity {first_purity}");
        assert!(second_purity >= 20, "purity {second_purity}");
        assert_ne!(first_label, second_label);
    }

    #[test]
    fn degenerate_inputs() {
        let tabledc = TableDc::fast(4);
        assert!(tabledc.cluster(&Matrix::zeros(0, 3)).is_empty());
        let tiny = Matrix::from_rows(&[vec![0.0, 1.0], vec![2.0, 3.0]]).unwrap();
        assert_eq!(tabledc.cluster(&tiny), vec![0, 1]);
        assert_eq!(tabledc.name(), "TableDC");
    }

    #[test]
    fn produces_at_most_the_requested_number_of_clusters() {
        let emb = blob_embeddings();
        let tabledc = TableDc::fast(3);
        let labels = tabledc.cluster(&emb);
        let distinct: std::collections::BTreeSet<_> = labels.iter().collect();
        assert!(distinct.len() <= 3);
    }
}
