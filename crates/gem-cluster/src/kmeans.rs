//! Lloyd's k-means with k-means++ seeding.

use gem_numeric::distance::squared_euclidean_distance;
use gem_numeric::Matrix;
use rand::prelude::*;
use rand::rngs::StdRng;

/// Configuration for a k-means run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iterations: usize,
    /// Convergence threshold on the change in total inertia.
    pub tolerance: f64,
    /// Number of independent restarts; the run with the lowest inertia wins.
    pub n_restarts: usize,
    /// RNG seed.
    pub seed: u64,
}

impl KMeansConfig {
    /// Default configuration for `k` clusters.
    pub fn new(k: usize) -> Self {
        KMeansConfig {
            k,
            max_iterations: 100,
            tolerance: 1e-6,
            n_restarts: 4,
            seed: 19,
        }
    }
}

/// A fitted k-means model.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeans {
    /// Cluster centroids, one row per cluster.
    pub centroids: Matrix,
    /// Cluster index of each training row.
    pub assignments: Vec<usize>,
    /// Total within-cluster sum of squared distances.
    pub inertia: f64,
}

impl KMeans {
    /// Fit k-means to the rows of `data`.
    ///
    /// # Panics
    /// Panics when `data` has no rows or `config.k` is zero.
    pub fn fit(data: &Matrix, config: &KMeansConfig) -> Self {
        assert!(data.rows() > 0, "k-means needs at least one point");
        assert!(config.k > 0, "k-means needs at least one cluster");
        let k = config.k.min(data.rows());
        let mut best: Option<KMeans> = None;
        for restart in 0..config.n_restarts.max(1) {
            let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(restart as u64));
            let model = Self::fit_once(data, k, config, &mut rng);
            let better = best
                .as_ref()
                .map(|b| model.inertia < b.inertia)
                .unwrap_or(true);
            if better {
                best = Some(model);
            }
        }
        best.expect("at least one restart runs")
    }

    fn fit_once(data: &Matrix, k: usize, config: &KMeansConfig, rng: &mut StdRng) -> KMeans {
        let n = data.rows();
        let dim = data.cols();
        // k-means++ seeding.
        let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
        centroids.push(data.row(rng.gen_range(0..n)).to_vec());
        let mut dist2: Vec<f64> = (0..n)
            .map(|i| squared_euclidean_distance(data.row(i), &centroids[0]).unwrap_or(0.0))
            .collect();
        while centroids.len() < k {
            let total: f64 = dist2.iter().sum();
            let idx = if total <= f64::EPSILON {
                rng.gen_range(0..n)
            } else {
                let mut target = rng.gen::<f64>() * total;
                let mut chosen = n - 1;
                for (i, &d) in dist2.iter().enumerate() {
                    target -= d;
                    if target <= 0.0 {
                        chosen = i;
                        break;
                    }
                }
                chosen
            };
            let new_c = data.row(idx).to_vec();
            for (i, d2) in dist2.iter_mut().enumerate() {
                let d = squared_euclidean_distance(data.row(i), &new_c).unwrap_or(0.0);
                if d < *d2 {
                    *d2 = d;
                }
            }
            centroids.push(new_c);
        }

        let mut assignments = vec![0usize; n];
        let mut inertia = f64::INFINITY;
        for _ in 0..config.max_iterations {
            // Assignment step.
            let mut new_inertia = 0.0;
            for (i, assignment) in assignments.iter_mut().enumerate() {
                let mut best_c = 0usize;
                let mut best_d = f64::INFINITY;
                for (c, centroid) in centroids.iter().enumerate() {
                    let d =
                        squared_euclidean_distance(data.row(i), centroid).unwrap_or(f64::INFINITY);
                    if d < best_d {
                        best_d = d;
                        best_c = c;
                    }
                }
                *assignment = best_c;
                new_inertia += best_d;
            }
            // Update step.
            let mut sums = vec![vec![0.0; dim]; k];
            let mut counts = vec![0usize; k];
            for i in 0..n {
                counts[assignments[i]] += 1;
                for (s, &x) in sums[assignments[i]].iter_mut().zip(data.row(i)) {
                    *s += x;
                }
            }
            for (c, centroid) in centroids.iter_mut().enumerate() {
                if counts[c] == 0 {
                    // Empty cluster: re-seed at the point farthest from its centroid.
                    let far = (0..n)
                        .max_by(|&a, &b| {
                            let da = squared_euclidean_distance(
                                data.row(a),
                                &centroids_snapshot(&sums, &counts, a, data),
                            )
                            .unwrap_or(0.0);
                            let db = squared_euclidean_distance(
                                data.row(b),
                                &centroids_snapshot(&sums, &counts, b, data),
                            )
                            .unwrap_or(0.0);
                            da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
                        })
                        .unwrap_or(0);
                    *centroid = data.row(far).to_vec();
                    continue;
                }
                for (j, s) in sums[c].iter().enumerate() {
                    centroid[j] = s / counts[c] as f64;
                }
            }
            if (inertia - new_inertia).abs() < config.tolerance {
                inertia = new_inertia;
                break;
            }
            inertia = new_inertia;
        }
        KMeans {
            centroids: Matrix::from_rows(&centroids).expect("uniform centroid width"),
            assignments,
            inertia,
        }
    }

    /// Assign new rows to the nearest centroid.
    pub fn predict(&self, data: &Matrix) -> Vec<usize> {
        (0..data.rows())
            .map(|i| {
                (0..self.centroids.rows())
                    .min_by(|&a, &b| {
                        let da = squared_euclidean_distance(data.row(i), self.centroids.row(a))
                            .unwrap_or(f64::INFINITY);
                        let db = squared_euclidean_distance(data.row(i), self.centroids.row(b))
                            .unwrap_or(f64::INFINITY);
                        da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .unwrap_or(0)
            })
            .collect()
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.rows()
    }
}

/// Helper used when re-seeding empty clusters: the "current centroid" of the point's cluster
/// (falls back to the point itself when its cluster is empty).
fn centroids_snapshot(
    sums: &[Vec<f64>],
    counts: &[usize],
    point: usize,
    data: &Matrix,
) -> Vec<f64> {
    // The cluster of `point` is unknown here; using the global mean keeps the farthest-point
    // heuristic cheap and stable.
    let _ = (sums, counts);
    let means = data.column_means();
    let _ = point;
    means
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> Matrix {
        let mut rows = Vec::new();
        for i in 0..30 {
            rows.push(vec![(i % 5) as f64 * 0.1, (i % 7) as f64 * 0.1]);
        }
        for i in 0..30 {
            rows.push(vec![
                10.0 + (i % 5) as f64 * 0.1,
                10.0 + (i % 7) as f64 * 0.1,
            ]);
        }
        for i in 0..30 {
            rows.push(vec![
                20.0 + (i % 5) as f64 * 0.1,
                0.0 + (i % 7) as f64 * 0.1,
            ]);
        }
        Matrix::from_rows(&rows).unwrap()
    }

    #[test]
    fn recovers_three_well_separated_blobs() {
        let data = blobs();
        let km = KMeans::fit(&data, &KMeansConfig::new(3));
        assert_eq!(km.k(), 3);
        // All points of a blob share an assignment, and the three blobs differ.
        let a = km.assignments[0];
        let b = km.assignments[30];
        let c = km.assignments[60];
        assert!(a != b && b != c && a != c);
        assert!(km.assignments[..30].iter().all(|&x| x == a));
        assert!(km.assignments[30..60].iter().all(|&x| x == b));
        assert!(km.assignments[60..].iter().all(|&x| x == c));
    }

    #[test]
    fn inertia_decreases_with_more_clusters() {
        let data = blobs();
        let k1 = KMeans::fit(&data, &KMeansConfig::new(1));
        let k3 = KMeans::fit(&data, &KMeansConfig::new(3));
        assert!(k3.inertia < k1.inertia);
    }

    #[test]
    fn predict_maps_new_points_to_nearest_blob() {
        let data = blobs();
        let km = KMeans::fit(&data, &KMeansConfig::new(3));
        let queries =
            Matrix::from_rows(&[vec![0.2, 0.2], vec![10.2, 10.1], vec![19.8, 0.3]]).unwrap();
        let preds = km.predict(&queries);
        assert_eq!(preds[0], km.assignments[0]);
        assert_eq!(preds[1], km.assignments[30]);
        assert_eq!(preds[2], km.assignments[60]);
    }

    #[test]
    fn k_larger_than_points_is_capped() {
        let data = Matrix::from_rows(&[vec![0.0], vec![1.0]]).unwrap();
        let km = KMeans::fit(&data, &KMeansConfig::new(10));
        assert!(km.k() <= 2);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let data = blobs();
        let a = KMeans::fit(&data, &KMeansConfig::new(3));
        let b = KMeans::fit(&data, &KMeansConfig::new(3));
        assert_eq!(a.assignments, b.assignments);
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn empty_data_panics() {
        KMeans::fit(&Matrix::zeros(0, 2), &KMeansConfig::new(2));
    }

    #[test]
    #[should_panic(expected = "at least one cluster")]
    fn zero_clusters_panics() {
        KMeans::fit(&Matrix::zeros(3, 2), &KMeansConfig::new(0));
    }
}
