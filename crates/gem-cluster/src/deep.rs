//! Shared machinery for the DEC-family deep-clustering algorithms (SDCN, TableDC).
//!
//! Both algorithms follow the same skeleton: pre-train an autoencoder on the column
//! embeddings, initialise cluster centroids with k-means on the latent codes, then
//! alternate between (a) computing a soft assignment `Q` of latent codes to centroids with a
//! heavy-tailed kernel and (b) sharpening `Q` into a target distribution `P` and minimising
//! `KL(P ‖ Q)` by gradient steps on the encoder and the centroids.

use crate::kmeans::{KMeans, KMeansConfig};
use gem_numeric::distance::squared_euclidean_distance;
use gem_numeric::Matrix;

/// Hyper-parameters shared by the deep-clustering algorithms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeepClusteringConfig {
    /// Number of clusters.
    pub n_clusters: usize,
    /// Latent dimensionality of the autoencoder.
    pub latent_dim: usize,
    /// Autoencoder pre-training epochs.
    pub pretrain_epochs: usize,
    /// Self-training refinement iterations.
    pub refine_iterations: usize,
    /// Learning rate of the refinement phase.
    pub refine_learning_rate: f64,
    /// Degrees of freedom of the Student-t / Cauchy kernel (1.0 = Cauchy, the TableDC
    /// choice; larger values approach a Gaussian).
    pub kernel_dof: f64,
    /// Random seed.
    pub seed: u64,
}

impl DeepClusteringConfig {
    /// Reasonable defaults for `n_clusters` clusters on embedding-sized inputs.
    pub fn new(n_clusters: usize) -> Self {
        DeepClusteringConfig {
            n_clusters,
            latent_dim: 16,
            pretrain_epochs: 150,
            refine_iterations: 60,
            refine_learning_rate: 0.05,
            kernel_dof: 1.0,
            seed: 31,
        }
    }

    /// A fast configuration for tests.
    pub fn fast(n_clusters: usize) -> Self {
        DeepClusteringConfig {
            n_clusters,
            latent_dim: 8,
            pretrain_epochs: 60,
            refine_iterations: 20,
            refine_learning_rate: 0.05,
            kernel_dof: 1.0,
            seed: 31,
        }
    }
}

/// A deep-clustering algorithm: embeddings in, one cluster id per row out.
pub trait DeepClustering {
    /// Short name used in result tables.
    fn name(&self) -> &'static str;

    /// Cluster the rows of `embeddings` into the configured number of clusters.
    fn cluster(&self, embeddings: &Matrix) -> Vec<usize>;
}

/// Student-t / Cauchy soft assignments `Q` of each latent row to each centroid
/// (DEC Equation 1): `q_ij ∝ (1 + ‖z_i − μ_j‖² / ν)^{-(ν+1)/2}`. Rows sum to 1.
pub fn soft_assignments(latent: &Matrix, centroids: &Matrix, dof: f64) -> Matrix {
    let n = latent.rows();
    let k = centroids.rows();
    let mut q = Matrix::zeros(n, k);
    let exponent = -(dof + 1.0) / 2.0;
    for i in 0..n {
        let mut sum = 0.0;
        for j in 0..k {
            let d2 = squared_euclidean_distance(latent.row(i), centroids.row(j)).unwrap_or(0.0);
            let val = (1.0 + d2 / dof).powf(exponent);
            q.set(i, j, val);
            sum += val;
        }
        if sum > 1e-300 {
            for j in 0..k {
                q.set(i, j, q.get(i, j) / sum);
            }
        } else {
            for j in 0..k {
                q.set(i, j, 1.0 / k as f64);
            }
        }
    }
    q
}

/// DEC target distribution `P` (DEC Equation 3): sharpen `Q` by squaring and normalising by
/// per-cluster frequency, which pushes points toward high-confidence assignments while
/// protecting small clusters.
pub fn target_distribution(q: &Matrix) -> Matrix {
    let (n, k) = q.shape();
    let freq = q.column_sums();
    let mut p = Matrix::zeros(n, k);
    for i in 0..n {
        let mut sum = 0.0;
        for (j, &f) in freq.iter().enumerate() {
            let val = q.get(i, j) * q.get(i, j) / f.max(1e-12);
            p.set(i, j, val);
            sum += val;
        }
        if sum > 1e-300 {
            for j in 0..k {
                p.set(i, j, p.get(i, j) / sum);
            }
        }
    }
    p
}

/// Initialise centroids by running k-means on the latent codes.
pub(crate) fn init_centroids(latent: &Matrix, n_clusters: usize, seed: u64) -> Matrix {
    let km = KMeans::fit(
        latent,
        &KMeansConfig {
            k: n_clusters,
            seed,
            ..KMeansConfig::new(n_clusters)
        },
    );
    km.centroids
}

/// One refinement step on the centroids only (the encoder is kept fixed during refinement in
/// this compact implementation; the paper's full versions also fine-tune the encoder, which
/// changes absolute scores but not the comparative picture). Returns the updated centroids.
pub(crate) fn refine_centroids(
    latent: &Matrix,
    centroids: &Matrix,
    dof: f64,
    learning_rate: f64,
) -> Matrix {
    let q = soft_assignments(latent, centroids, dof);
    let p = target_distribution(&q);
    let (n, k) = q.shape();
    let dim = centroids.cols();
    let mut updated = centroids.clone();
    // Gradient of KL(P||Q) with respect to centroid μ_j under the Student-t kernel:
    // dL/dμ_j = (ν+1)/ν Σ_i (q_ij − p_ij) (1 + ‖z_i − μ_j‖²/ν)^{-1} (z_i − μ_j)
    let scale = (dof + 1.0) / dof;
    for j in 0..k {
        let mut grad = vec![0.0; dim];
        for i in 0..n {
            let d2 = squared_euclidean_distance(latent.row(i), centroids.row(j)).unwrap_or(0.0);
            let w = scale * (q.get(i, j) - p.get(i, j)) / (1.0 + d2 / dof);
            for (g, (&z, &c)) in grad
                .iter_mut()
                .zip(latent.row(i).iter().zip(centroids.row(j)))
            {
                *g += w * (z - c);
            }
        }
        for (d, g) in (0..dim).zip(grad) {
            updated.set(j, d, updated.get(j, d) - learning_rate * g / n as f64);
        }
    }
    updated
}

/// Hard assignments from a soft-assignment matrix.
pub(crate) fn hard_assignments(q: &Matrix) -> Vec<usize> {
    (0..q.rows())
        .map(|i| {
            q.row(i)
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(j, _)| j)
                .unwrap_or(0)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn latent_blobs() -> Matrix {
        let mut rows = Vec::new();
        for i in 0..20 {
            rows.push(vec![(i % 5) as f64 * 0.05, 0.0]);
        }
        for i in 0..20 {
            rows.push(vec![5.0 + (i % 5) as f64 * 0.05, 5.0]);
        }
        Matrix::from_rows(&rows).unwrap()
    }

    #[test]
    fn soft_assignments_rows_sum_to_one_and_prefer_near_centroid() {
        let latent = latent_blobs();
        let centroids = Matrix::from_rows(&[vec![0.1, 0.0], vec![5.1, 5.0]]).unwrap();
        let q = soft_assignments(&latent, &centroids, 1.0);
        assert_eq!(q.shape(), (40, 2));
        for i in 0..40 {
            assert!((q.row(i).iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
        assert!(q.get(0, 0) > 0.9);
        assert!(q.get(30, 1) > 0.9);
    }

    #[test]
    fn target_distribution_sharpens_q() {
        let latent = latent_blobs();
        let centroids = Matrix::from_rows(&[vec![0.1, 0.0], vec![5.1, 5.0]]).unwrap();
        let q = soft_assignments(&latent, &centroids, 1.0);
        let p = target_distribution(&q);
        // P is still row-stochastic and more confident than Q on the dominant cluster.
        for i in 0..p.rows() {
            assert!((p.row(i).iter().sum::<f64>() - 1.0).abs() < 1e-9);
            let q_max = q.row(i).iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let p_max = p.row(i).iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            assert!(p_max >= q_max - 1e-12);
        }
    }

    #[test]
    fn refine_centroids_moves_toward_cluster_means() {
        let latent = latent_blobs();
        // Start centroids slightly off the blob means.
        let mut centroids = Matrix::from_rows(&[vec![1.0, 1.0], vec![4.0, 4.0]]).unwrap();
        for _ in 0..50 {
            centroids = refine_centroids(&latent, &centroids, 1.0, 0.5);
        }
        // After refinement the two centroids should straddle the two blobs.
        let q = soft_assignments(&latent, &centroids, 1.0);
        let assignments = hard_assignments(&q);
        assert_ne!(assignments[0], assignments[25]);
        assert!(assignments[..20].iter().all(|&a| a == assignments[0]));
        assert!(assignments[20..].iter().all(|&a| a == assignments[25]));
    }

    #[test]
    fn init_centroids_shape() {
        let latent = latent_blobs();
        let c = init_centroids(&latent, 2, 3);
        assert_eq!(c.shape(), (2, 2));
    }

    #[test]
    fn configs() {
        let c = DeepClusteringConfig::new(5);
        assert_eq!(c.n_clusters, 5);
        assert!(DeepClusteringConfig::fast(3).pretrain_epochs < c.pretrain_epochs);
    }

    #[test]
    fn hard_assignments_pick_argmax() {
        let q = Matrix::from_rows(&[vec![0.2, 0.8], vec![0.9, 0.1]]).unwrap();
        assert_eq!(hard_assignments(&q), vec![1, 0]);
    }
}
