//! A compact SDCN (Structural Deep Clustering Network, Bo et al., WWW 2020).
//!
//! SDCN couples an autoencoder with a GCN that operates on a k-NN graph of the inputs, so
//! that the clustering sees both the reconstructed feature structure and the neighbourhood
//! structure. This implementation keeps that essence: the embeddings are pre-trained through
//! an autoencoder, the latent codes are smoothed by one normalised-adjacency propagation
//! over the k-NN graph (the "GCN branch" with an identity transform), the two views are
//! averaged and the result is refined with the DEC-style KL self-training of
//! [`crate::deep`].

use crate::deep::{
    hard_assignments, init_centroids, refine_centroids, soft_assignments, DeepClustering,
    DeepClusteringConfig,
};
use gem_nn::{normalize_adjacency, Autoencoder, AutoencoderConfig, Optimizer};
use gem_numeric::distance::squared_euclidean_distance;
use gem_numeric::Matrix;

/// The SDCN-style deep clustering algorithm.
#[derive(Debug, Clone)]
pub struct Sdcn {
    /// Shared deep-clustering hyper-parameters.
    pub config: DeepClusteringConfig,
    /// Number of nearest neighbours in the column graph.
    pub n_neighbors: usize,
}

impl Sdcn {
    /// Create an SDCN instance for `n_clusters` clusters with default hyper-parameters.
    pub fn new(n_clusters: usize) -> Self {
        Sdcn {
            config: DeepClusteringConfig::new(n_clusters),
            n_neighbors: 5,
        }
    }

    /// Create a fast instance for tests.
    pub fn fast(n_clusters: usize) -> Self {
        Sdcn {
            config: DeepClusteringConfig::fast(n_clusters),
            n_neighbors: 3,
        }
    }

    /// Build the k-NN adjacency matrix over embedding rows (symmetrised).
    fn knn_adjacency(&self, embeddings: &Matrix) -> Matrix {
        let n = embeddings.rows();
        let k = self.n_neighbors.min(n.saturating_sub(1));
        let mut adj = Matrix::zeros(n, n);
        for i in 0..n {
            let mut dists: Vec<(usize, f64)> = (0..n)
                .filter(|&j| j != i)
                .map(|j| {
                    (
                        j,
                        squared_euclidean_distance(embeddings.row(i), embeddings.row(j))
                            .unwrap_or(f64::INFINITY),
                    )
                })
                .collect();
            dists.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
            for &(j, _) in dists.iter().take(k) {
                adj.set(i, j, 1.0);
                adj.set(j, i, 1.0);
            }
        }
        adj
    }
}

impl DeepClustering for Sdcn {
    fn name(&self) -> &'static str {
        "SDCN"
    }

    fn cluster(&self, embeddings: &Matrix) -> Vec<usize> {
        let n = embeddings.rows();
        if n == 0 {
            return Vec::new();
        }
        if n <= self.config.n_clusters {
            return (0..n).collect();
        }
        // 1. Autoencoder pre-training.
        let latent_dim = self.config.latent_dim.min(embeddings.cols().max(2));
        let mut ae_config = AutoencoderConfig::new(embeddings.cols(), latent_dim);
        ae_config.epochs = self.config.pretrain_epochs;
        ae_config.optimizer = Optimizer::adam(5e-3);
        ae_config.seed = self.config.seed;
        let mut ae = Autoencoder::new(ae_config);
        ae.fit(embeddings);
        let latent = ae.encode(embeddings);

        // 2. GCN branch: one propagation of the latent codes over the k-NN graph.
        let norm_adj = normalize_adjacency(&self.knn_adjacency(embeddings));
        let propagated = norm_adj.matmul(&latent).expect("square adjacency");
        // Fuse the AE view and the structural view (SDCN's balance coefficient is 0.5).
        let fused = latent.add(&propagated).expect("same shape").scale(0.5);

        // 3. DEC-style self-training on the fused representation.
        let mut centroids = init_centroids(&fused, self.config.n_clusters, self.config.seed);
        for _ in 0..self.config.refine_iterations {
            centroids = refine_centroids(
                &fused,
                &centroids,
                self.config.kernel_dof,
                self.config.refine_learning_rate,
            );
        }
        let q = soft_assignments(&fused, &centroids, self.config.kernel_dof);
        hard_assignments(&q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob_embeddings() -> Matrix {
        let mut rows = Vec::new();
        for i in 0..25 {
            rows.push(vec![(i % 5) as f64 * 0.05, 0.0, 0.1, (i % 3) as f64 * 0.02]);
        }
        for i in 0..25 {
            rows.push(vec![
                3.0 + (i % 5) as f64 * 0.05,
                3.0,
                0.2,
                (i % 3) as f64 * 0.02,
            ]);
        }
        Matrix::from_rows(&rows).unwrap()
    }

    #[test]
    fn clusters_two_separated_blobs() {
        let emb = blob_embeddings();
        let sdcn = Sdcn::fast(2);
        let labels = sdcn.cluster(&emb);
        assert_eq!(labels.len(), 50);
        // Majority of each blob shares a label, and the two blobs differ.
        let first_label = labels[0];
        let first_purity = labels[..25].iter().filter(|&&l| l == first_label).count();
        let second_label = labels[25];
        let second_purity = labels[25..].iter().filter(|&&l| l == second_label).count();
        assert!(first_purity >= 20, "purity {first_purity}");
        assert!(second_purity >= 20, "purity {second_purity}");
        assert_ne!(first_label, second_label);
    }

    #[test]
    fn knn_adjacency_is_symmetric_with_k_neighbors() {
        let emb = blob_embeddings();
        let sdcn = Sdcn::fast(2);
        let adj = sdcn.knn_adjacency(&emb);
        for i in 0..adj.rows() {
            assert_eq!(adj.get(i, i), 0.0);
            for j in 0..adj.cols() {
                assert_eq!(adj.get(i, j), adj.get(j, i));
            }
            let degree: f64 = adj.row(i).iter().sum();
            assert!(degree >= sdcn.n_neighbors as f64);
        }
    }

    #[test]
    fn degenerate_inputs() {
        let sdcn = Sdcn::fast(3);
        assert!(sdcn.cluster(&Matrix::zeros(0, 4)).is_empty());
        let tiny = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(sdcn.cluster(&tiny), vec![0, 1]);
        assert_eq!(sdcn.name(), "SDCN");
    }
}
