//! Periodic Activation Functions (PAF) of Gorishniy et al., adapted to column embeddings.
//!
//! Each value `x` is mapped to `[sin(2π f₁ x̃), cos(2π f₁ x̃), ..., sin(2π f_F x̃), cos(2π f_F x̃)]`
//! where the frequencies follow a geometric ladder and `x̃` is the value min-max normalised
//! over the corpus (the original method learns the frequencies; the evaluation in the Gem
//! paper uses a fixed bank of 50 frequencies, §4.1.4). A column's embedding is the mean of
//! its value encodings.

use crate::ColumnEmbedder;
use gem_core::{GemColumn, GemError};
use gem_numeric::Matrix;

/// The PAF baseline.
#[derive(Debug, Clone)]
pub struct PeriodicEncoder {
    /// Number of frequencies (the embedding has `2 × n_frequencies` dimensions).
    pub n_frequencies: usize,
    /// Lowest frequency of the geometric ladder.
    pub min_frequency: f64,
    /// Highest frequency of the geometric ladder.
    pub max_frequency: f64,
}

impl Default for PeriodicEncoder {
    fn default() -> Self {
        PeriodicEncoder {
            n_frequencies: 50,
            min_frequency: 0.1,
            max_frequency: 100.0,
        }
    }
}

impl PeriodicEncoder {
    /// Create an encoder with a custom number of frequencies.
    pub fn new(n_frequencies: usize) -> Self {
        assert!(n_frequencies >= 1, "PAF needs at least one frequency");
        PeriodicEncoder {
            n_frequencies,
            ..PeriodicEncoder::default()
        }
    }

    fn frequencies(&self) -> Vec<f64> {
        if self.n_frequencies == 1 {
            return vec![self.min_frequency];
        }
        let ratio =
            (self.max_frequency / self.min_frequency).powf(1.0 / (self.n_frequencies - 1) as f64);
        (0..self.n_frequencies)
            .map(|i| self.min_frequency * ratio.powi(i as i32))
            .collect()
    }

    fn corpus_range(columns: &[GemColumn]) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for c in columns {
            for &v in &c.values {
                if v.is_finite() {
                    lo = lo.min(v);
                    hi = hi.max(v);
                }
            }
        }
        if !lo.is_finite() || !hi.is_finite() || hi <= lo {
            (0.0, 1.0)
        } else {
            (lo, hi)
        }
    }
}

impl ColumnEmbedder for PeriodicEncoder {
    fn name(&self) -> &str {
        "PAF"
    }

    fn embed_columns(&self, columns: &[GemColumn]) -> Result<Matrix, GemError> {
        let freqs = self.frequencies();
        let dim = 2 * freqs.len();
        let (lo, hi) = Self::corpus_range(columns);
        let width = hi - lo;
        let mut out = Matrix::zeros(columns.len(), dim);
        for (i, col) in columns.iter().enumerate() {
            let finite: Vec<f64> = col
                .values
                .iter()
                .copied()
                .filter(|v| v.is_finite())
                .collect();
            if finite.is_empty() {
                continue;
            }
            let mut acc = vec![0.0; dim];
            for &v in &finite {
                let x = (v - lo) / width;
                for (fi, &f) in freqs.iter().enumerate() {
                    let angle = 2.0 * std::f64::consts::PI * f * x;
                    acc[2 * fi] += angle.sin();
                    acc[2 * fi + 1] += angle.cos();
                }
            }
            let n = finite.len() as f64;
            for (j, a) in acc.iter().enumerate() {
                out.set(i, j, a / n);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn columns() -> Vec<GemColumn> {
        vec![
            GemColumn::values_only((0..200).map(|i| (i % 10) as f64).collect()),
            GemColumn::values_only((0..200).map(|i| (i % 97) as f64).collect()),
            GemColumn::values_only((0..200).map(|i| (i % 10) as f64).collect()),
        ]
    }

    #[test]
    fn embedding_dimension_is_twice_the_frequency_count() {
        let enc = PeriodicEncoder::new(7);
        let emb = enc.embed_columns(&columns()).unwrap();
        assert_eq!(emb.shape(), (3, 14));
        assert!(emb.all_finite());
    }

    #[test]
    fn values_are_bounded_by_one() {
        let enc = PeriodicEncoder::default();
        let emb = enc.embed_columns(&columns()).unwrap();
        assert!(emb.as_slice().iter().all(|&v| v.abs() <= 1.0 + 1e-12));
    }

    #[test]
    fn identical_columns_match_and_different_columns_differ() {
        let enc = PeriodicEncoder::new(16);
        let emb = enc.embed_columns(&columns()).unwrap();
        assert_eq!(emb.row(0), emb.row(2));
        assert_ne!(emb.row(0), emb.row(1));
    }

    #[test]
    fn frequencies_form_a_geometric_ladder() {
        let enc = PeriodicEncoder::new(5);
        let f = enc.frequencies();
        assert_eq!(f.len(), 5);
        assert!((f[0] - enc.min_frequency).abs() < 1e-12);
        assert!((f[4] - enc.max_frequency).abs() < 1e-6);
        for w in f.windows(2) {
            assert!(w[1] > w[0]);
        }
        assert_eq!(PeriodicEncoder::new(1).frequencies().len(), 1);
    }

    #[test]
    fn empty_and_degenerate_columns_are_safe() {
        let enc = PeriodicEncoder::new(4);
        let cols = vec![
            GemColumn::values_only(vec![]),
            GemColumn::values_only(vec![3.0; 10]),
            GemColumn::values_only(vec![f64::NAN, 1.0]),
        ];
        let emb = enc.embed_columns(&cols).unwrap();
        assert!(emb.all_finite());
        assert!(emb.row(0).iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "at least one frequency")]
    fn zero_frequencies_panics() {
        PeriodicEncoder::new(0);
    }

    #[test]
    fn default_matches_paper_parameterisation() {
        let enc = PeriodicEncoder::default();
        assert_eq!(enc.n_frequencies, 50);
        assert_eq!(enc.name(), "PAF");
    }
}
