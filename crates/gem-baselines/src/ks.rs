//! The Kolmogorov–Smirnov (KS) statistic baseline (§4.1.3).
//!
//! Each column is described by the KS distance between its empirical CDF and seven fitted
//! reference distributions (normal, uniform, exponential, beta, gamma, log-normal,
//! logistic). Families that cannot be fitted to a column (e.g. a log-normal to data with
//! non-positive values) contribute the maximal distance 1.0.

use crate::ColumnEmbedder;
use gem_core::{GemColumn, GemError};
use gem_numeric::dist::{
    fit_reference_distributions, reference_family_names, ContinuousDistribution,
};
use gem_numeric::Matrix;

/// The KS-statistic baseline.
#[derive(Debug, Clone, Default)]
pub struct KsEncoder;

impl KsEncoder {
    /// Compute the two-sided KS statistic between the empirical CDF of `values` and a
    /// theoretical distribution: `sup_x |F_n(x) − F(x)|`.
    ///
    /// Returns 1.0 (the maximal distance) for an empty sample.
    pub fn ks_statistic(values: &[f64], dist: &dyn ContinuousDistribution) -> f64 {
        let mut sorted: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
        if sorted.is_empty() {
            return 1.0;
        }
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let n = sorted.len() as f64;
        let mut d = 0.0f64;
        for (i, &x) in sorted.iter().enumerate() {
            let cdf = dist.cdf(x);
            let upper = (i as f64 + 1.0) / n - cdf;
            let lower = cdf - i as f64 / n;
            d = d.max(upper.abs()).max(lower.abs());
        }
        d.min(1.0)
    }

    /// The KS feature vector of a column: one entry per reference family, in
    /// [`reference_family_names`] order.
    pub fn column_features(values: &[f64]) -> Vec<f64> {
        let families = reference_family_names();
        let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
        let mut features = vec![1.0; families.len()];
        if finite.is_empty() {
            return features;
        }
        if let Ok(dists) = fit_reference_distributions(&finite) {
            for d in dists {
                if let Some(pos) = families.iter().position(|&n| n == d.name()) {
                    features[pos] = Self::ks_statistic(&finite, d.as_ref());
                }
            }
        }
        features
    }
}

impl ColumnEmbedder for KsEncoder {
    fn name(&self) -> &str {
        "KS statistic"
    }

    fn embed_columns(&self, columns: &[GemColumn]) -> Result<Matrix, GemError> {
        let rows: Vec<Vec<f64>> = columns
            .iter()
            .map(|c| Self::column_features(&c.values))
            .collect();
        Ok(Matrix::from_rows(&rows)
            .unwrap_or_else(|_| Matrix::zeros(0, reference_family_names().len())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gem_numeric::dist::{NormalDist, UniformDist};

    #[test]
    fn ks_statistic_is_small_for_matching_distribution() {
        // Data drawn (deterministically, via inverse CDF on a grid) from N(0, 1).
        let normal = NormalDist::new(0.0, 1.0).unwrap();
        let values: Vec<f64> = (1..200)
            .map(|i| {
                // Inverse-CDF by bisection on the standard normal.
                let target = i as f64 / 200.0;
                let mut lo = -10.0;
                let mut hi = 10.0;
                for _ in 0..60 {
                    let mid = 0.5 * (lo + hi);
                    if normal.cdf(mid) < target {
                        lo = mid;
                    } else {
                        hi = mid;
                    }
                }
                0.5 * (lo + hi)
            })
            .collect();
        let d = KsEncoder::ks_statistic(&values, &normal);
        assert!(d < 0.05, "KS distance was {d}");
        // The same data against a badly mismatched uniform is far worse.
        let uniform = UniformDist::new(10.0, 20.0).unwrap();
        assert!(KsEncoder::ks_statistic(&values, &uniform) > 0.9);
    }

    #[test]
    fn ks_statistic_bounds() {
        let normal = NormalDist::new(0.0, 1.0).unwrap();
        assert_eq!(KsEncoder::ks_statistic(&[], &normal), 1.0);
        let d = KsEncoder::ks_statistic(&[0.0, 0.1, -0.1], &normal);
        assert!((0.0..=1.0).contains(&d));
    }

    #[test]
    fn column_features_have_seven_entries_in_unit_interval() {
        let values: Vec<f64> = (1..100).map(|i| i as f64).collect();
        let f = KsEncoder::column_features(&values);
        assert_eq!(f.len(), 7);
        assert!(f.iter().all(|&v| (0.0..=1.0).contains(&v)));
        // At least one family fits a simple increasing sequence reasonably well.
        assert!(f.iter().cloned().fold(f64::INFINITY, f64::min) < 0.2);
    }

    #[test]
    fn infeasible_families_get_maximal_distance() {
        // Negative data: exponential / gamma / lognormal cannot be fitted.
        let values: Vec<f64> = (-50..50).map(|i| i as f64).collect();
        let f = KsEncoder::column_features(&values);
        let names = reference_family_names();
        let idx = |n: &str| names.iter().position(|&x| x == n).unwrap();
        assert_eq!(f[idx("exponential")], 1.0);
        assert_eq!(f[idx("lognormal")], 1.0);
        assert!(f[idx("normal")] < 1.0);
        assert!(f[idx("uniform")] < 0.1);
    }

    #[test]
    fn embed_columns_shape_and_distinction() {
        let enc = KsEncoder;
        let cols = vec![
            GemColumn::values_only((1..200).map(|i| i as f64).collect()), // uniform-ish
            GemColumn::values_only((1..200).map(|i| ((i as f64) / 20.0).exp()).collect()), // skewed
            GemColumn::values_only(vec![]),
        ];
        let emb = enc.embed_columns(&cols).unwrap();
        assert_eq!(emb.shape(), (3, 7));
        assert_ne!(emb.row(0), emb.row(1));
        assert!(emb.row(2).iter().all(|&v| v == 1.0));
        assert_eq!(enc.name(), "KS statistic");
    }
}
