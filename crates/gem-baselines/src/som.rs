//! A one-dimensional Self-Organizing Map over scalar values.
//!
//! The Squashing_SOM baseline (Jiang et al., adapted in §4.1.3) projects log-squashed
//! numeric values onto a low-dimensional grid of prototypes while preserving topology. For
//! scalar inputs a one-dimensional chain of prototypes suffices; training follows the
//! classic online SOM rule with an exponentially decaying learning rate and neighbourhood
//! radius.

use rand::prelude::*;
use rand::rngs::StdRng;

/// A trained 1-D SOM: an ordered chain of scalar prototypes.
#[derive(Debug, Clone, PartialEq)]
pub struct SelfOrganizingMap {
    prototypes: Vec<f64>,
}

/// Training hyper-parameters for the SOM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SomConfig {
    /// Number of prototypes on the chain (paper setting: 50).
    pub n_prototypes: usize,
    /// Training epochs (full passes over the data).
    pub epochs: usize,
    /// Initial learning rate.
    pub initial_learning_rate: f64,
    /// Initial neighbourhood radius (in prototype-index units).
    pub initial_radius: f64,
    /// RNG seed for sample ordering.
    pub seed: u64,
}

impl Default for SomConfig {
    fn default() -> Self {
        SomConfig {
            n_prototypes: 50,
            epochs: 10,
            initial_learning_rate: 0.5,
            initial_radius: 10.0,
            seed: 23,
        }
    }
}

impl SelfOrganizingMap {
    /// Train a SOM on scalar data.
    ///
    /// # Panics
    /// Panics when `data` is empty or the configuration requests zero prototypes.
    pub fn train(data: &[f64], config: &SomConfig) -> Self {
        assert!(!data.is_empty(), "cannot train a SOM on empty data");
        assert!(config.n_prototypes > 0, "SOM needs at least one prototype");
        let k = config.n_prototypes;
        let lo = data.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let (lo, hi) = if hi > lo {
            (lo, hi)
        } else {
            (lo - 0.5, hi + 0.5)
        };
        // Initialise prototypes evenly over the data range — a standard, deterministic
        // initialisation that already respects the 1-D topology.
        let mut prototypes: Vec<f64> = (0..k)
            .map(|i| lo + (hi - lo) * (i as f64 + 0.5) / k as f64)
            .collect();

        let mut rng = StdRng::seed_from_u64(config.seed);
        let total_steps = (config.epochs * data.len()).max(1) as f64;
        let mut step = 0usize;
        let mut order: Vec<usize> = (0..data.len()).collect();
        for _ in 0..config.epochs {
            order.shuffle(&mut rng);
            for &idx in &order {
                let x = data[idx];
                if !x.is_finite() {
                    step += 1;
                    continue;
                }
                let t = step as f64 / total_steps;
                let lr = config.initial_learning_rate * (1.0 - t).max(0.01);
                let radius = (config.initial_radius * (1.0 - t)).max(0.5);
                // Best matching unit.
                let bmu = prototypes
                    .iter()
                    .enumerate()
                    .min_by(|a, b| {
                        (a.1 - x)
                            .abs()
                            .partial_cmp(&(b.1 - x).abs())
                            .unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                // Neighbourhood update.
                for (j, p) in prototypes.iter_mut().enumerate() {
                    let d = (j as f64 - bmu as f64).abs();
                    let influence = (-d * d / (2.0 * radius * radius)).exp();
                    *p += lr * influence * (x - *p);
                }
                step += 1;
            }
        }
        SelfOrganizingMap { prototypes }
    }

    /// The trained prototypes, in chain order.
    pub fn prototypes(&self) -> &[f64] {
        &self.prototypes
    }

    /// Number of prototypes.
    pub fn n_prototypes(&self) -> usize {
        self.prototypes.len()
    }

    /// Index of the best matching unit for a value.
    pub fn best_matching_unit(&self, x: f64) -> usize {
        self.prototypes
            .iter()
            .enumerate()
            .min_by(|a, b| {
                (a.1 - x)
                    .abs()
                    .partial_cmp(&(b.1 - x).abs())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Soft similarity of a value to every prototype: a Gaussian kernel on the value-space
    /// distance, normalised to sum to 1 (the "similarity function" the Squashing methods use
    /// to weight prototypes).
    pub fn soft_assignment(&self, x: f64, bandwidth: f64) -> Vec<f64> {
        let bw = bandwidth.max(1e-9);
        let mut weights: Vec<f64> = self
            .prototypes
            .iter()
            .map(|&p| (-(x - p) * (x - p) / (2.0 * bw * bw)).exp())
            .collect();
        let sum: f64 = weights.iter().sum();
        if sum > 1e-300 {
            for w in weights.iter_mut() {
                *w /= sum;
            }
        } else {
            // The value is far from every prototype: fall back to the nearest one.
            let bmu = self.best_matching_unit(x);
            weights = vec![0.0; self.prototypes.len()];
            weights[bmu] = 1.0;
        }
        weights
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bimodal_data() -> Vec<f64> {
        let mut d: Vec<f64> = (0..200).map(|i| (i % 20) as f64 * 0.05).collect();
        d.extend((0..200).map(|i| 10.0 + (i % 20) as f64 * 0.05));
        d
    }

    fn small_config(k: usize) -> SomConfig {
        SomConfig {
            n_prototypes: k,
            epochs: 5,
            ..SomConfig::default()
        }
    }

    #[test]
    #[should_panic(expected = "empty data")]
    fn empty_data_panics() {
        SelfOrganizingMap::train(&[], &SomConfig::default());
    }

    #[test]
    #[should_panic(expected = "at least one prototype")]
    fn zero_prototypes_panics() {
        SelfOrganizingMap::train(&[1.0], &small_config(0));
    }

    #[test]
    fn prototypes_cover_both_modes() {
        let som = SelfOrganizingMap::train(&bimodal_data(), &small_config(10));
        assert_eq!(som.n_prototypes(), 10);
        let near_low = som.prototypes().iter().filter(|&&p| p < 2.0).count();
        let near_high = som.prototypes().iter().filter(|&&p| p > 8.0).count();
        assert!(near_low >= 2, "prototypes: {:?}", som.prototypes());
        assert!(near_high >= 2, "prototypes: {:?}", som.prototypes());
    }

    #[test]
    fn prototypes_preserve_chain_topology() {
        // After training on 1-D data from an evenly-spread initialisation, the chain should
        // remain (almost) monotone — the defining property of a SOM.
        let som = SelfOrganizingMap::train(&bimodal_data(), &small_config(12));
        let p = som.prototypes();
        let inversions = p.windows(2).filter(|w| w[1] < w[0] - 1e-6).count();
        assert!(inversions <= 1, "prototypes lost topology: {p:?}");
    }

    #[test]
    fn bmu_picks_nearest_prototype() {
        let som = SelfOrganizingMap::train(&bimodal_data(), &small_config(8));
        let bmu_low = som.best_matching_unit(0.1);
        let bmu_high = som.best_matching_unit(10.4);
        assert_ne!(bmu_low, bmu_high);
        let p = som.prototypes();
        assert!((p[bmu_low] - 0.1).abs() < (p[bmu_high] - 0.1).abs());
    }

    #[test]
    fn soft_assignment_is_a_probability_vector() {
        let som = SelfOrganizingMap::train(&bimodal_data(), &small_config(8));
        for x in [0.0, 5.0, 10.5, 1e9] {
            let a = som.soft_assignment(x, 1.0);
            assert_eq!(a.len(), 8);
            assert!((a.iter().sum::<f64>() - 1.0).abs() < 1e-9, "x = {x}");
            assert!(a.iter().all(|&w| (0.0..=1.0).contains(&w)));
        }
    }

    #[test]
    fn constant_data_is_handled() {
        let som = SelfOrganizingMap::train(&[5.0; 100], &small_config(4));
        assert!(som.prototypes().iter().all(|p| p.is_finite()));
        let a = som.soft_assignment(5.0, 0.5);
        assert!((a.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn training_is_deterministic_for_a_seed() {
        let a = SelfOrganizingMap::train(&bimodal_data(), &small_config(6));
        let b = SelfOrganizingMap::train(&bimodal_data(), &small_config(6));
        assert_eq!(a, b);
    }
}
