//! Piece-wise Linear Encoding (PLE) of Gorishniy et al., adapted to column embeddings.
//!
//! PLE splits the numeric range into `T` bins (here: quantile bins computed over the stacked
//! corpus values, as in the original paper's quantile variant) and encodes a value as a
//! vector whose `t`-th entry is 1 for bins entirely below the value, 0 for bins entirely
//! above, and the fractional position within the bin that contains it. A column's embedding
//! is the mean encoding of its values — the natural column-level aggregation used in the Gem
//! evaluation.

use crate::ColumnEmbedder;
use gem_core::{GemColumn, GemError};
use gem_numeric::Matrix;

/// The PLE baseline. The paper's parameter setting uses 50 bins (§4.1.4).
#[derive(Debug, Clone)]
pub struct PiecewiseLinearEncoder {
    /// Number of bins.
    pub n_bins: usize,
}

impl Default for PiecewiseLinearEncoder {
    fn default() -> Self {
        PiecewiseLinearEncoder { n_bins: 50 }
    }
}

impl PiecewiseLinearEncoder {
    /// Create an encoder with a custom bin count.
    pub fn new(n_bins: usize) -> Self {
        assert!(n_bins >= 1, "PLE needs at least one bin");
        PiecewiseLinearEncoder { n_bins }
    }

    /// Quantile bin edges over the stacked corpus values (length `n_bins + 1`).
    fn bin_edges(&self, columns: &[GemColumn]) -> Vec<f64> {
        let mut stacked: Vec<f64> = columns
            .iter()
            .flat_map(|c| c.values.iter().copied())
            .filter(|v| v.is_finite())
            .collect();
        if stacked.is_empty() {
            return (0..=self.n_bins).map(|i| i as f64).collect();
        }
        stacked.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let mut edges = Vec::with_capacity(self.n_bins + 1);
        for i in 0..=self.n_bins {
            let q = i as f64 / self.n_bins as f64;
            let idx = ((stacked.len() - 1) as f64 * q).round() as usize;
            edges.push(stacked[idx]);
        }
        // Strictly increasing edges: collapse duplicates by nudging.
        for i in 1..edges.len() {
            if edges[i] <= edges[i - 1] {
                edges[i] = edges[i - 1] + f64::EPSILON.max(edges[i - 1].abs() * 1e-12) + 1e-12;
            }
        }
        edges
    }

    /// Encode a single value against the bin edges.
    fn encode_value(&self, x: f64, edges: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.n_bins];
        for t in 0..self.n_bins {
            let lo = edges[t];
            let hi = edges[t + 1];
            out[t] = if x >= hi {
                1.0
            } else if x < lo {
                0.0
            } else {
                (x - lo) / (hi - lo)
            };
        }
        out
    }
}

impl ColumnEmbedder for PiecewiseLinearEncoder {
    fn name(&self) -> &str {
        "PLE"
    }

    fn embed_columns(&self, columns: &[GemColumn]) -> Result<Matrix, GemError> {
        let edges = self.bin_edges(columns);
        let mut out = Matrix::zeros(columns.len(), self.n_bins);
        for (i, col) in columns.iter().enumerate() {
            if col.values.is_empty() {
                continue;
            }
            let mut acc = vec![0.0; self.n_bins];
            let mut count = 0usize;
            for &v in &col.values {
                if !v.is_finite() {
                    continue;
                }
                for (a, e) in acc.iter_mut().zip(self.encode_value(v, &edges)) {
                    *a += e;
                }
                count += 1;
            }
            if count > 0 {
                for (j, a) in acc.iter().enumerate() {
                    out.set(i, j, a / count as f64);
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn columns() -> Vec<GemColumn> {
        vec![
            GemColumn::values_only((0..100).map(|i| i as f64).collect()),
            GemColumn::values_only((0..100).map(|i| 1000.0 + i as f64).collect()),
            GemColumn::values_only((0..100).map(|i| i as f64).collect()),
        ]
    }

    #[test]
    fn embedding_shape_and_monotonicity() {
        let enc = PiecewiseLinearEncoder::new(10);
        let emb = enc.embed_columns(&columns()).unwrap();
        assert_eq!(emb.shape(), (3, 10));
        // Each row's entries are non-increasing from left to right only for single values;
        // for column means they stay within [0, 1].
        assert!(emb.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn identical_columns_get_identical_embeddings() {
        let enc = PiecewiseLinearEncoder::new(16);
        let emb = enc.embed_columns(&columns()).unwrap();
        assert_eq!(emb.row(0), emb.row(2));
        assert_ne!(emb.row(0), emb.row(1));
    }

    #[test]
    fn low_column_mass_below_high_column() {
        let enc = PiecewiseLinearEncoder::new(8);
        let emb = enc.embed_columns(&columns()).unwrap();
        // The high-valued column saturates more bins (values exceed most edges).
        let low_sum: f64 = emb.row(0).iter().sum();
        let high_sum: f64 = emb.row(1).iter().sum();
        assert!(high_sum > low_sum);
    }

    #[test]
    fn encode_value_is_piecewise_linear() {
        let enc = PiecewiseLinearEncoder::new(4);
        let edges = vec![0.0, 1.0, 2.0, 3.0, 4.0];
        let e = enc.encode_value(2.5, &edges);
        assert_eq!(e, vec![1.0, 1.0, 0.5, 0.0]);
        let below = enc.encode_value(-1.0, &edges);
        assert_eq!(below, vec![0.0; 4]);
        let above = enc.encode_value(10.0, &edges);
        assert_eq!(above, vec![1.0; 4]);
    }

    #[test]
    fn handles_empty_and_constant_columns() {
        let enc = PiecewiseLinearEncoder::default();
        let cols = vec![
            GemColumn::values_only(vec![]),
            GemColumn::values_only(vec![5.0; 20]),
        ];
        let emb = enc.embed_columns(&cols).unwrap();
        assert_eq!(emb.rows(), 2);
        assert!(emb.row(0).iter().all(|&v| v == 0.0));
        assert!(emb.all_finite());
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        PiecewiseLinearEncoder::new(0);
    }

    #[test]
    fn default_uses_fifty_bins() {
        assert_eq!(PiecewiseLinearEncoder::default().n_bins, 50);
        assert_eq!(PiecewiseLinearEncoder::default().name(), "PLE");
    }
}
