//! The Squashing_GMM and Squashing_SOM baselines (Jiang et al., "Learning Numeral
//! Embedding", adapted to column embeddings in §4.1.3 of the Gem paper).
//!
//! Both methods first *squash* numeric values into log space with the signed transform
//! `sign(x) · ln(1 + |x|)`, then induce a set of prototypes — Gaussian components for
//! Squashing_GMM, SOM nodes for Squashing_SOM — and describe each value by its similarity to
//! the prototypes. A column's embedding is the mean of its value descriptions.

use crate::som::{SelfOrganizingMap, SomConfig};
use crate::ColumnEmbedder;
use gem_core::{GemColumn, GemError};
use gem_gmm::{GmmConfig, UnivariateGmm};
use gem_numeric::Matrix;

/// The signed logarithmic squashing transform `sign(x) · ln(1 + |x|)`.
pub fn squash(x: f64) -> f64 {
    x.signum() * (1.0 + x.abs()).ln()
}

fn squash_columns(columns: &[GemColumn]) -> Vec<Vec<f64>> {
    columns
        .iter()
        .map(|c| {
            c.values
                .iter()
                .copied()
                .filter(|v| v.is_finite())
                .map(squash)
                .collect()
        })
        .collect()
}

fn stack(columns: &[Vec<f64>]) -> Vec<f64> {
    columns.iter().flat_map(|c| c.iter().copied()).collect()
}

/// Squashing + GMM prototype induction. Unlike Gem, no statistical features are added and
/// the values are log-squashed before fitting, which is exactly what lets Gem pull ahead on
/// columns whose raw-scale distribution matters (§4.2.1, observation 4).
#[derive(Debug, Clone, Default)]
pub struct SquashingGmm {
    /// GMM configuration (the paper uses the same component count as Gem, §4.1.4).
    pub gmm: GmmConfig,
}

impl SquashingGmm {
    /// Create a Squashing_GMM baseline with `n_components` prototypes.
    pub fn new(n_components: usize) -> Self {
        SquashingGmm {
            gmm: GmmConfig::with_components(n_components).restarts(3),
        }
    }
}

impl ColumnEmbedder for SquashingGmm {
    fn name(&self) -> &str {
        "Squashing_GMM"
    }

    fn embed_columns(&self, columns: &[GemColumn]) -> Result<Matrix, GemError> {
        let squashed = squash_columns(columns);
        let stacked = stack(&squashed);
        if stacked.is_empty() {
            return Ok(Matrix::zeros(columns.len(), self.gmm.n_components));
        }
        let gmm = match UnivariateGmm::fit(&stacked, &self.gmm) {
            Ok(g) => g,
            Err(_) => return Ok(Matrix::zeros(columns.len(), self.gmm.n_components)),
        };
        let k = gmm.n_components();
        let mut out = Matrix::zeros(columns.len(), k);
        for (i, col) in squashed.iter().enumerate() {
            let sig = gmm.mean_responsibilities(col);
            out.row_mut(i).copy_from_slice(&sig);
        }
        Ok(out)
    }
}

/// Squashing + SOM prototype induction.
#[derive(Debug, Clone)]
pub struct SquashingSom {
    /// SOM configuration (50 prototypes in the paper's setting).
    pub som: SomConfig,
    /// Bandwidth of the Gaussian similarity used to soft-assign values to prototypes,
    /// expressed as a fraction of the squashed data's standard deviation.
    pub bandwidth_fraction: f64,
}

impl Default for SquashingSom {
    fn default() -> Self {
        SquashingSom {
            som: SomConfig::default(),
            bandwidth_fraction: 0.25,
        }
    }
}

impl SquashingSom {
    /// Create a Squashing_SOM baseline with `n_prototypes` SOM nodes.
    pub fn new(n_prototypes: usize) -> Self {
        SquashingSom {
            som: SomConfig {
                n_prototypes,
                ..SomConfig::default()
            },
            bandwidth_fraction: 0.25,
        }
    }
}

impl ColumnEmbedder for SquashingSom {
    fn name(&self) -> &str {
        "Squashing_SOM"
    }

    fn embed_columns(&self, columns: &[GemColumn]) -> Result<Matrix, GemError> {
        let squashed = squash_columns(columns);
        let stacked = stack(&squashed);
        if stacked.is_empty() {
            return Ok(Matrix::zeros(columns.len(), self.som.n_prototypes));
        }
        let som = SelfOrganizingMap::train(&stacked, &self.som);
        let mean = stacked.iter().sum::<f64>() / stacked.len() as f64;
        let var =
            stacked.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / stacked.len() as f64;
        let bandwidth = (var.sqrt() * self.bandwidth_fraction).max(1e-6);
        let k = som.n_prototypes();
        let mut out = Matrix::zeros(columns.len(), k);
        for (i, col) in squashed.iter().enumerate() {
            if col.is_empty() {
                continue;
            }
            let mut acc = vec![0.0; k];
            for &x in col {
                for (a, w) in acc.iter_mut().zip(som.soft_assignment(x, bandwidth)) {
                    *a += w;
                }
            }
            let n = col.len() as f64;
            for (j, a) in acc.iter().enumerate() {
                out.set(i, j, a / n);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gem_numeric::distance::cosine_similarity;

    fn columns() -> Vec<GemColumn> {
        vec![
            GemColumn::values_only((0..80).map(|i| 20.0 + (i % 30) as f64).collect()),
            GemColumn::values_only((0..80).map(|i| 25.0 + (i % 25) as f64).collect()),
            GemColumn::values_only((0..80).map(|i| 1e5 + (i % 40) as f64 * 1e4).collect()),
        ]
    }

    #[test]
    fn squash_is_odd_and_monotone() {
        assert_eq!(squash(0.0), 0.0);
        assert!((squash(1.0) - (2.0f64).ln()).abs() < 1e-12);
        assert!((squash(-1.0) + (2.0f64).ln()).abs() < 1e-12);
        let mut prev = squash(-1e6);
        for i in -100..100 {
            let v = squash(i as f64 * 1000.0);
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn squashing_gmm_rows_are_probability_vectors() {
        let enc = SquashingGmm::new(6);
        let emb = enc.embed_columns(&columns()).unwrap();
        assert_eq!(emb.rows(), 3);
        for r in 0..3 {
            let s: f64 = emb.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-6, "row {r} sums to {s}");
        }
    }

    #[test]
    fn squashing_gmm_groups_similar_scales() {
        let enc = SquashingGmm::new(4);
        let emb = enc.embed_columns(&columns()).unwrap();
        let s01 = cosine_similarity(emb.row(0), emb.row(1)).unwrap();
        let s02 = cosine_similarity(emb.row(0), emb.row(2)).unwrap();
        assert!(
            s01 > s02,
            "similar-scale columns should be closer ({s01} vs {s02})"
        );
    }

    #[test]
    fn squashing_som_rows_are_probability_vectors() {
        let enc = SquashingSom::new(8);
        let emb = enc.embed_columns(&columns()).unwrap();
        assert_eq!(emb.shape(), (3, 8));
        for r in 0..3 {
            let s: f64 = emb.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-6, "row {r} sums to {s}");
        }
    }

    #[test]
    fn squashing_som_groups_similar_scales() {
        let enc = SquashingSom::new(8);
        let emb = enc.embed_columns(&columns()).unwrap();
        let s01 = cosine_similarity(emb.row(0), emb.row(1)).unwrap();
        let s02 = cosine_similarity(emb.row(0), emb.row(2)).unwrap();
        assert!(s01 > s02);
    }

    #[test]
    fn empty_corpus_and_empty_columns_are_safe() {
        let gmm = SquashingGmm::new(4);
        let som = SquashingSom::new(4);
        let empty: Vec<GemColumn> = vec![GemColumn::values_only(vec![]); 2];
        assert_eq!(gmm.embed_columns(&empty).unwrap().rows(), 2);
        assert_eq!(som.embed_columns(&empty).unwrap().rows(), 2);
        assert!(gmm.embed_columns(&empty).unwrap().all_finite());
        assert!(som.embed_columns(&empty).unwrap().all_finite());
    }

    #[test]
    fn default_prototype_counts_match_paper() {
        assert_eq!(SquashingGmm::default().gmm.n_components, 50);
        assert_eq!(SquashingSom::default().som.n_prototypes, 50);
    }
}
