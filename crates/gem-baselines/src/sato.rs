//! Sato_SC: the single-column re-implementation of Sato (Zhang et al., VLDB 2020) described
//! in §4.1.3 of the Gem paper.
//!
//! Sato extends Sherlock with topic-model features and a CRF over neighbouring columns; the
//! Gem paper's single-column variant drops the table-level context ("we exclude Sato's
//! global and local context features") and keeps the same per-column statistical features
//! plus SBERT header embeddings, processed through Sato's deeper dense architecture. As in
//! the paper, the model is trained against coarse semantic-type labels and the penultimate
//! layer provides the embedding.

use crate::sherlock::{one_hot_labels, sc_input_matrix};
use crate::SupervisedColumnEmbedder;
use gem_core::{GemColumn, GemError};
use gem_nn::{cross_entropy_loss, Activation, Optimizer, Sequential};
use gem_numeric::Matrix;

/// The Sato_SC baseline: a deeper variant of the Sherlock_SC architecture.
#[derive(Debug, Clone)]
pub struct SatoSc {
    /// Header-embedding dimensionality.
    pub text_dim: usize,
    /// Width of the first hidden layer.
    pub hidden_dim: usize,
    /// Width of the second hidden layer (the embedding dimensionality).
    pub embedding_dim: usize,
    /// Dropout rate.
    pub dropout: f64,
    /// Training epochs.
    pub epochs: usize,
    /// Random seed.
    pub seed: u64,
}

impl Default for SatoSc {
    fn default() -> Self {
        SatoSc {
            text_dim: 64,
            hidden_dim: 96,
            embedding_dim: 48,
            dropout: 0.3,
            epochs: 120,
            seed: 43,
        }
    }
}

impl SupervisedColumnEmbedder for SatoSc {
    fn name(&self) -> &str {
        "Sato_SC"
    }

    fn fit_embed(&self, columns: &[GemColumn], labels: &[String]) -> Result<Matrix, GemError> {
        // Label-count validation is centralised in `gem_core::Method::embed`.
        if columns.is_empty() {
            return Ok(Matrix::zeros(0, self.embedding_dim));
        }
        let x = sc_input_matrix(columns, self.text_dim);
        let (targets, n_classes) = one_hot_labels(labels);

        let mut encoder = Sequential::new(self.seed)
            .dense(x.cols(), self.hidden_dim)
            .activation(Activation::Relu)
            .dropout(self.dropout)
            .dense(self.hidden_dim, self.embedding_dim)
            .activation(Activation::Relu);
        let mut head = Sequential::new(self.seed.wrapping_add(1))
            .dense(self.embedding_dim, n_classes)
            .activation(Activation::Softmax);

        let optimizer = Optimizer::adam(5e-3);
        for _ in 0..self.epochs {
            let hidden = encoder.forward(&x, true);
            let probs = head.forward(&hidden, true);
            let loss = cross_entropy_loss(&probs, &targets);
            let d_hidden = head.backward(&loss.gradient);
            encoder.backward(&d_hidden);
            head.step(optimizer);
            encoder.step(optimizer);
        }
        Ok(encoder.predict(&x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> (Vec<GemColumn>, Vec<String>) {
        let mut columns = Vec::new();
        let mut labels = Vec::new();
        for s in 0..3 {
            columns.push(GemColumn::new(
                (0..50).map(|i| 1980.0 + ((i + s) % 30) as f64).collect(),
                format!("year_{s}"),
            ));
            labels.push("year".to_string());
        }
        for s in 0..3 {
            columns.push(GemColumn::new(
                (0..50).map(|i| ((i * 7 + s) % 10) as f64 / 2.0).collect(),
                format!("rating_{s}"),
            ));
            labels.push("rating".to_string());
        }
        (columns, labels)
    }

    #[test]
    fn fit_embed_returns_embedding_dim_columns() {
        let (cols, labels) = corpus();
        let sato = SatoSc {
            epochs: 50,
            ..SatoSc::default()
        };
        let emb = sato.fit_embed(&cols, &labels).unwrap();
        assert_eq!(emb.shape(), (6, sato.embedding_dim));
        assert!(emb.all_finite());
    }

    #[test]
    fn empty_corpus_is_safe() {
        let emb = SatoSc::default().fit_embed(&[], &[]).unwrap();
        assert_eq!(emb.rows(), 0);
    }

    #[test]
    fn mismatched_labels_error_through_the_method_seam() {
        let (cols, _) = corpus();
        let method = gem_core::Method::Supervised(Box::new(SatoSc::default()));
        let err = method.embed(&cols, Some(&[])).unwrap_err();
        assert!(matches!(err, GemError::LabelCountMismatch { .. }), "{err}");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (cols, labels) = corpus();
        let sato = SatoSc {
            epochs: 20,
            ..SatoSc::default()
        };
        let a = sato.fit_embed(&cols, &labels).unwrap();
        let b = sato.fit_embed(&cols, &labels).unwrap();
        assert_eq!(a, b);
    }
}
