//! # gem-baselines
//!
//! Every baseline method the paper compares Gem against (§4.1.3), implemented from scratch:
//!
//! * [`PiecewiseLinearEncoder`] (PLE) and [`PeriodicEncoder`] (PAF) from Gorishniy et al.,
//! * [`SquashingGmm`] and [`SquashingSom`] from Jiang et al. (log-space squashing followed
//!   by GMM / SOM prototype induction),
//! * [`KsEncoder`] — the Kolmogorov–Smirnov goodness-of-fit feature vector against seven
//!   reference distributions,
//! * [`SherlockSc`], [`SatoSc`] and [`PythagorasSc`] — the single-column ("_SC")
//!   re-implementations of Sherlock, Sato and Pythagoras described in the paper, which keep
//!   the statistical features and header embeddings but drop the multi-column / table-wide
//!   context.
//!
//! All unsupervised baselines implement [`ColumnEmbedder`]; the three supervised `_SC`
//! baselines implement [`SupervisedColumnEmbedder`] because, like the originals, they are
//! trained against (coarse-grained) semantic-type labels before their hidden representations
//! are used as embeddings.

#![deny(missing_docs)]
#![warn(clippy::all)]

mod ks;
mod paf;
mod ple;
mod pythagoras;
mod sato;
mod sherlock;
mod som;
mod squashing;

pub use ks::KsEncoder;
pub use paf::PeriodicEncoder;
pub use ple::PiecewiseLinearEncoder;
pub use pythagoras::PythagorasSc;
pub use sato::SatoSc;
pub use sherlock::SherlockSc;
pub use som::SelfOrganizingMap;
pub use squashing::{squash, SquashingGmm, SquashingSom};

// The `ColumnEmbedder` / `SupervisedColumnEmbedder` traits were hoisted into `gem-core`
// so that Gem itself and the baselines share one method abstraction; they are re-exported
// here for backwards compatibility.
pub use gem_core::{ColumnEmbedder, MethodRegistry, SupervisedColumnEmbedder};

/// Register all eight baselines of the paper into `registry`, in the row order of
/// Table 2 / Table 3:
///
/// * numeric-only (tag `"numeric-only"`): Squashing_GMM, Squashing_SOM, PLE, PAF,
///   KS statistic — each sized by `n_components` where applicable,
/// * supervised (tag `"supervised"`): Pythagoras_SC, Sherlock_SC, Sato_SC.
pub fn register_baselines(registry: &mut MethodRegistry, n_components: usize) {
    registry.register_unsupervised(SquashingGmm::new(n_components), &["numeric-only"]);
    registry.register_unsupervised(SquashingSom::new(n_components), &["numeric-only"]);
    registry.register_unsupervised(PiecewiseLinearEncoder::new(n_components), &["numeric-only"]);
    registry.register_unsupervised(PeriodicEncoder::new(n_components), &["numeric-only"]);
    registry.register_unsupervised(KsEncoder, &["numeric-only"]);
    registry.register_supervised(PythagorasSc::default(), &["supervised"]);
    registry.register_supervised(SherlockSc::default(), &["supervised"]);
    registry.register_supervised(SatoSc::default(), &["supervised"]);
}

/// The number of baseline methods [`register_baselines`] contributes.
pub const N_BASELINES: usize = 8;

#[cfg(test)]
mod trait_tests {
    use super::*;

    #[test]
    fn unsupervised_baselines_report_distinct_names() {
        let names = [
            PiecewiseLinearEncoder::default().name().to_string(),
            PeriodicEncoder::default().name().to_string(),
            SquashingGmm::default().name().to_string(),
            SquashingSom::default().name().to_string(),
            KsEncoder.name().to_string(),
        ];
        let unique: std::collections::BTreeSet<_> = names.iter().collect();
        assert_eq!(unique.len(), names.len());
    }

    #[test]
    fn supervised_baselines_report_distinct_names() {
        let names = [
            SherlockSc::default().name().to_string(),
            SatoSc::default().name().to_string(),
            PythagorasSc::default().name().to_string(),
        ];
        let unique: std::collections::BTreeSet<_> = names.iter().collect();
        assert_eq!(unique.len(), names.len());
    }

    #[test]
    fn register_baselines_fills_a_registry_with_all_eight_methods() {
        let mut registry = MethodRegistry::new();
        register_baselines(&mut registry, 8);
        assert_eq!(registry.len(), N_BASELINES);
        assert_eq!(registry.tagged("numeric-only").count(), 5);
        assert_eq!(registry.tagged("supervised").count(), 3);
        assert!(registry.get("KS statistic").is_some());
        assert!(registry.get("Sato_SC").unwrap().is_supervised());
    }
}
