//! # gem-baselines
//!
//! Every baseline method the paper compares Gem against (§4.1.3), implemented from scratch:
//!
//! * [`PiecewiseLinearEncoder`] (PLE) and [`PeriodicEncoder`] (PAF) from Gorishniy et al.,
//! * [`SquashingGmm`] and [`SquashingSom`] from Jiang et al. (log-space squashing followed
//!   by GMM / SOM prototype induction),
//! * [`KsEncoder`] — the Kolmogorov–Smirnov goodness-of-fit feature vector against seven
//!   reference distributions,
//! * [`SherlockSc`], [`SatoSc`] and [`PythagorasSc`] — the single-column ("_SC")
//!   re-implementations of Sherlock, Sato and Pythagoras described in the paper, which keep
//!   the statistical features and header embeddings but drop the multi-column / table-wide
//!   context.
//!
//! All unsupervised baselines implement [`ColumnEmbedder`]; the three supervised `_SC`
//! baselines implement [`SupervisedColumnEmbedder`] because, like the originals, they are
//! trained against (coarse-grained) semantic-type labels before their hidden representations
//! are used as embeddings.

#![deny(missing_docs)]
#![warn(clippy::all)]

mod ks;
mod paf;
mod ple;
mod pythagoras;
mod sato;
mod sherlock;
mod som;
mod squashing;

pub use ks::KsEncoder;
pub use paf::PeriodicEncoder;
pub use ple::PiecewiseLinearEncoder;
pub use pythagoras::PythagorasSc;
pub use sato::SatoSc;
pub use sherlock::SherlockSc;
pub use som::SelfOrganizingMap;
pub use squashing::{squash, SquashingGmm, SquashingSom};

use gem_core::GemColumn;
use gem_numeric::Matrix;

/// An unsupervised baseline that maps a set of columns to an embedding matrix
/// (one row per column).
pub trait ColumnEmbedder {
    /// Short method name used in result tables.
    fn name(&self) -> &'static str;

    /// Embed the columns. Implementations must return one row per input column.
    fn embed_columns(&self, columns: &[GemColumn]) -> Matrix;
}

/// A supervised baseline that is first trained against semantic-type labels (one label per
/// column) and then produces embeddings from its hidden representation — the protocol the
/// paper uses for Sherlock_SC, Sato_SC and Pythagoras_SC.
pub trait SupervisedColumnEmbedder {
    /// Short method name used in result tables.
    fn name(&self) -> &'static str;

    /// Train on the given columns and labels, then return one embedding row per column.
    fn fit_embed(&self, columns: &[GemColumn], labels: &[String]) -> Matrix;
}

#[cfg(test)]
mod trait_tests {
    use super::*;

    #[test]
    fn unsupervised_baselines_report_distinct_names() {
        let names = [
            PiecewiseLinearEncoder::default().name(),
            PeriodicEncoder::default().name(),
            SquashingGmm::default().name(),
            SquashingSom::default().name(),
            KsEncoder::default().name(),
        ];
        let unique: std::collections::BTreeSet<_> = names.iter().collect();
        assert_eq!(unique.len(), names.len());
    }

    #[test]
    fn supervised_baselines_report_distinct_names() {
        let names = [
            SherlockSc::default().name(),
            SatoSc::default().name(),
            PythagorasSc::default().name(),
        ];
        let unique: std::collections::BTreeSet<_> = names.iter().collect();
        assert_eq!(unique.len(), names.len());
    }
}
