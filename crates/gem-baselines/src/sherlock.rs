//! Sherlock_SC: the single-column re-implementation of Sherlock (Hulsebos et al., KDD 2019)
//! described in §4.1.3 of the Gem paper.
//!
//! The original Sherlock extracts per-column statistical features, character distributions
//! and word/paragraph embeddings and trains a multi-input network with dense layers,
//! dropout and a softmax head. The Gem paper's single-column variant keeps only the
//! statistical features of the numeric values plus SBERT header embeddings and trains the
//! same dense/dropout/softmax architecture against (coarse) semantic-type labels; the
//! penultimate hidden layer then provides the column embedding.

use crate::SupervisedColumnEmbedder;
use gem_core::{GemColumn, GemError};
use gem_nn::{Activation, Optimizer, Sequential, TrainConfig};
use gem_numeric::standardize::standardize_columns;
use gem_numeric::stats::ColumnStats;
use gem_numeric::Matrix;
use gem_text::{HashEmbedder, TextEmbedder};
use std::collections::BTreeMap;

/// Build the input matrix shared by the `_SC` baselines: extended statistical features of
/// the values concatenated with header embeddings, each block standardised across columns.
pub(crate) fn sc_input_matrix(columns: &[GemColumn], text_dim: usize) -> Matrix {
    let embedder = HashEmbedder::new(text_dim);
    let mut stat_rows = Vec::with_capacity(columns.len());
    let mut text_rows = Vec::with_capacity(columns.len());
    for c in columns {
        let finite: Vec<f64> = c.values.iter().copied().filter(|v| v.is_finite()).collect();
        let stats = if finite.is_empty() {
            vec![0.0; 12]
        } else {
            ColumnStats::compute(&finite)
                .map(|s| {
                    s.extended_features()
                        .into_iter()
                        .map(|v| if v.is_finite() { v } else { 0.0 })
                        .collect()
                })
                .unwrap_or_else(|_| vec![0.0; 12])
        };
        stat_rows.push(stats);
        text_rows.push(embedder.embed(&c.header));
    }
    let stats = standardize_columns(&Matrix::from_rows(&stat_rows).expect("uniform width"));
    let text = Matrix::from_rows(&text_rows).expect("uniform width");
    stats.hconcat(&text).expect("same row count")
}

/// One-hot encode labels; returns the target matrix and the number of classes.
pub(crate) fn one_hot_labels(labels: &[String]) -> (Matrix, usize) {
    let mut index: BTreeMap<&str, usize> = BTreeMap::new();
    for l in labels {
        let next = index.len();
        index.entry(l.as_str()).or_insert(next);
    }
    let n_classes = index.len().max(1);
    let mut out = Matrix::zeros(labels.len(), n_classes);
    for (i, l) in labels.iter().enumerate() {
        out.set(i, index[l.as_str()], 1.0);
    }
    (out, n_classes)
}

/// The Sherlock_SC baseline.
#[derive(Debug, Clone)]
pub struct SherlockSc {
    /// Header-embedding dimensionality.
    pub text_dim: usize,
    /// Hidden layer width (the embedding dimensionality).
    pub hidden_dim: usize,
    /// Dropout rate between the hidden layers.
    pub dropout: f64,
    /// Training epochs.
    pub epochs: usize,
    /// Random seed.
    pub seed: u64,
}

impl Default for SherlockSc {
    fn default() -> Self {
        SherlockSc {
            text_dim: 64,
            hidden_dim: 64,
            dropout: 0.3,
            epochs: 120,
            seed: 41,
        }
    }
}

impl SupervisedColumnEmbedder for SherlockSc {
    fn name(&self) -> &str {
        "Sherlock_SC"
    }

    fn fit_embed(&self, columns: &[GemColumn], labels: &[String]) -> Result<Matrix, GemError> {
        // Label-count validation is centralised in `gem_core::Method::embed`.
        if columns.is_empty() {
            return Ok(Matrix::zeros(0, self.hidden_dim));
        }
        let x = sc_input_matrix(columns, self.text_dim);
        let (targets, n_classes) = one_hot_labels(labels);

        // Encoder: input → hidden (the representation we keep as the embedding).
        let mut encoder = Sequential::new(self.seed)
            .dense(x.cols(), self.hidden_dim)
            .activation(Activation::Relu)
            .dropout(self.dropout);
        // Head: hidden → classes with softmax.
        let mut head = Sequential::new(self.seed.wrapping_add(1))
            .dense(self.hidden_dim, n_classes)
            .activation(Activation::Softmax);

        let optimizer = Optimizer::adam(5e-3);
        for _ in 0..self.epochs {
            let hidden = encoder.forward(&x, true);
            let probs = head.forward(&hidden, true);
            let loss = gem_nn::cross_entropy_loss(&probs, &targets);
            let d_hidden = head.backward(&loss.gradient);
            encoder.backward(&d_hidden);
            head.step(optimizer);
            encoder.step(optimizer);
        }
        Ok(encoder.predict(&x))
    }
}

// The `TrainConfig` import is used by the sibling `_SC` baselines re-exporting this module's
// helpers; keep a reference here so the import is exercised in this module too.
#[allow(dead_code)]
pub(crate) fn default_train_config(epochs: usize) -> TrainConfig {
    TrainConfig {
        epochs,
        optimizer: Optimizer::adam(5e-3),
        seed: 41,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gem_numeric::distance::cosine_similarity;

    fn corpus() -> (Vec<GemColumn>, Vec<String>) {
        let mut columns = Vec::new();
        let mut labels = Vec::new();
        for s in 0..4 {
            let values: Vec<f64> = (0..60).map(|i| 20.0 + ((i + s) % 40) as f64).collect();
            columns.push(GemColumn::new(values, format!("age_{s}")));
            labels.push("age".to_string());
        }
        for s in 0..4 {
            let values: Vec<f64> = (0..60)
                .map(|i| 1000.0 + ((i * 3 + s) % 50) as f64 * 37.0)
                .collect();
            columns.push(GemColumn::new(values, format!("price_{s}")));
            labels.push("price".to_string());
        }
        (columns, labels)
    }

    #[test]
    fn sc_input_matrix_combines_stats_and_text() {
        let (cols, _) = corpus();
        let x = sc_input_matrix(&cols, 32);
        assert_eq!(x.shape(), (8, 12 + 32));
        assert!(x.all_finite());
    }

    #[test]
    fn one_hot_labels_are_valid() {
        let labels = vec!["a".to_string(), "b".to_string(), "a".to_string()];
        let (t, k) = one_hot_labels(&labels);
        assert_eq!(k, 2);
        assert_eq!(t.shape(), (3, 2));
        for r in 0..3 {
            assert_eq!(t.row(r).iter().sum::<f64>(), 1.0);
        }
        assert_eq!(t.row(0), t.row(2));
        assert_ne!(t.row(0), t.row(1));
    }

    #[test]
    fn fit_embed_shape_and_type_separation() {
        let (cols, labels) = corpus();
        let sherlock = SherlockSc {
            epochs: 60,
            ..SherlockSc::default()
        };
        let emb = sherlock.fit_embed(&cols, &labels).unwrap();
        assert_eq!(emb.shape(), (8, sherlock.hidden_dim));
        assert!(emb.all_finite());
        // Columns of the same class should be more similar on average than columns of
        // different classes.
        let sim = |a: usize, b: usize| cosine_similarity(emb.row(a), emb.row(b)).unwrap();
        let within = (sim(0, 1) + sim(4, 5)) / 2.0;
        let across = (sim(0, 4) + sim(1, 5)) / 2.0;
        assert!(within > across - 0.15, "within {within}, across {across}");
    }

    #[test]
    fn empty_corpus_is_safe() {
        let sherlock = SherlockSc::default();
        let emb = sherlock.fit_embed(&[], &[]).unwrap();
        assert_eq!(emb.rows(), 0);
    }

    #[test]
    fn mismatched_labels_error_through_the_method_seam() {
        let (cols, _) = corpus();
        let method = gem_core::Method::Supervised(Box::new(SherlockSc::default()));
        let err = method.embed(&cols, Some(&["age".to_string()])).unwrap_err();
        assert!(matches!(err, GemError::LabelCountMismatch { .. }), "{err}");
    }
}
