//! Pythagoras_SC: the context-reduced re-implementation of Pythagoras (Langenecker et al.,
//! EDBT 2024) described in §4.1.3 of the Gem paper.
//!
//! Pythagoras builds a heterogeneous graph over columns, tables and metadata and encodes it
//! with a GNN. The Gem paper's single-column variant keeps only the header context: we build
//! a column graph whose edges connect columns with similar headers, attach the same
//! statistical + header features used by the other `_SC` baselines to the nodes, and encode
//! them with a two-layer GCN trained against coarse semantic-type labels. The final GCN
//! layer's activations are the column embeddings.

use crate::sherlock::{one_hot_labels, sc_input_matrix};
use crate::SupervisedColumnEmbedder;
use gem_core::{GemColumn, GemError};
use gem_nn::Optimizer;
use gem_nn::{cross_entropy_loss, normalize_adjacency, Activation, GcnLayer, Sequential};
use gem_numeric::distance::cosine_similarity;
use gem_numeric::Matrix;
use gem_text::{HashEmbedder, TextEmbedder};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The Pythagoras_SC baseline.
#[derive(Debug, Clone)]
pub struct PythagorasSc {
    /// Header-embedding dimensionality.
    pub text_dim: usize,
    /// Hidden GCN width.
    pub hidden_dim: usize,
    /// Output GCN width (the embedding dimensionality).
    pub embedding_dim: usize,
    /// Cosine-similarity threshold above which two columns' headers are connected by an
    /// edge in the column graph.
    pub edge_threshold: f64,
    /// Training epochs.
    pub epochs: usize,
    /// Random seed.
    pub seed: u64,
}

impl Default for PythagorasSc {
    fn default() -> Self {
        PythagorasSc {
            text_dim: 64,
            hidden_dim: 64,
            embedding_dim: 48,
            edge_threshold: 0.5,
            epochs: 100,
            seed: 47,
        }
    }
}

impl PythagorasSc {
    /// Build the header-similarity adjacency matrix of the column graph.
    fn header_adjacency(&self, columns: &[GemColumn]) -> Matrix {
        let embedder = HashEmbedder::new(self.text_dim);
        let headers: Vec<Vec<f64>> = columns.iter().map(|c| embedder.embed(&c.header)).collect();
        let n = columns.len();
        let mut adj = Matrix::zeros(n, n);
        for i in 0..n {
            for j in (i + 1)..n {
                let sim = cosine_similarity(&headers[i], &headers[j]).unwrap_or(0.0);
                if sim >= self.edge_threshold {
                    adj.set(i, j, 1.0);
                    adj.set(j, i, 1.0);
                }
            }
        }
        adj
    }
}

impl SupervisedColumnEmbedder for PythagorasSc {
    fn name(&self) -> &str {
        "Pythagoras_SC"
    }

    fn fit_embed(&self, columns: &[GemColumn], labels: &[String]) -> Result<Matrix, GemError> {
        // Label-count validation is centralised in `gem_core::Method::embed`.
        if columns.is_empty() {
            return Ok(Matrix::zeros(0, self.embedding_dim));
        }
        let x = sc_input_matrix(columns, self.text_dim);
        let norm_adj = normalize_adjacency(&self.header_adjacency(columns));
        let (targets, n_classes) = one_hot_labels(labels);

        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut gcn1 = GcnLayer::new(x.cols(), self.hidden_dim, Activation::Relu, &mut rng);
        let mut gcn2 = GcnLayer::new(
            self.hidden_dim,
            self.embedding_dim,
            Activation::Tanh,
            &mut rng,
        );
        let mut head = Sequential::new(self.seed.wrapping_add(1))
            .dense(self.embedding_dim, n_classes)
            .activation(Activation::Softmax);
        let optimizer = Optimizer::adam(5e-3);

        for _ in 0..self.epochs {
            let h1 = gcn1.forward(&norm_adj, &x, true);
            let h2 = gcn2.forward(&norm_adj, &h1, true);
            let probs = head.forward(&h2, true);
            let loss = cross_entropy_loss(&probs, &targets);
            let d_h2 = head.backward(&loss.gradient);
            let d_h1 = gcn2.backward(&h2, &d_h2);
            gcn1.backward(&h1, &d_h1);
            head.step(optimizer);
            gcn2.adam_step(optimizer.learning_rate);
            gcn1.adam_step(optimizer.learning_rate);
        }

        let h1 = gcn1.forward(&norm_adj, &x, false);
        Ok(gcn2.forward(&norm_adj, &h1, false))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> (Vec<GemColumn>, Vec<String>) {
        let mut columns = Vec::new();
        let mut labels = Vec::new();
        for s in 0..3 {
            columns.push(GemColumn::new(
                (0..40).map(|i| 160.0 + ((i + s) % 30) as f64).collect(),
                "height",
            ));
            labels.push("height".to_string());
        }
        for s in 0..3 {
            columns.push(GemColumn::new(
                (0..40)
                    .map(|i| ((i * 3 + s) % 60) as f64 * 1000.0)
                    .collect(),
                "salary",
            ));
            labels.push("salary".to_string());
        }
        (columns, labels)
    }

    #[test]
    fn adjacency_connects_identical_headers_only() {
        let p = PythagorasSc::default();
        let (cols, _) = corpus();
        let adj = p.header_adjacency(&cols);
        // Columns 0-2 share the header "height", columns 3-5 share "salary".
        assert_eq!(adj.get(0, 1), 1.0);
        assert_eq!(adj.get(3, 4), 1.0);
        assert_eq!(adj.get(0, 3), 0.0);
        // Diagonal stays zero (self-loops are added during normalisation).
        assert_eq!(adj.get(0, 0), 0.0);
    }

    #[test]
    fn fit_embed_shape_and_finiteness() {
        let (cols, labels) = corpus();
        let p = PythagorasSc {
            epochs: 40,
            ..PythagorasSc::default()
        };
        let emb = p.fit_embed(&cols, &labels).unwrap();
        assert_eq!(emb.shape(), (6, p.embedding_dim));
        assert!(emb.all_finite());
    }

    #[test]
    fn empty_corpus_is_safe() {
        let emb = PythagorasSc::default().fit_embed(&[], &[]).unwrap();
        assert_eq!(emb.rows(), 0);
    }

    #[test]
    fn mismatched_labels_error_through_the_method_seam() {
        let (cols, _) = corpus();
        let method = gem_core::Method::Supervised(Box::new(PythagorasSc::default()));
        let err = method.embed(&cols, Some(&["x".to_string()])).unwrap_err();
        assert!(matches!(err, GemError::LabelCountMismatch { .. }), "{err}");
    }
}
