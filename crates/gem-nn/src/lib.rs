//! # gem-nn
//!
//! A minimal, dependency-free neural-network substrate built on [`gem_numeric::Matrix`].
//!
//! The Gem paper needs small neural models in several places:
//!
//! * the **autoencoder composition** of §4.2.2 (Gem D+S+C "AE"), which compresses the
//!   concatenated distributional + statistical + contextual embedding into a latent space;
//! * the **Sherlock_SC** and **Sato_SC** baselines, which push statistical features + header
//!   embeddings through dense layers with dropout and a softmax head;
//! * the **Pythagoras_SC** baseline, which uses a small graph-convolutional encoder;
//! * the **SDCN** and **TableDC** deep-clustering algorithms of §4.6, which pre-train an
//!   autoencoder and refine soft cluster assignments with a KL-divergence objective.
//!
//! The substrate deliberately implements only what those models need: dense layers,
//! dropout, ReLU/tanh/sigmoid/softmax activations, MSE / cross-entropy / KL losses, SGD and
//! Adam optimisers, a [`Sequential`] container with manual backpropagation, an
//! [`Autoencoder`] built from two `Sequential`s, and a normalised-adjacency [`GcnLayer`].
//! Everything is deterministic given a seed.

#![deny(missing_docs)]
#![warn(clippy::all)]

mod activation;
mod autoencoder;
mod gcn;
mod layer;
mod loss;
mod optimizer;
mod persist;
mod sequential;

pub use activation::Activation;
pub use autoencoder::{Autoencoder, AutoencoderConfig};
pub use gcn::{normalize_adjacency, GcnLayer};
pub use layer::{DenseLayer, Dropout};
pub use loss::{cross_entropy_loss, kl_divergence_loss, mse_loss, LossOutput};
pub use optimizer::{Optimizer, OptimizerKind};
pub use sequential::{Layer, Sequential, TrainConfig};
