//! JSON persistence of trained networks.
//!
//! Serving systems cache fitted models and must survive restarts, so every frozen
//! component the Gem pipeline embeds with — dense layers, sequential stacks, the
//! composition autoencoder — round-trips through [`gem_json`]. Weights are encoded with
//! the bit-exact [`gem_json::bits_array`] representation (IEEE-754 bit patterns, not
//! decimal), so inference through a reloaded network is **bit-identical** to the network
//! that was saved.
//!
//! What is persisted is the *frozen* model: weights, biases, layer structure and the
//! training hyper-parameters. Transient training state (cached activations, gradients,
//! Adam moments, dropout masks, RNG position) is deliberately not serialised — a reloaded
//! network infers identically and can resume training from the weights, but with reset
//! optimiser moments and a fresh dropout stream.

use crate::activation::Activation;
use crate::autoencoder::{Autoencoder, AutoencoderConfig};
use crate::layer::{DenseLayer, Dropout};
use crate::optimizer::{Optimizer, OptimizerKind};
use crate::sequential::{Layer, Sequential};
use gem_json::{number, object, string, FromJson, Json, JsonError, ToJson};
use gem_numeric::Matrix;

impl Activation {
    /// Stable persistence name of the activation.
    pub fn as_str(&self) -> &'static str {
        match self {
            Activation::Relu => "relu",
            Activation::Sigmoid => "sigmoid",
            Activation::Tanh => "tanh",
            Activation::Softmax => "softmax",
            Activation::Identity => "identity",
        }
    }

    /// Inverse of [`Activation::as_str`].
    ///
    /// # Errors
    /// Returns a [`JsonError`] for an unknown name.
    pub fn parse(name: &str) -> Result<Self, JsonError> {
        match name {
            "relu" => Ok(Activation::Relu),
            "sigmoid" => Ok(Activation::Sigmoid),
            "tanh" => Ok(Activation::Tanh),
            "softmax" => Ok(Activation::Softmax),
            "identity" => Ok(Activation::Identity),
            other => Err(JsonError::conversion(format!(
                "unknown activation `{other}`"
            ))),
        }
    }
}

impl ToJson for Optimizer {
    fn to_json(&self) -> Json {
        let kind = match self.kind {
            OptimizerKind::Sgd => "sgd",
            OptimizerKind::Adam => "adam",
        };
        object(vec![
            ("kind", string(kind)),
            ("learning_rate", number(self.learning_rate)),
        ])
    }
}

impl FromJson for Optimizer {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let kind = match value.str_field("kind")?.as_str() {
            "sgd" => OptimizerKind::Sgd,
            "adam" => OptimizerKind::Adam,
            other => {
                return Err(JsonError::conversion(format!(
                    "unknown optimizer kind `{other}`"
                )))
            }
        };
        Ok(Optimizer {
            kind,
            learning_rate: value.num_field("learning_rate")?,
        })
    }
}

impl ToJson for DenseLayer {
    fn to_json(&self) -> Json {
        object(vec![
            ("weights", self.weights.to_json()),
            ("bias", gem_json::bits_array(&self.bias)),
        ])
    }
}

impl FromJson for DenseLayer {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let weights = Matrix::from_json(value.field("weights")?)?;
        let bias = gem_json::as_bits_array(value.field("bias")?)?;
        if weights.rows() == 0 || weights.cols() == 0 || bias.len() != weights.cols() {
            return Err(JsonError::conversion(
                "dense layer bias length must equal the weight matrix's out_dim",
            ));
        }
        Ok(DenseLayer::from_parameters(weights, bias))
    }
}

impl ToJson for Layer {
    fn to_json(&self) -> Json {
        match self {
            Layer::Dense(dense) => {
                object(vec![("kind", string("dense")), ("params", dense.to_json())])
            }
            Layer::Activation(act) => object(vec![
                ("kind", string("activation")),
                ("name", string(act.as_str())),
            ]),
            Layer::Dropout(drop) => object(vec![
                ("kind", string("dropout")),
                ("rate", number(drop.rate)),
            ]),
        }
    }
}

impl FromJson for Layer {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value.str_field("kind")?.as_str() {
            "dense" => Ok(Layer::Dense(Box::new(DenseLayer::from_json(
                value.field("params")?,
            )?))),
            "activation" => Ok(Layer::Activation(Activation::parse(
                &value.str_field("name")?,
            )?)),
            "dropout" => {
                let rate = value.num_field("rate")?;
                if !(0.0..1.0).contains(&rate) {
                    return Err(JsonError::conversion("dropout rate must be in [0, 1)"));
                }
                Ok(Layer::Dropout(Dropout::new(rate)))
            }
            other => Err(JsonError::conversion(format!(
                "unknown layer kind `{other}`"
            ))),
        }
    }
}

impl ToJson for Sequential {
    fn to_json(&self) -> Json {
        object(vec![(
            "layers",
            Json::Array(self.layers().iter().map(ToJson::to_json).collect()),
        )])
    }
}

impl FromJson for Sequential {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let layers = value
            .field("layers")?
            .as_array()
            .ok_or_else(|| JsonError::conversion("field `layers` is not an array"))?
            .iter()
            .map(Layer::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Sequential::from_layers(layers, 0))
    }
}

impl ToJson for AutoencoderConfig {
    fn to_json(&self) -> Json {
        object(vec![
            ("input_dim", gem_json::u64_number(self.input_dim as u64)),
            (
                "encoder_dims",
                Json::Array(
                    self.encoder_dims
                        .iter()
                        .map(|&d| gem_json::u64_number(d as u64))
                        .collect(),
                ),
            ),
            ("epochs", gem_json::u64_number(self.epochs as u64)),
            ("optimizer", self.optimizer.to_json()),
            ("seed", string(self.seed.to_string())),
        ])
    }
}

impl FromJson for AutoencoderConfig {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let encoder_dims = gem_json::as_number_array(value.field("encoder_dims")?)?
            .into_iter()
            .map(|d| d as usize)
            .collect();
        let seed = value
            .str_field("seed")?
            .parse::<u64>()
            .map_err(|_| JsonError::conversion("field `seed` is not a u64 string"))?;
        Ok(AutoencoderConfig {
            input_dim: value.num_field("input_dim")? as usize,
            encoder_dims,
            epochs: value.num_field("epochs")? as usize,
            optimizer: Optimizer::from_json(value.field("optimizer")?)?,
            seed,
        })
    }
}

impl ToJson for Autoencoder {
    fn to_json(&self) -> Json {
        object(vec![
            ("config", self.config().to_json()),
            ("encoder", self.encoder().to_json()),
            ("decoder", self.decoder().to_json()),
        ])
    }
}

impl FromJson for Autoencoder {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let config = AutoencoderConfig::from_json(value.field("config")?)?;
        if config.input_dim == 0
            || config.encoder_dims.is_empty()
            || config.encoder_dims.contains(&0)
        {
            return Err(JsonError::conversion(
                "autoencoder config has degenerate dimensions",
            ));
        }
        Ok(Autoencoder::from_parts(
            Sequential::from_json(value.field("encoder")?)?,
            Sequential::from_json(value.field("decoder")?)?,
            config,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reparse(json: &Json) -> Json {
        Json::parse(&json.to_pretty_string()).unwrap()
    }

    #[test]
    fn dense_layer_round_trips_bit_exactly() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let layer = DenseLayer::new(4, 3, &mut rng);
        let back = DenseLayer::from_json(&reparse(&layer.to_json())).unwrap();
        let x = Matrix::from_rows(&[vec![0.3, -0.7, 1.1, 0.4]]).unwrap();
        assert_eq!(layer.infer(&x), back.infer(&x));
        assert_eq!(layer.weights, back.weights);
        assert_eq!(layer.bias, back.bias);
    }

    #[test]
    fn sequential_round_trip_infers_identically() {
        let model = Sequential::new(7)
            .dense(3, 8)
            .activation(Activation::Tanh)
            .dropout(0.25)
            .dense(8, 2)
            .activation(Activation::Softmax);
        let back = Sequential::from_json(&reparse(&model.to_json())).unwrap();
        assert_eq!(back.len(), model.len());
        assert_eq!(back.n_parameters(), model.n_parameters());
        let x = Matrix::from_rows(&[vec![0.1, -0.2, 0.3], vec![1.0, 2.0, -3.0]]).unwrap();
        let (a, b) = (model.infer(&x), back.infer(&x));
        for (p, q) in a.as_slice().iter().zip(b.as_slice()) {
            assert_eq!(p.to_bits(), q.to_bits());
        }
    }

    #[test]
    fn trained_autoencoder_round_trips_bit_exactly() {
        let rows: Vec<Vec<f64>> = (0..40)
            .map(|i| {
                let x = i as f64 / 9.0;
                vec![x.sin(), x.cos(), x.sin() - x.cos(), 0.5 * x.cos()]
            })
            .collect();
        let data = Matrix::from_rows(&rows).unwrap();
        let mut cfg = AutoencoderConfig::new(4, 2);
        cfg.epochs = 80;
        let mut ae = Autoencoder::new(cfg);
        ae.fit(&data);
        let back = Autoencoder::from_json(&reparse(&ae.to_json())).unwrap();
        assert_eq!(back.latent_dim(), ae.latent_dim());
        assert_eq!(back.n_parameters(), ae.n_parameters());
        let (a, b) = (ae.encode(&data), back.encode(&data));
        for (p, q) in a.as_slice().iter().zip(b.as_slice()) {
            assert_eq!(p.to_bits(), q.to_bits());
        }
        let (a, b) = (ae.reconstruct(&data), back.reconstruct(&data));
        assert_eq!(a, b);
    }

    #[test]
    fn optimizer_and_activation_names_round_trip() {
        for opt in [Optimizer::sgd(0.1), Optimizer::adam(5e-3)] {
            assert_eq!(Optimizer::from_json(&reparse(&opt.to_json())).unwrap(), opt);
        }
        for act in [
            Activation::Relu,
            Activation::Sigmoid,
            Activation::Tanh,
            Activation::Softmax,
            Activation::Identity,
        ] {
            assert_eq!(Activation::parse(act.as_str()).unwrap(), act);
        }
        assert!(Activation::parse("gelu").is_err());
    }

    #[test]
    fn decoding_rejects_corrupt_layers() {
        // Unknown layer kind.
        let bad = object(vec![("kind", string("conv"))]);
        assert!(Layer::from_json(&bad).is_err());
        // Bias/width mismatch.
        let weights = Matrix::zeros(2, 3);
        let bad = object(vec![
            ("weights", weights.to_json()),
            ("bias", gem_json::bits_array(&[0.0, 0.0])),
        ]);
        assert!(DenseLayer::from_json(&bad).is_err());
        // Out-of-range dropout rate.
        let bad = object(vec![("kind", string("dropout")), ("rate", number(1.5))]);
        assert!(Layer::from_json(&bad).is_err());
        // Degenerate autoencoder config.
        let mut cfg = AutoencoderConfig::new(4, 2);
        cfg.encoder_dims.clear();
        let ae_json = object(vec![
            ("config", cfg.to_json()),
            ("encoder", Sequential::new(0).to_json()),
            ("decoder", Sequential::new(0).to_json()),
        ]);
        assert!(Autoencoder::from_json(&ae_json).is_err());
    }
}
