//! Trainable layers: dense (fully connected) and dropout.

use gem_numeric::Matrix;
use rand::rngs::StdRng;
use rand::Rng;

/// A fully connected layer `y = x · W + b` with cached activations for backpropagation and
/// Adam moment estimates for the optimiser.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseLayer {
    /// Weight matrix of shape `(in_dim, out_dim)`.
    pub weights: Matrix,
    /// Bias vector of length `out_dim`.
    pub bias: Vec<f64>,
    // --- training state ---
    cached_input: Option<Matrix>,
    /// Accumulated weight gradients from the last backward pass.
    pub grad_weights: Option<Matrix>,
    /// Accumulated bias gradients from the last backward pass.
    pub grad_bias: Option<Vec<f64>>,
    // Adam moments.
    adam_m_w: Option<Matrix>,
    adam_v_w: Option<Matrix>,
    adam_m_b: Option<Vec<f64>>,
    adam_v_b: Option<Vec<f64>>,
    adam_t: usize,
}

impl DenseLayer {
    /// Create a layer with Xavier/Glorot-uniform initialised weights and zero bias.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut StdRng) -> Self {
        assert!(
            in_dim > 0 && out_dim > 0,
            "layer dimensions must be positive"
        );
        let limit = (6.0 / (in_dim + out_dim) as f64).sqrt();
        let data: Vec<f64> = (0..in_dim * out_dim)
            .map(|_| rng.gen_range(-limit..limit))
            .collect();
        DenseLayer {
            weights: Matrix::from_vec(in_dim, out_dim, data).expect("dimensions match data"),
            bias: vec![0.0; out_dim],
            cached_input: None,
            grad_weights: None,
            grad_bias: None,
            adam_m_w: None,
            adam_v_w: None,
            adam_m_b: None,
            adam_v_b: None,
            adam_t: 0,
        }
    }

    /// Rebuild a layer from persisted parameters. The training state (cached input,
    /// gradients, Adam moments) starts empty, exactly like a freshly constructed layer:
    /// inference through the rebuilt layer is bit-identical to the layer the parameters
    /// came from, and training can resume from the weights (with reset optimiser
    /// moments).
    ///
    /// # Panics
    /// Panics when `bias.len() != weights.cols()` or either dimension is zero.
    pub fn from_parameters(weights: Matrix, bias: Vec<f64>) -> Self {
        assert!(
            weights.rows() > 0 && weights.cols() > 0,
            "layer dimensions must be positive"
        );
        assert_eq!(
            bias.len(),
            weights.cols(),
            "bias length must equal the layer's out_dim"
        );
        DenseLayer {
            weights,
            bias,
            cached_input: None,
            grad_weights: None,
            grad_bias: None,
            adam_m_w: None,
            adam_v_w: None,
            adam_m_b: None,
            adam_v_b: None,
            adam_t: 0,
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.weights.rows()
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.weights.cols()
    }

    /// Forward pass. When `training` is true the input is cached for the backward pass.
    pub fn forward(&mut self, x: &Matrix, training: bool) -> Matrix {
        let out = self.infer(x);
        if training {
            self.cached_input = Some(x.clone());
        }
        out
    }

    /// Inference-mode forward pass: `xW + b` with nothing cached, so frozen layers can
    /// be evaluated through a shared reference.
    pub fn infer(&self, x: &Matrix) -> Matrix {
        x.matmul(&self.weights)
            .expect("input width must equal layer in_dim")
            .add_row_broadcast(&self.bias)
            .expect("bias length equals out_dim")
    }

    /// Backward pass: given `d_out = ∂L/∂y`, accumulate parameter gradients and return
    /// `∂L/∂x`.
    ///
    /// # Panics
    /// Panics when called before a training-mode forward pass.
    pub fn backward(&mut self, d_out: &Matrix) -> Matrix {
        let x = self
            .cached_input
            .as_ref()
            .expect("backward called without a training forward pass");
        let batch = x.rows().max(1) as f64;
        let grad_w = x
            .transpose()
            .matmul(d_out)
            .expect("shapes align by construction")
            .scale(1.0 / batch);
        let grad_b: Vec<f64> = d_out.column_sums().into_iter().map(|s| s / batch).collect();
        let d_in = d_out
            .matmul(&self.weights.transpose())
            .expect("shapes align by construction");
        self.grad_weights = Some(grad_w);
        self.grad_bias = Some(grad_b);
        d_in
    }

    /// Plain SGD update with learning rate `lr`. Clears the stored gradients.
    pub fn sgd_step(&mut self, lr: f64) {
        if let (Some(gw), Some(gb)) = (self.grad_weights.take(), self.grad_bias.take()) {
            self.weights = self.weights.sub(&gw.scale(lr)).expect("same shape");
            for (b, g) in self.bias.iter_mut().zip(gb) {
                *b -= lr * g;
            }
        }
    }

    /// Adam update with learning rate `lr` and standard betas (0.9, 0.999).
    pub fn adam_step(&mut self, lr: f64) {
        const B1: f64 = 0.9;
        const B2: f64 = 0.999;
        const EPS: f64 = 1e-8;
        let (gw, gb) = match (self.grad_weights.take(), self.grad_bias.take()) {
            (Some(gw), Some(gb)) => (gw, gb),
            _ => return,
        };
        self.adam_t += 1;
        let t = self.adam_t as f64;
        let (rows, cols) = gw.shape();
        let m_w = self
            .adam_m_w
            .get_or_insert_with(|| Matrix::zeros(rows, cols));
        let v_w = self
            .adam_v_w
            .get_or_insert_with(|| Matrix::zeros(rows, cols));
        let m_b = self.adam_m_b.get_or_insert_with(|| vec![0.0; gb.len()]);
        let v_b = self.adam_v_b.get_or_insert_with(|| vec![0.0; gb.len()]);

        // Weights.
        for i in 0..rows {
            for j in 0..cols {
                let g = gw.get(i, j);
                let m = B1 * m_w.get(i, j) + (1.0 - B1) * g;
                let v = B2 * v_w.get(i, j) + (1.0 - B2) * g * g;
                m_w.set(i, j, m);
                v_w.set(i, j, v);
                let m_hat = m / (1.0 - B1.powf(t));
                let v_hat = v / (1.0 - B2.powf(t));
                let update = lr * m_hat / (v_hat.sqrt() + EPS);
                self.weights.set(i, j, self.weights.get(i, j) - update);
            }
        }
        // Bias.
        for j in 0..gb.len() {
            let g = gb[j];
            m_b[j] = B1 * m_b[j] + (1.0 - B1) * g;
            v_b[j] = B2 * v_b[j] + (1.0 - B2) * g * g;
            let m_hat = m_b[j] / (1.0 - B1.powf(t));
            let v_hat = v_b[j] / (1.0 - B2.powf(t));
            self.bias[j] -= lr * m_hat / (v_hat.sqrt() + EPS);
        }
    }
}

/// Inverted dropout: at training time each unit is zeroed with probability `rate` and the
/// survivors are scaled by `1 / (1 - rate)`; at inference time it is the identity.
#[derive(Debug, Clone, PartialEq)]
pub struct Dropout {
    /// Drop probability in `[0, 1)`.
    pub rate: f64,
    mask: Option<Matrix>,
}

impl Dropout {
    /// Create a dropout layer.
    ///
    /// # Panics
    /// Panics when `rate` is not in `[0, 1)`.
    pub fn new(rate: f64) -> Self {
        assert!((0.0..1.0).contains(&rate), "dropout rate must be in [0, 1)");
        Dropout { rate, mask: None }
    }

    /// Forward pass.
    pub fn forward(&mut self, x: &Matrix, training: bool, rng: &mut StdRng) -> Matrix {
        if !training || self.rate == 0.0 {
            self.mask = None;
            return x.clone();
        }
        let keep = 1.0 - self.rate;
        let (rows, cols) = x.shape();
        let mask_data: Vec<f64> = (0..rows * cols)
            .map(|_| {
                if rng.gen::<f64>() < keep {
                    1.0 / keep
                } else {
                    0.0
                }
            })
            .collect();
        let mask = Matrix::from_vec(rows, cols, mask_data).expect("dimensions match");
        let out = x.hadamard(&mask).expect("same shape");
        self.mask = Some(mask);
        out
    }

    /// Backward pass: applies the same mask to the incoming gradient.
    pub fn backward(&mut self, d_out: &Matrix) -> Matrix {
        match &self.mask {
            Some(mask) => d_out.hadamard(mask).expect("same shape"),
            None => d_out.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0)
    }

    #[test]
    fn dense_forward_shape_and_bias() {
        let mut rng = rng();
        let mut layer = DenseLayer::new(3, 2, &mut rng);
        layer.bias = vec![1.0, -1.0];
        let x = Matrix::from_rows(&[vec![0.0, 0.0, 0.0]]).unwrap();
        let y = layer.forward(&x, false);
        assert_eq!(y.shape(), (1, 2));
        assert_eq!(y.row(0), &[1.0, -1.0]);
        assert_eq!(layer.in_dim(), 3);
        assert_eq!(layer.out_dim(), 2);
    }

    #[test]
    fn dense_backward_gradient_matches_finite_difference() {
        let mut r = rng();
        let mut layer = DenseLayer::new(2, 1, &mut r);
        let x = Matrix::from_rows(&[vec![0.3, -0.7], vec![1.1, 0.4]]).unwrap();
        // Loss L = sum(y) so dL/dy = 1.
        let y = layer.forward(&x, true);
        let dy = Matrix::filled(y.rows(), y.cols(), 1.0);
        let dx = layer.backward(&dy);
        // dL/dx should equal W^T broadcast per row.
        for r_idx in 0..2 {
            for c in 0..2 {
                assert!((dx.get(r_idx, c) - layer.weights.get(c, 0)).abs() < 1e-12);
            }
        }
        // Finite-difference check of weight gradient (averaged over the batch).
        let eps = 1e-6;
        let analytic = layer.grad_weights.clone().unwrap();
        for i in 0..2 {
            let mut plus = layer.clone();
            plus.weights.set(i, 0, plus.weights.get(i, 0) + eps);
            let mut minus = layer.clone();
            minus.weights.set(i, 0, minus.weights.get(i, 0) - eps);
            let lp: f64 = plus.forward(&x, false).as_slice().iter().sum::<f64>() / 2.0;
            let lm: f64 = minus.forward(&x, false).as_slice().iter().sum::<f64>() / 2.0;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!((analytic.get(i, 0) - numeric).abs() < 1e-6);
        }
    }

    #[test]
    fn sgd_step_reduces_simple_loss() {
        // One-dimensional linear regression y = 2x learned by a single dense layer.
        let mut r = rng();
        let mut layer = DenseLayer::new(1, 1, &mut r);
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        let target = Matrix::from_rows(&[vec![2.0], vec![4.0], vec![6.0]]).unwrap();
        let mut last_loss = f64::INFINITY;
        for _ in 0..400 {
            let y = layer.forward(&x, true);
            let diff = y.sub(&target).unwrap();
            let loss = diff.frobenius_norm();
            let dy = diff.scale(2.0);
            layer.backward(&dy);
            layer.sgd_step(0.05);
            last_loss = loss;
        }
        assert!(last_loss < 0.05, "final loss {last_loss}");
        assert!((layer.weights.get(0, 0) - 2.0).abs() < 0.1);
    }

    #[test]
    fn adam_step_reduces_simple_loss() {
        let mut r = rng();
        let mut layer = DenseLayer::new(1, 1, &mut r);
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        let target = Matrix::from_rows(&[vec![3.0], vec![6.0], vec![9.0]]).unwrap();
        for _ in 0..1200 {
            let y = layer.forward(&x, true);
            let dy = y.sub(&target).unwrap().scale(2.0);
            layer.backward(&dy);
            layer.adam_step(0.05);
        }
        assert!((layer.weights.get(0, 0) - 3.0).abs() < 0.2);
    }

    #[test]
    #[should_panic(expected = "without a training forward")]
    fn backward_without_forward_panics() {
        let mut r = rng();
        let mut layer = DenseLayer::new(2, 2, &mut r);
        layer.backward(&Matrix::zeros(1, 2));
    }

    #[test]
    fn dropout_inference_is_identity() {
        let mut d = Dropout::new(0.5);
        let x = Matrix::filled(4, 4, 1.0);
        let y = d.forward(&x, false, &mut rng());
        assert_eq!(y, x);
    }

    #[test]
    fn dropout_training_zeroes_and_rescales() {
        let mut d = Dropout::new(0.5);
        let x = Matrix::filled(50, 50, 1.0);
        let y = d.forward(&x, true, &mut rng());
        let zeros = y.as_slice().iter().filter(|&&v| v == 0.0).count();
        let kept = y
            .as_slice()
            .iter()
            .filter(|&&v| (v - 2.0).abs() < 1e-12)
            .count();
        assert_eq!(zeros + kept, 2500);
        assert!(zeros > 800 && zeros < 1700, "zeros = {zeros}");
        // Expected value is approximately preserved.
        let mean: f64 = y.as_slice().iter().sum::<f64>() / 2500.0;
        assert!((mean - 1.0).abs() < 0.15);
    }

    #[test]
    fn dropout_backward_uses_same_mask() {
        let mut d = Dropout::new(0.3);
        let x = Matrix::filled(10, 10, 1.0);
        let y = d.forward(&x, true, &mut rng());
        let grad = d.backward(&Matrix::filled(10, 10, 1.0));
        // Gradient must be zero exactly where the forward output was zeroed.
        for (a, b) in y.as_slice().iter().zip(grad.as_slice()) {
            assert_eq!(*a == 0.0, *b == 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "dropout rate")]
    fn invalid_dropout_rate_panics() {
        Dropout::new(1.0);
    }
}
