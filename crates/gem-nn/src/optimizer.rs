//! Optimiser selection.
//!
//! The per-layer update rules themselves live on [`crate::DenseLayer`] (SGD and Adam); this
//! module provides the small configuration enum that [`crate::Sequential`] and the
//! higher-level models use to choose between them.

/// Which update rule a training loop applies after backpropagation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OptimizerKind {
    /// Plain stochastic gradient descent.
    Sgd,
    /// Adam with the standard (0.9, 0.999) betas.
    Adam,
}

/// An optimiser: the update rule plus its learning rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Optimizer {
    /// The update rule.
    pub kind: OptimizerKind,
    /// Learning rate.
    pub learning_rate: f64,
}

impl Optimizer {
    /// SGD with the given learning rate.
    pub fn sgd(learning_rate: f64) -> Self {
        Optimizer {
            kind: OptimizerKind::Sgd,
            learning_rate,
        }
    }

    /// Adam with the given learning rate.
    pub fn adam(learning_rate: f64) -> Self {
        Optimizer {
            kind: OptimizerKind::Adam,
            learning_rate,
        }
    }
}

impl Default for Optimizer {
    fn default() -> Self {
        Optimizer::adam(1e-3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let s = Optimizer::sgd(0.1);
        assert_eq!(s.kind, OptimizerKind::Sgd);
        assert_eq!(s.learning_rate, 0.1);
        let a = Optimizer::adam(0.01);
        assert_eq!(a.kind, OptimizerKind::Adam);
    }

    #[test]
    fn default_is_adam() {
        assert_eq!(Optimizer::default().kind, OptimizerKind::Adam);
        assert!(Optimizer::default().learning_rate > 0.0);
    }
}
