//! Loss functions with gradients.

use gem_numeric::Matrix;

/// A loss value together with its gradient with respect to the model output.
#[derive(Debug, Clone, PartialEq)]
pub struct LossOutput {
    /// Mean loss over the batch.
    pub loss: f64,
    /// Gradient of the mean loss with respect to the prediction matrix (same shape).
    pub gradient: Matrix,
}

/// Mean squared error `mean((pred - target)²)` over all elements.
///
/// # Panics
/// Panics when shapes differ.
pub fn mse_loss(pred: &Matrix, target: &Matrix) -> LossOutput {
    assert_eq!(pred.shape(), target.shape(), "MSE shapes must match");
    let diff = pred.sub(target).expect("checked shapes");
    let n = (pred.rows() * pred.cols()).max(1) as f64;
    let loss = diff.as_slice().iter().map(|d| d * d).sum::<f64>() / n;
    let gradient = diff.scale(2.0 / n);
    LossOutput { loss, gradient }
}

/// Categorical cross-entropy over row-wise softmax probabilities.
///
/// `pred` must contain probabilities (rows summing to 1, e.g. softmax output) and `target`
/// one-hot rows. The returned gradient is `(pred - target) / batch`, i.e. the combined
/// softmax + cross-entropy gradient with respect to the *logits*, which is why
/// [`crate::Activation::Softmax`] passes gradients through unchanged.
///
/// # Panics
/// Panics when shapes differ.
pub fn cross_entropy_loss(pred: &Matrix, target: &Matrix) -> LossOutput {
    assert_eq!(
        pred.shape(),
        target.shape(),
        "cross-entropy shapes must match"
    );
    let batch = pred.rows().max(1) as f64;
    let mut loss = 0.0;
    for r in 0..pred.rows() {
        for c in 0..pred.cols() {
            let t = target.get(r, c);
            if t > 0.0 {
                loss -= t * pred.get(r, c).max(1e-12).ln();
            }
        }
    }
    loss /= batch;
    let gradient = pred.sub(target).expect("checked shapes").scale(1.0 / batch);
    LossOutput { loss, gradient }
}

/// KL divergence `KL(target ‖ pred)` between two row-stochastic matrices, as used by the
/// DEC/SDCN/TableDC self-training objective (`target` is the sharpened distribution P,
/// `pred` the soft assignment Q).
///
/// The gradient returned is with respect to `pred`.
///
/// # Panics
/// Panics when shapes differ.
pub fn kl_divergence_loss(pred: &Matrix, target: &Matrix) -> LossOutput {
    assert_eq!(pred.shape(), target.shape(), "KL shapes must match");
    let batch = pred.rows().max(1) as f64;
    let mut loss = 0.0;
    let mut grad = Matrix::zeros(pred.rows(), pred.cols());
    for r in 0..pred.rows() {
        for c in 0..pred.cols() {
            let p = target.get(r, c).max(1e-12);
            let q = pred.get(r, c).max(1e-12);
            loss += p * (p / q).ln();
            grad.set(r, c, -p / q / batch);
        }
    }
    LossOutput {
        loss: loss / batch,
        gradient: grad,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: &[Vec<f64>]) -> Matrix {
        Matrix::from_rows(rows).unwrap()
    }

    #[test]
    fn mse_zero_for_equal_matrices() {
        let a = m(&[vec![1.0, 2.0]]);
        let out = mse_loss(&a, &a);
        assert_eq!(out.loss, 0.0);
        assert_eq!(out.gradient, Matrix::zeros(1, 2));
    }

    #[test]
    fn mse_known_value_and_gradient_direction() {
        let pred = m(&[vec![1.0, 3.0]]);
        let target = m(&[vec![0.0, 0.0]]);
        let out = mse_loss(&pred, &target);
        assert!((out.loss - 5.0).abs() < 1e-12);
        assert!(out.gradient.get(0, 0) > 0.0);
        assert!(out.gradient.get(0, 1) > out.gradient.get(0, 0));
    }

    #[test]
    #[should_panic(expected = "shapes must match")]
    fn mse_shape_mismatch_panics() {
        mse_loss(&Matrix::zeros(1, 2), &Matrix::zeros(2, 2));
    }

    #[test]
    fn cross_entropy_perfect_prediction_is_zero() {
        let pred = m(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
        let target = pred.clone();
        let out = cross_entropy_loss(&pred, &target);
        assert!(out.loss < 1e-9);
    }

    #[test]
    fn cross_entropy_uniform_prediction() {
        let pred = m(&[vec![0.5, 0.5]]);
        let target = m(&[vec![1.0, 0.0]]);
        let out = cross_entropy_loss(&pred, &target);
        assert!((out.loss - (2.0f64).ln()).abs() < 1e-9);
        // Gradient pushes probability toward the true class.
        assert!(out.gradient.get(0, 0) < 0.0);
        assert!(out.gradient.get(0, 1) > 0.0);
    }

    #[test]
    fn kl_zero_for_identical_distributions() {
        let p = m(&[vec![0.25, 0.75], vec![0.5, 0.5]]);
        let out = kl_divergence_loss(&p, &p);
        assert!(out.loss.abs() < 1e-9);
    }

    #[test]
    fn kl_positive_and_asymmetric() {
        let q = m(&[vec![0.5, 0.5]]);
        let p = m(&[vec![0.9, 0.1]]);
        let forward = kl_divergence_loss(&q, &p).loss;
        let backward = kl_divergence_loss(&p, &q).loss;
        assert!(forward > 0.0);
        assert!(backward > 0.0);
        assert!((forward - backward).abs() > 1e-6);
    }

    #[test]
    fn kl_gradient_is_negative_where_target_mass_exceeds_prediction() {
        let q = m(&[vec![0.2, 0.8]]);
        let p = m(&[vec![0.8, 0.2]]);
        let out = kl_divergence_loss(&q, &p);
        // Increasing q[0] reduces the divergence, so the gradient there is negative and
        // steeper than at q[1].
        assert!(out.gradient.get(0, 0) < out.gradient.get(0, 1));
        assert!(out.gradient.get(0, 0) < 0.0);
    }
}
