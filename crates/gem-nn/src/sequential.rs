//! A sequential container of layers with manual backpropagation.

use crate::activation::Activation;
use crate::layer::{DenseLayer, Dropout};
use crate::loss::{cross_entropy_loss, mse_loss};
use crate::optimizer::{Optimizer, OptimizerKind};
use gem_numeric::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One layer of a [`Sequential`] model.
#[derive(Debug, Clone)]
pub enum Layer {
    /// A trainable dense layer.
    Dense(Box<DenseLayer>),
    /// An element-wise activation.
    Activation(Activation),
    /// Inverted dropout.
    Dropout(Dropout),
}

/// Training hyper-parameters for the built-in fit loops.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Number of full passes over the data.
    pub epochs: usize,
    /// Optimiser and learning rate.
    pub optimizer: Optimizer,
    /// Random seed used for dropout masks.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 200,
            optimizer: Optimizer::adam(1e-2),
            seed: 17,
        }
    }
}

/// A simple feed-forward network: a stack of dense layers, activations and dropout.
#[derive(Debug, Clone)]
pub struct Sequential {
    layers: Vec<Layer>,
    rng: StdRng,
    /// Cached per-layer outputs from the last training-mode forward pass (used by backward).
    forward_cache: Vec<Matrix>,
}

impl Sequential {
    /// Create an empty model seeded for reproducible initialisation and dropout.
    pub fn new(seed: u64) -> Self {
        Sequential {
            layers: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
            forward_cache: Vec::new(),
        }
    }

    /// Rebuild a model from persisted layers. The RNG (used only for weight
    /// initialisation of *new* layers and for training-time dropout masks) is freshly
    /// seeded with `seed`; inference through the rebuilt model is bit-identical to the
    /// model the layers came from.
    pub fn from_layers(layers: Vec<Layer>, seed: u64) -> Self {
        Sequential {
            layers,
            rng: StdRng::seed_from_u64(seed),
            forward_cache: Vec::new(),
        }
    }

    /// The layers in order (dense, activation and dropout alike).
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Total number of trainable parameters (dense weights + biases).
    pub fn n_parameters(&self) -> usize {
        self.layers
            .iter()
            .map(|layer| match layer {
                Layer::Dense(dense) => {
                    dense.weights.rows() * dense.weights.cols() + dense.bias.len()
                }
                _ => 0,
            })
            .sum()
    }

    /// Append a dense layer.
    pub fn dense(mut self, in_dim: usize, out_dim: usize) -> Self {
        let layer = DenseLayer::new(in_dim, out_dim, &mut self.rng);
        self.layers.push(Layer::Dense(Box::new(layer)));
        self
    }

    /// Append an activation.
    pub fn activation(mut self, activation: Activation) -> Self {
        self.layers.push(Layer::Activation(activation));
        self
    }

    /// Append a dropout layer.
    pub fn dropout(mut self, rate: f64) -> Self {
        self.layers.push(Layer::Dropout(Dropout::new(rate)));
        self
    }

    /// Number of layers (including activations and dropout).
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the model has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Forward pass. When `training` is true, intermediate activations are cached for
    /// [`Sequential::backward`] and dropout is active.
    pub fn forward(&mut self, x: &Matrix, training: bool) -> Matrix {
        let mut current = x.clone();
        if training {
            self.forward_cache.clear();
        }
        for layer in self.layers.iter_mut() {
            current = match layer {
                Layer::Dense(dense) => dense.forward(&current, training),
                Layer::Activation(act) => act.forward(&current),
                Layer::Dropout(drop) => drop.forward(&current, training, &mut self.rng),
            };
            if training {
                self.forward_cache.push(current.clone());
            }
        }
        current
    }

    /// Backward pass from the gradient of the loss with respect to the model output.
    /// Accumulates parameter gradients inside each dense layer and returns the gradient with
    /// respect to the model *input* (which lets models be chained, e.g. an autoencoder's
    /// decoder feeding its input gradient into the encoder).
    pub fn backward(&mut self, d_out: &Matrix) -> Matrix {
        let mut grad = d_out.clone();
        let n = self.layers.len();
        for (rev_idx, layer) in self.layers.iter_mut().rev().enumerate() {
            let idx = n - 1 - rev_idx;
            grad = match layer {
                Layer::Dense(dense) => dense.backward(&grad),
                Layer::Activation(act) => {
                    let output = &self.forward_cache[idx];
                    act.backward(output, &grad)
                }
                Layer::Dropout(drop) => drop.backward(&grad),
            };
        }
        grad
    }

    /// Apply one optimiser step to every dense layer and clear the gradients.
    pub fn step(&mut self, optimizer: Optimizer) {
        for layer in self.layers.iter_mut() {
            if let Layer::Dense(dense) = layer {
                match optimizer.kind {
                    OptimizerKind::Sgd => dense.sgd_step(optimizer.learning_rate),
                    OptimizerKind::Adam => dense.adam_step(optimizer.learning_rate),
                }
            }
        }
    }

    /// Train against a mean-squared-error objective (full-batch). Returns the loss per epoch.
    pub fn fit_mse(&mut self, x: &Matrix, target: &Matrix, config: &TrainConfig) -> Vec<f64> {
        let mut history = Vec::with_capacity(config.epochs);
        for _ in 0..config.epochs {
            let pred = self.forward(x, true);
            let out = mse_loss(&pred, target);
            self.backward(&out.gradient);
            self.step(config.optimizer);
            history.push(out.loss);
        }
        history
    }

    /// Train a classifier with softmax + cross-entropy (the model's final layer should be
    /// [`Activation::Softmax`]). `targets` are one-hot rows. Returns the loss per epoch.
    pub fn fit_cross_entropy(
        &mut self,
        x: &Matrix,
        targets: &Matrix,
        config: &TrainConfig,
    ) -> Vec<f64> {
        let mut history = Vec::with_capacity(config.epochs);
        for _ in 0..config.epochs {
            let pred = self.forward(x, true);
            let out = cross_entropy_loss(&pred, targets);
            self.backward(&out.gradient);
            self.step(config.optimizer);
            history.push(out.loss);
        }
        history
    }

    /// Inference-mode forward pass.
    pub fn predict(&mut self, x: &Matrix) -> Matrix {
        self.forward(x, false)
    }

    /// Inference-mode forward pass through a shared reference: dropout is inactive and
    /// nothing is cached or mutated, so a frozen model can serve many threads at once.
    /// Output is identical to `forward(x, false)`.
    pub fn infer(&self, x: &Matrix) -> Matrix {
        let mut current = x.clone();
        for layer in &self.layers {
            current = match layer {
                Layer::Dense(dense) => dense.infer(&current),
                Layer::Activation(act) => act.forward(&current),
                // Inverted dropout is the identity at inference time.
                Layer::Dropout(_) => current,
            };
        }
        current
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_constructs_expected_layer_count() {
        let model = Sequential::new(0)
            .dense(4, 8)
            .activation(Activation::Relu)
            .dropout(0.2)
            .dense(8, 2)
            .activation(Activation::Softmax);
        assert_eq!(model.len(), 5);
        assert!(!model.is_empty());
    }

    #[test]
    fn learns_xor() {
        let x = Matrix::from_rows(&[
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ])
        .unwrap();
        let y = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![1.0], vec![0.0]]).unwrap();
        let mut model = Sequential::new(3)
            .dense(2, 8)
            .activation(Activation::Tanh)
            .dense(8, 1)
            .activation(Activation::Sigmoid);
        let config = TrainConfig {
            epochs: 2000,
            optimizer: Optimizer::adam(0.05),
            seed: 3,
        };
        let history = model.fit_mse(&x, &y, &config);
        assert!(history.last().unwrap() < &0.05, "loss {:?}", history.last());
        let pred = model.predict(&x);
        assert!(pred.get(0, 0) < 0.3);
        assert!(pred.get(1, 0) > 0.7);
        assert!(pred.get(2, 0) > 0.7);
        assert!(pred.get(3, 0) < 0.3);
    }

    #[test]
    fn learns_linearly_separable_classification() {
        // Two classes separated along the first dimension.
        let mut rows = Vec::new();
        let mut targets = Vec::new();
        for i in 0..40 {
            let offset = (i % 10) as f64 * 0.01;
            if i % 2 == 0 {
                rows.push(vec![1.0 + offset, 0.0]);
                targets.push(vec![1.0, 0.0]);
            } else {
                rows.push(vec![-1.0 - offset, 0.0]);
                targets.push(vec![0.0, 1.0]);
            }
        }
        let x = Matrix::from_rows(&rows).unwrap();
        let t = Matrix::from_rows(&targets).unwrap();
        let mut model = Sequential::new(5)
            .dense(2, 8)
            .activation(Activation::Relu)
            .dense(8, 2)
            .activation(Activation::Softmax);
        let config = TrainConfig {
            epochs: 300,
            optimizer: Optimizer::adam(0.02),
            seed: 5,
        };
        let history = model.fit_cross_entropy(&x, &t, &config);
        assert!(history.last().unwrap() < &0.1);
        let pred = model.predict(&x);
        let mut correct = 0;
        for r in 0..40 {
            let predicted = if pred.get(r, 0) > pred.get(r, 1) {
                0
            } else {
                1
            };
            let truth = if t.get(r, 0) > 0.5 { 0 } else { 1 };
            if predicted == truth {
                correct += 1;
            }
        }
        assert!(correct >= 38, "correct = {correct}");
    }

    #[test]
    fn training_with_dropout_still_converges() {
        let x = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]).unwrap();
        let y = Matrix::from_rows(&[vec![1.0], vec![0.0]]).unwrap();
        let mut model = Sequential::new(9)
            .dense(2, 16)
            .activation(Activation::Relu)
            .dropout(0.1)
            .dense(16, 1)
            .activation(Activation::Sigmoid);
        let config = TrainConfig {
            epochs: 800,
            optimizer: Optimizer::adam(0.02),
            seed: 9,
        };
        model.fit_mse(&x, &y, &config);
        let pred = model.predict(&x);
        assert!(pred.get(0, 0) > 0.7);
        assert!(pred.get(1, 0) < 0.3);
    }

    #[test]
    fn sgd_also_learns_simple_regression() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0], vec![4.0]]).unwrap();
        let y = x.scale(0.5);
        let mut model = Sequential::new(1).dense(1, 1);
        let config = TrainConfig {
            epochs: 2000,
            optimizer: Optimizer::sgd(0.02),
            seed: 1,
        };
        let history = model.fit_mse(&x, &y, &config);
        assert!(history.last().unwrap() < &1e-2, "loss {:?}", history.last());
    }

    #[test]
    fn loss_history_is_generally_decreasing() {
        let x = Matrix::from_rows(&[vec![0.5, -0.5], vec![-0.5, 0.5]]).unwrap();
        let y = Matrix::from_rows(&[vec![1.0], vec![-1.0]]).unwrap();
        let mut model = Sequential::new(2)
            .dense(2, 4)
            .activation(Activation::Tanh)
            .dense(4, 1);
        let config = TrainConfig {
            epochs: 100,
            optimizer: Optimizer::adam(0.05),
            seed: 2,
        };
        let history = model.fit_mse(&x, &y, &config);
        assert!(history.first().unwrap() > history.last().unwrap());
    }
}
