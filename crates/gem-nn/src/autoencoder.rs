//! A symmetric autoencoder built from two [`Sequential`] networks.
//!
//! Used for the Gem "AE" composition method (§4.2.2) and as the pre-training stage of the
//! SDCN / TableDC deep-clustering algorithms (§4.6).

use crate::activation::Activation;
use crate::loss::mse_loss;
use crate::optimizer::Optimizer;
use crate::sequential::Sequential;
use gem_numeric::Matrix;

/// Architecture and training hyper-parameters of an [`Autoencoder`].
#[derive(Debug, Clone, PartialEq)]
pub struct AutoencoderConfig {
    /// Input dimensionality.
    pub input_dim: usize,
    /// Hidden layer sizes of the encoder, ending with the latent dimensionality. The decoder
    /// mirrors this.
    pub encoder_dims: Vec<usize>,
    /// Training epochs.
    pub epochs: usize,
    /// Optimiser for the reconstruction objective.
    pub optimizer: Optimizer,
    /// Random seed for initialisation.
    pub seed: u64,
}

impl AutoencoderConfig {
    /// A reasonable default for embedding-sized inputs: `input → 64 → latent` with Adam.
    pub fn new(input_dim: usize, latent_dim: usize) -> Self {
        AutoencoderConfig {
            input_dim,
            encoder_dims: vec![64.min(input_dim.max(4) * 2), latent_dim],
            epochs: 300,
            optimizer: Optimizer::adam(5e-3),
            seed: 13,
        }
    }
}

/// A symmetric autoencoder: `encoder: input → latent`, `decoder: latent → input`.
#[derive(Debug, Clone)]
pub struct Autoencoder {
    encoder: Sequential,
    decoder: Sequential,
    config: AutoencoderConfig,
}

impl Autoencoder {
    /// Build the (untrained) autoencoder described by `config`.
    ///
    /// # Panics
    /// Panics when `config.encoder_dims` is empty or contains a zero, or when
    /// `config.input_dim` is zero.
    pub fn new(config: AutoencoderConfig) -> Self {
        assert!(config.input_dim > 0, "input_dim must be positive");
        assert!(
            !config.encoder_dims.is_empty(),
            "encoder_dims must contain at least the latent dimension"
        );
        assert!(
            config.encoder_dims.iter().all(|&d| d > 0),
            "all encoder dimensions must be positive"
        );
        let mut encoder = Sequential::new(config.seed);
        let mut dims = vec![config.input_dim];
        dims.extend_from_slice(&config.encoder_dims);
        for w in dims.windows(2) {
            encoder = encoder.dense(w[0], w[1]);
            encoder = encoder.activation(Activation::Tanh);
        }
        let mut decoder = Sequential::new(config.seed.wrapping_add(1));
        let mut rev: Vec<usize> = dims.clone();
        rev.reverse();
        for (i, w) in rev.windows(2).enumerate() {
            decoder = decoder.dense(w[0], w[1]);
            // Last decoder layer is linear so arbitrary-range inputs can be reconstructed.
            if i + 2 < rev.len() {
                decoder = decoder.activation(Activation::Tanh);
            }
        }
        Autoencoder {
            encoder,
            decoder,
            config,
        }
    }

    /// Rebuild an autoencoder from persisted halves. Inference ([`Autoencoder::encode`] /
    /// [`Autoencoder::reconstruct`]) through the rebuilt model is bit-identical to the
    /// model the halves came from.
    ///
    /// # Panics
    /// Panics when `config` fails the [`Autoencoder::new`] validation.
    pub fn from_parts(encoder: Sequential, decoder: Sequential, config: AutoencoderConfig) -> Self {
        assert!(config.input_dim > 0, "input_dim must be positive");
        assert!(
            !config.encoder_dims.is_empty() && config.encoder_dims.iter().all(|&d| d > 0),
            "encoder dimensions must be positive and non-empty"
        );
        Autoencoder {
            encoder,
            decoder,
            config,
        }
    }

    /// Shared access to the encoder network.
    pub fn encoder(&self) -> &Sequential {
        &self.encoder
    }

    /// Shared access to the decoder network.
    pub fn decoder(&self) -> &Sequential {
        &self.decoder
    }

    /// Total number of trainable parameters across both halves.
    pub fn n_parameters(&self) -> usize {
        self.encoder.n_parameters() + self.decoder.n_parameters()
    }

    /// Latent dimensionality.
    pub fn latent_dim(&self) -> usize {
        *self
            .config
            .encoder_dims
            .last()
            .expect("validated non-empty")
    }

    /// Train on the rows of `x` with a reconstruction (MSE) objective. Returns the loss per
    /// epoch.
    pub fn fit(&mut self, x: &Matrix) -> Vec<f64> {
        let mut history = Vec::with_capacity(self.config.epochs);
        for _ in 0..self.config.epochs {
            let latent = self.encoder.forward(x, true);
            let recon = self.decoder.forward(&latent, true);
            let out = mse_loss(&recon, x);
            // Backprop through the decoder; its input gradient is the gradient at the latent
            // code, which then flows into the encoder.
            let latent_grad = self.decoder.backward(&out.gradient);
            self.encoder.backward(&latent_grad);
            self.decoder.step(self.config.optimizer);
            self.encoder.step(self.config.optimizer);
            history.push(out.loss);
        }
        history
    }

    /// Encode rows of `x` into the latent space (inference mode). Takes `&self`: a
    /// trained autoencoder is frozen at inference time, so many threads can encode
    /// against one shared model.
    pub fn encode(&self, x: &Matrix) -> Matrix {
        self.encoder.infer(x)
    }

    /// Reconstruct rows of `x` (inference mode).
    pub fn reconstruct(&self, x: &Matrix) -> Matrix {
        self.decoder.infer(&self.encode(x))
    }

    /// Mean reconstruction error on `x`.
    pub fn reconstruction_error(&self, x: &Matrix) -> f64 {
        let recon = self.reconstruct(x);
        mse_loss(&recon, x).loss
    }

    /// Mutable access to the encoder (used by the deep-clustering fine-tuning loops).
    pub fn encoder_mut(&mut self) -> &mut Sequential {
        &mut self.encoder
    }

    /// Shared access to the training configuration.
    pub fn config(&self) -> &AutoencoderConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_data() -> Matrix {
        // Points near a 2-D manifold embedded in 4-D: columns 2 and 3 are linear
        // combinations of columns 0 and 1.
        let mut rows = Vec::new();
        for i in 0..60 {
            let a = (i as f64 / 10.0).sin();
            let b = (i as f64 / 7.0).cos();
            rows.push(vec![a, b, a + b, a - b]);
        }
        Matrix::from_rows(&rows).unwrap()
    }

    #[test]
    fn construction_validates_dimensions() {
        let cfg = AutoencoderConfig::new(4, 2);
        let ae = Autoencoder::new(cfg.clone());
        assert_eq!(ae.latent_dim(), 2);
        assert_eq!(ae.config().input_dim, 4);
    }

    #[test]
    #[should_panic(expected = "input_dim")]
    fn zero_input_dim_panics() {
        let mut cfg = AutoencoderConfig::new(4, 2);
        cfg.input_dim = 0;
        Autoencoder::new(cfg);
    }

    #[test]
    fn training_reduces_reconstruction_error() {
        let data = toy_data();
        let mut cfg = AutoencoderConfig::new(4, 2);
        cfg.epochs = 400;
        cfg.optimizer = Optimizer::adam(5e-3);
        let mut ae = Autoencoder::new(cfg);
        let before = ae.reconstruction_error(&data);
        let history = ae.fit(&data);
        let after = ae.reconstruction_error(&data);
        assert!(after < before, "before {before}, after {after}");
        assert!(history.first().unwrap() > history.last().unwrap());
        assert!(after < 0.2, "after {after}");
    }

    #[test]
    fn encode_produces_latent_dimension() {
        let data = toy_data();
        let ae = Autoencoder::new(AutoencoderConfig::new(4, 3));
        let latent = ae.encode(&data);
        assert_eq!(latent.shape(), (60, 3));
        assert!(latent.all_finite());
    }

    #[test]
    fn reconstruct_shape_matches_input() {
        let data = toy_data();
        let ae = Autoencoder::new(AutoencoderConfig::new(4, 2));
        let recon = ae.reconstruct(&data);
        assert_eq!(recon.shape(), data.shape());
    }
}
