//! Element-wise activation functions with analytic derivatives.

use gem_numeric::Matrix;

/// Supported activation functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Rectified linear unit.
    Relu,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Row-wise softmax (used as the final layer of the classifier baselines).
    Softmax,
    /// Identity (no-op), useful for linear output layers.
    Identity,
}

impl Activation {
    /// Apply the activation to every element (softmax is applied row-wise).
    pub fn forward(&self, x: &Matrix) -> Matrix {
        match self {
            Activation::Relu => x.map(|v| v.max(0.0)),
            Activation::Sigmoid => x.map(sigmoid),
            Activation::Tanh => x.map(f64::tanh),
            Activation::Identity => x.clone(),
            Activation::Softmax => {
                let mut out = x.clone();
                for r in 0..out.rows() {
                    let row = out.row_mut(r);
                    let max = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                    let mut sum = 0.0;
                    for v in row.iter_mut() {
                        *v = (*v - max).exp();
                        sum += *v;
                    }
                    if sum > 0.0 {
                        for v in row.iter_mut() {
                            *v /= sum;
                        }
                    }
                }
                out
            }
        }
    }

    /// Gradient of the loss with respect to the activation input, given the activation
    /// output `y` and the gradient `dy` with respect to the output.
    ///
    /// For `Softmax` this returns `dy` unchanged: the softmax derivative is combined with the
    /// cross-entropy loss in [`crate::loss::cross_entropy_loss`], which already emits the
    /// `(softmax - target)` gradient.
    pub fn backward(&self, y: &Matrix, dy: &Matrix) -> Matrix {
        match self {
            Activation::Relu => {
                let mask = y.map(|v| if v > 0.0 { 1.0 } else { 0.0 });
                dy.hadamard(&mask).expect("shape preserved by activation")
            }
            Activation::Sigmoid => {
                let deriv = y.map(|v| v * (1.0 - v));
                dy.hadamard(&deriv).expect("shape preserved by activation")
            }
            Activation::Tanh => {
                let deriv = y.map(|v| 1.0 - v * v);
                dy.hadamard(&deriv).expect("shape preserved by activation")
            }
            Activation::Identity | Activation::Softmax => dy.clone(),
        }
    }
}

fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: &[Vec<f64>]) -> Matrix {
        Matrix::from_rows(rows).unwrap()
    }

    #[test]
    fn relu_clamps_negatives() {
        let x = m(&[vec![-1.0, 0.0, 2.0]]);
        let y = Activation::Relu.forward(&x);
        assert_eq!(y.row(0), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn relu_backward_masks_gradient() {
        let x = m(&[vec![-1.0, 0.5]]);
        let y = Activation::Relu.forward(&x);
        let dy = m(&[vec![3.0, 3.0]]);
        let dx = Activation::Relu.backward(&y, &dy);
        assert_eq!(dx.row(0), &[0.0, 3.0]);
    }

    #[test]
    fn sigmoid_bounds_and_midpoint() {
        let x = m(&[vec![-100.0, 0.0, 100.0]]);
        let y = Activation::Sigmoid.forward(&x);
        assert!(y.get(0, 0) < 1e-6);
        assert!((y.get(0, 1) - 0.5).abs() < 1e-12);
        assert!(y.get(0, 2) > 1.0 - 1e-6);
        assert!(y.all_finite());
    }

    #[test]
    fn sigmoid_backward_peaks_at_half() {
        let y = m(&[vec![0.5, 0.9]]);
        let dy = m(&[vec![1.0, 1.0]]);
        let dx = Activation::Sigmoid.backward(&y, &dy);
        assert!((dx.get(0, 0) - 0.25).abs() < 1e-12);
        assert!(dx.get(0, 1) < 0.25);
    }

    #[test]
    fn tanh_forward_backward() {
        let x = m(&[vec![0.0, 1.0]]);
        let y = Activation::Tanh.forward(&x);
        assert_eq!(y.get(0, 0), 0.0);
        assert!((y.get(0, 1) - 1.0f64.tanh()).abs() < 1e-12);
        let dx = Activation::Tanh.backward(&y, &m(&[vec![1.0, 1.0]]));
        assert!((dx.get(0, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn softmax_rows_sum_to_one_and_handle_large_logits() {
        let x = m(&[vec![1000.0, 1001.0, 999.0], vec![0.0, 0.0, 0.0]]);
        let y = Activation::Softmax.forward(&x);
        for r in 0..2 {
            assert!((y.row(r).iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
        assert!(y.all_finite());
        // Uniform logits give uniform probabilities.
        assert!((y.get(1, 0) - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn identity_passthrough() {
        let x = m(&[vec![1.0, -2.0]]);
        assert_eq!(Activation::Identity.forward(&x), x);
        let dy = m(&[vec![0.5, 0.5]]);
        assert_eq!(Activation::Identity.backward(&x, &dy), dy);
    }

    #[test]
    fn numerical_gradient_check_sigmoid() {
        // Finite-difference check of d sigmoid / dx at a few points.
        let eps = 1e-6;
        for &x0 in &[-1.5f64, 0.0, 0.8] {
            let x = m(&[vec![x0]]);
            let y = Activation::Sigmoid.forward(&x);
            let dy = m(&[vec![1.0]]);
            let analytic = Activation::Sigmoid.backward(&y, &dy).get(0, 0);
            let yp = Activation::Sigmoid.forward(&m(&[vec![x0 + eps]])).get(0, 0);
            let ym = Activation::Sigmoid.forward(&m(&[vec![x0 - eps]])).get(0, 0);
            let numeric = (yp - ym) / (2.0 * eps);
            assert!((analytic - numeric).abs() < 1e-6, "x0={x0}");
        }
    }
}
