//! A minimal graph convolutional layer.
//!
//! The Pythagoras_SC baseline (§4.1.3) encodes each column's features through a small graph
//! convolutional network; SDCN (§4.6) also mixes a GCN branch with its autoencoder. The
//! layer implemented here is the classic Kipf–Welling propagation rule
//! `H' = act( Â · H · W )` where `Â = D^{-1/2} (A + I) D^{-1/2}` is the symmetrically
//! normalised adjacency with self-loops.

use crate::activation::Activation;
use crate::layer::DenseLayer;
use gem_numeric::Matrix;
use rand::rngs::StdRng;

/// Symmetrically normalise an adjacency matrix, adding self-loops:
/// `Â = D^{-1/2} (A + I) D^{-1/2}`.
///
/// # Panics
/// Panics when `adjacency` is not square.
pub fn normalize_adjacency(adjacency: &Matrix) -> Matrix {
    let (n, m) = adjacency.shape();
    assert_eq!(n, m, "adjacency matrix must be square");
    let with_loops = adjacency.add(&Matrix::identity(n)).expect("same shape");
    let degrees: Vec<f64> = with_loops.row_sums();
    let inv_sqrt: Vec<f64> = degrees
        .iter()
        .map(|&d| if d > 0.0 { 1.0 / d.sqrt() } else { 0.0 })
        .collect();
    let mut out = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            out.set(i, j, inv_sqrt[i] * with_loops.get(i, j) * inv_sqrt[j]);
        }
    }
    out
}

/// One graph convolutional layer with a trainable dense transform and a fixed activation.
#[derive(Debug, Clone)]
pub struct GcnLayer {
    dense: DenseLayer,
    activation: Activation,
    cached_propagated: Option<Matrix>,
}

impl GcnLayer {
    /// Create a GCN layer mapping `in_dim`-dimensional node features to `out_dim`.
    pub fn new(in_dim: usize, out_dim: usize, activation: Activation, rng: &mut StdRng) -> Self {
        GcnLayer {
            dense: DenseLayer::new(in_dim, out_dim, rng),
            activation,
            cached_propagated: None,
        }
    }

    /// Forward pass: `act( norm_adj · features · W + b )`.
    ///
    /// `norm_adj` should come from [`normalize_adjacency`].
    pub fn forward(&mut self, norm_adj: &Matrix, features: &Matrix, training: bool) -> Matrix {
        let propagated = norm_adj
            .matmul(features)
            .expect("adjacency rows must match feature rows");
        let pre = self.dense.forward(&propagated, training);
        if training {
            self.cached_propagated = Some(propagated);
        }
        self.activation.forward(&pre)
    }

    /// Backward pass given the layer output `y` and the loss gradient with respect to `y`.
    /// Accumulates the dense layer's gradients and returns the gradient with respect to the
    /// propagated features (before the dense transform).
    pub fn backward(&mut self, y: &Matrix, d_out: &Matrix) -> Matrix {
        let d_pre = self.activation.backward(y, d_out);
        self.dense.backward(&d_pre)
    }

    /// Adam update of the dense transform.
    pub fn adam_step(&mut self, lr: f64) {
        self.dense.adam_step(lr);
    }

    /// SGD update of the dense transform.
    pub fn sgd_step(&mut self, lr: f64) {
        self.dense.sgd_step(lr);
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.dense.out_dim()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn normalized_adjacency_identity_graph() {
        // No edges: Â = I.
        let a = Matrix::zeros(3, 3);
        let n = normalize_adjacency(&a);
        assert_eq!(n, Matrix::identity(3));
    }

    #[test]
    fn normalized_adjacency_is_symmetric_for_symmetric_input() {
        let mut a = Matrix::zeros(4, 4);
        a.set(0, 1, 1.0);
        a.set(1, 0, 1.0);
        a.set(2, 3, 1.0);
        a.set(3, 2, 1.0);
        let n = normalize_adjacency(&a);
        for i in 0..4 {
            for j in 0..4 {
                assert!((n.get(i, j) - n.get(j, i)).abs() < 1e-12);
            }
        }
        // Connected pair: off-diagonal = 1/2, diagonal = 1/2.
        assert!((n.get(0, 1) - 0.5).abs() < 1e-12);
        assert!((n.get(0, 0) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn non_square_adjacency_panics() {
        normalize_adjacency(&Matrix::zeros(2, 3));
    }

    #[test]
    fn gcn_forward_shape_and_smoothing() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut layer = GcnLayer::new(2, 3, Activation::Identity, &mut rng);
        // Two connected nodes with very different features plus one isolated node.
        let mut adj = Matrix::zeros(3, 3);
        adj.set(0, 1, 1.0);
        adj.set(1, 0, 1.0);
        let norm = normalize_adjacency(&adj);
        let features =
            Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![5.0, 5.0]]).unwrap();
        let out = layer.forward(&norm, &features, false);
        assert_eq!(out.shape(), (3, 3));
        assert!(out.all_finite());
        // The two connected nodes see averaged inputs, so their outputs are closer to each
        // other than to the isolated node's output.
        let d01: f64 = (0..3)
            .map(|c| (out.get(0, c) - out.get(1, c)).powi(2))
            .sum();
        let d02: f64 = (0..3)
            .map(|c| (out.get(0, c) - out.get(2, c)).powi(2))
            .sum();
        assert!(d01 < d02);
    }

    #[test]
    fn gcn_trains_toward_target() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut layer = GcnLayer::new(2, 1, Activation::Identity, &mut rng);
        let adj = Matrix::zeros(2, 2); // no edges → Â = I, reduces to a dense layer
        let norm = normalize_adjacency(&adj);
        let x = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]).unwrap();
        let target = Matrix::from_rows(&[vec![1.0], vec![-1.0]]).unwrap();
        let mut final_loss = f64::INFINITY;
        for _ in 0..400 {
            let y = layer.forward(&norm, &x, true);
            let diff = y.sub(&target).unwrap();
            final_loss = diff.frobenius_norm();
            layer.backward(&y, &diff.scale(2.0));
            layer.adam_step(0.05);
        }
        assert!(final_loss < 0.1, "final loss {final_loss}");
        assert_eq!(layer.out_dim(), 1);
    }
}
