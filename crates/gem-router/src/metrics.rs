//! Router telemetry: cluster-wide counters plus lazily registered per-replica
//! instrument sets, rendered as one Prometheus exposition.
//!
//! The serving tier's [`gem_telemetry::MetricsRegistry`] expects `&mut self` during
//! registration, but the router learns its replica set at runtime (membership changes,
//! fail-over). [`RouterMetrics`] therefore keeps the registry behind a mutex and
//! registers each replica's instruments the first time that address is observed; hot
//! paths hold only the returned `Arc` handles, so recording a forward or a latency
//! never touches the registry lock.
//!
//! Exported families (all prefixed `router_` to stay disjoint from the per-replica
//! `gem_*` namespace each `gem-served` exports itself):
//!
//! * `router_requests_total` — client requests accepted by the front-end.
//! * `router_fanouts_total` — fan-out requests (`stats` / `list-models` / `evict`).
//! * `router_replications_total` — write-through snapshot copies shipped to a successor.
//! * `router_failover_moves_total` — handles re-homed by fail-over or rebalancing.
//! * `router_no_replica_total` — requests refused because no live replica could own them.
//! * `router_replica_state{replica=..}` — 2 = up, 1 = degraded, 0 = down.
//! * `router_replica_forwards_total{replica=..}` / `router_replica_errors_total{..}`.
//! * `router_replica_probes_total{replica=..}` / `router_replica_probe_failures_total{..}`.
//! * `router_replica_request_seconds{replica=..}` — forward round-trip latency summary.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use gem_serve::sync::lock_or_recover;
use gem_telemetry::{Counter, Gauge, Histogram, MetricsRegistry};

/// The gauge value rendered for a replica in the `up` state.
pub const STATE_UP: u64 = 2;
/// The gauge value rendered for a replica in the `degraded` state.
pub const STATE_DEGRADED: u64 = 1;
/// The gauge value rendered for a replica in the `down` state.
pub const STATE_DOWN: u64 = 0;

/// The instrument handles for one replica. Cloning clones the `Arc`s, so call sites
/// keep their own copy and record without any locking.
#[derive(Debug, Clone)]
pub struct ReplicaInstruments {
    /// Requests forwarded to this replica (including fan-out legs).
    pub forwards: Arc<Counter>,
    /// Forwarding failures observed against this replica (connect, write, or a
    /// connection that died with requests in flight).
    pub errors: Arc<Counter>,
    /// Health probes sent to this replica.
    pub probes: Arc<Counter>,
    /// Health probes that failed (connect error or transport error mid-probe).
    pub probe_failures: Arc<Counter>,
    /// Last observed state: 2 = up, 1 = degraded, 0 = down.
    pub state: Arc<Gauge>,
    /// Forward round-trip latency (request written → response line received).
    pub latency: Arc<Histogram>,
}

/// Everything the registry lock protects: the registry itself plus the map of
/// already-registered replica instrument sets.
#[derive(Debug, Default)]
struct Inner {
    registry: MetricsRegistry,
    replicas: HashMap<String, ReplicaInstruments>,
}

/// Cluster-wide router metrics. See the module docs for the exported families.
#[derive(Debug)]
pub struct RouterMetrics {
    inner: Mutex<Inner>,
    requests: Arc<Counter>,
    fanouts: Arc<Counter>,
    replications: Arc<Counter>,
    failover_moves: Arc<Counter>,
    no_replica: Arc<Counter>,
}

impl Default for RouterMetrics {
    fn default() -> Self {
        RouterMetrics::new()
    }
}

impl RouterMetrics {
    /// A fresh metrics set with the cluster-wide families registered (per-replica
    /// families appear on first use of each address).
    pub fn new() -> Self {
        let mut inner = Inner::default();
        let requests = inner.registry.counter(
            "router_requests_total",
            "client requests accepted by the routing front-end",
        );
        let fanouts = inner.registry.counter(
            "router_fanouts_total",
            "requests fanned out to every live replica",
        );
        let replications = inner.registry.counter(
            "router_replications_total",
            "write-through snapshot copies shipped to a ring successor",
        );
        let failover_moves = inner.registry.counter(
            "router_failover_moves_total",
            "model handles re-homed by fail-over or membership rebalancing",
        );
        let no_replica = inner.registry.counter(
            "router_no_replica_total",
            "requests refused because no live replica could own the route",
        );
        RouterMetrics {
            inner: Mutex::new(inner),
            requests,
            fanouts,
            replications,
            failover_moves,
            no_replica,
        }
    }

    /// Count one accepted client request.
    pub fn inc_request(&self) {
        self.requests.inc();
    }

    /// Count one fan-out request.
    pub fn inc_fanout(&self) {
        self.fanouts.inc();
    }

    /// Count one write-through snapshot replication.
    pub fn inc_replication(&self) {
        self.replications.inc();
    }

    /// Count `n` handles re-homed by fail-over or rebalancing.
    pub fn add_failover_moves(&self, n: u64) {
        self.failover_moves.add(n);
    }

    /// Count one request refused with the `no_replica` error.
    pub fn inc_no_replica(&self) {
        self.no_replica.inc();
    }

    /// The instrument set for `addr`, registering the per-replica families on first
    /// sight of the address. New replicas start in the `up` state.
    pub fn replica(&self, addr: &str) -> ReplicaInstruments {
        let mut inner = lock_or_recover(&self.inner);
        if let Some(existing) = inner.replicas.get(addr) {
            return existing.clone();
        }
        let labels = [("replica", addr)];
        let instruments = ReplicaInstruments {
            forwards: inner.registry.labeled_counter(
                "router_replica_forwards_total",
                "requests forwarded to this replica",
                &labels,
            ),
            errors: inner.registry.labeled_counter(
                "router_replica_errors_total",
                "forwarding failures observed against this replica",
                &labels,
            ),
            probes: inner.registry.labeled_counter(
                "router_replica_probes_total",
                "health probes sent to this replica",
                &labels,
            ),
            probe_failures: inner.registry.labeled_counter(
                "router_replica_probe_failures_total",
                "health probes this replica failed",
                &labels,
            ),
            state: inner.registry.labeled_gauge(
                "router_replica_state",
                "replica state: 2 = up, 1 = degraded, 0 = down",
                &labels,
            ),
            latency: inner.registry.labeled_histogram(
                "router_replica_request_seconds",
                "forward round-trip latency against this replica",
                &labels,
            ),
        };
        instruments.state.set(STATE_UP);
        inner.replicas.insert(addr.to_string(), instruments.clone());
        instruments
    }

    /// Render the full Prometheus exposition (what `gem-routed --metrics-addr` serves).
    pub fn render(&self) -> String {
        lock_or_recover(&self.inner).registry.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn replica_instruments_register_once_and_render_labeled_series() {
        let metrics = RouterMetrics::new();
        let a = metrics.replica("127.0.0.1:7001");
        let again = metrics.replica("127.0.0.1:7001");
        let b = metrics.replica("127.0.0.1:7002");

        a.forwards.inc();
        again.forwards.inc(); // same underlying series — registration is idempotent
        b.forwards.inc();
        a.state.set(STATE_DOWN);
        b.latency.record(Duration::from_micros(420));
        metrics.inc_request();
        metrics.inc_request();
        metrics.add_failover_moves(3);

        let text = metrics.render();
        assert!(text.contains("router_requests_total 2"), "{text}");
        assert!(text.contains("router_failover_moves_total 3"), "{text}");
        assert!(
            text.contains("router_replica_forwards_total{replica=\"127.0.0.1:7001\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("router_replica_forwards_total{replica=\"127.0.0.1:7002\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("router_replica_state{replica=\"127.0.0.1:7001\"} 0"),
            "{text}"
        );
        assert!(
            text.contains("router_replica_state{replica=\"127.0.0.1:7002\"} 2"),
            "{text}"
        );
        assert!(
            text.contains(
                "router_replica_request_seconds{replica=\"127.0.0.1:7002\",quantile=\"0.99\"}"
            ),
            "{text}"
        );
        // One TYPE declaration per family even with two replicas registered.
        assert_eq!(
            text.matches("# TYPE router_replica_forwards_total counter")
                .count(),
            1
        );
    }
}
