//! The cluster front-end daemon: a `RouterServer` over a set of `gem-served`
//! replicas, with health probes, snapshot-driven fail-over, and a Prometheus
//! exposition.
//!
//! ```sh
//! gem-routed --replica HOST:PORT [--replica HOST:PORT ...] [--addr 127.0.0.1:7979]
//!            [--probe-interval MS] [--down-after N] [--connect-timeout MS]
//!            [--vnodes N] [--metrics-addr HOST:PORT] [--ctl-stdin]
//! ```
//!
//! * `--replica` — a `gem-served` replica address; repeat for each member. At least
//!   one is required. Handles are partitioned across replicas by consistent hashing.
//! * `--addr` — listen address for clients; port `0` picks an ephemeral port. The
//!   resolved address is printed as `gem-routed listening on <addr>` once bound
//!   (scripts wait for that line, then connect).
//! * `--probe-interval` — milliseconds between supervisor health probes of every
//!   replica. Defaults to 1000.
//! * `--down-after` — consecutive probe failures before a replica is marked down
//!   (forwarding failures mark it down immediately regardless). Defaults to 2.
//! * `--connect-timeout` — milliseconds for upstream connects and control traffic
//!   (probes, snapshot pulls/pushes). Defaults to 2000.
//! * `--vnodes` — virtual nodes per replica on the hash ring. Defaults to 64.
//! * `--metrics-addr` — serve the router's Prometheus text exposition (cluster
//!   counters, per-replica state/forwards/latency) over plain HTTP at this address;
//!   printed as `gem-routed metrics on <addr>`. Off by default.
//! * `--ctl-stdin` — watch stdin for admin lines:
//!   `add-replica HOST:PORT` / `remove-replica HOST:PORT` change the membership and
//!   trigger a snapshot-driven rebalance (never a refit); `rebalance` forces a pass;
//!   `shutdown` (or EOF) stops the router. Admin responses are printed to stdout as
//!   `gem-routed admin: ...` lines.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use gem_router::ring::DEFAULT_VNODES;
use gem_router::{Cluster, RouterMetrics, RouterServer, Supervisor};

struct Args {
    replicas: Vec<String>,
    addr: String,
    probe_interval_ms: u64,
    down_after: u32,
    connect_timeout_ms: u64,
    vnodes: usize,
    metrics_addr: Option<String>,
    ctl_stdin: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        replicas: Vec::new(),
        addr: "127.0.0.1:7979".to_string(),
        probe_interval_ms: 1_000,
        down_after: 2,
        connect_timeout_ms: 2_000,
        vnodes: DEFAULT_VNODES,
        metrics_addr: None,
        ctl_stdin: false,
    };
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = raw.iter();
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--replica" => args.replicas.push(value("--replica")?),
            "--addr" => args.addr = value("--addr")?,
            "--probe-interval" => {
                args.probe_interval_ms = value("--probe-interval")?
                    .parse()
                    .map_err(|_| "--probe-interval needs milliseconds".to_string())?;
            }
            "--down-after" => {
                args.down_after = value("--down-after")?
                    .parse()
                    .map_err(|_| "--down-after needs a positive integer".to_string())?;
            }
            "--connect-timeout" => {
                args.connect_timeout_ms = value("--connect-timeout")?
                    .parse()
                    .map_err(|_| "--connect-timeout needs milliseconds".to_string())?;
            }
            "--vnodes" => {
                args.vnodes = value("--vnodes")?
                    .parse()
                    .map_err(|_| "--vnodes needs a positive integer".to_string())?;
            }
            "--metrics-addr" => args.metrics_addr = Some(value("--metrics-addr")?),
            "--ctl-stdin" => args.ctl_stdin = true,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if args.replicas.is_empty() {
        return Err("at least one --replica HOST:PORT is required".to_string());
    }
    if args.probe_interval_ms == 0 {
        return Err("--probe-interval must be positive".to_string());
    }
    if args.down_after == 0 {
        return Err("--down-after must be positive".to_string());
    }
    if args.connect_timeout_ms == 0 {
        return Err("--connect-timeout must be positive".to_string());
    }
    if args.vnodes == 0 {
        return Err("--vnodes must be positive".to_string());
    }
    Ok(args)
}

/// Serve the router's Prometheus exposition over bare HTTP on its own listener
/// thread (same shape as `gem-served --metrics-addr`): drain the request head,
/// ignore the path, answer the full document, close. Detached; dies with the process.
fn spawn_metrics_listener(addr: &str, metrics: Arc<RouterMetrics>) -> Result<SocketAddr, String> {
    let listener =
        TcpListener::bind(addr).map_err(|e| format!("cannot bind metrics address {addr}: {e}"))?;
    let bound = listener.local_addr().map_err(|e| e.to_string())?;
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { continue };
            let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
            let mut head = [0u8; 1024];
            let _ = stream.read(&mut head);
            let body = metrics.render();
            let response = format!(
                "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\n\
                 Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
                body.len()
            );
            let _ = stream.write_all(response.as_bytes());
        }
    });
    Ok(bound)
}

/// One admin line from stdin. Returns `true` when the router should shut down.
fn handle_admin_line(cluster: &Arc<Cluster>, line: &str) -> bool {
    let mut words = line.split_whitespace();
    match (words.next(), words.next()) {
        (Some("shutdown"), _) => return true,
        (Some("rebalance"), _) => {
            let report = cluster.rebalance();
            println!(
                "gem-routed admin: rebalance examined={} moved={} replicated={} failures={}",
                report.examined,
                report.moved,
                report.replicated,
                report.failures.len()
            );
        }
        (Some("add-replica"), Some(addr)) => {
            if cluster.add_replica(addr) {
                let report = cluster.rebalance();
                println!(
                    "gem-routed admin: added {addr}; rebalance moved={} replicated={}",
                    report.moved, report.replicated
                );
            } else {
                println!("gem-routed admin: {addr} is already a member");
            }
        }
        (Some("remove-replica"), Some(addr)) => {
            if cluster.remove_replica(addr) {
                let report = cluster.rebalance();
                println!(
                    "gem-routed admin: removed {addr}; rebalance moved={} replicated={}",
                    report.moved, report.replicated
                );
            } else {
                println!("gem-routed admin: {addr} is not a member");
            }
        }
        (Some(other), _) => {
            println!(
                "gem-routed admin: unknown command `{other}` \
                 (add-replica ADDR | remove-replica ADDR | rebalance | shutdown)"
            );
        }
        (None, _) => {}
    }
    let _ = std::io::stdout().flush();
    false
}

fn run() -> Result<(), String> {
    let args = parse_args().map_err(|e| {
        format!(
            "{e}\nusage: gem-routed --replica HOST:PORT [--replica HOST:PORT ...] \
             [--addr HOST:PORT] [--probe-interval MS] [--down-after N] \
             [--connect-timeout MS] [--vnodes N] [--metrics-addr HOST:PORT] [--ctl-stdin]"
        )
    })?;

    let metrics = Arc::new(RouterMetrics::new());
    let cluster = Arc::new(Cluster::with_options(
        &args.replicas,
        Arc::clone(&metrics),
        args.vnodes,
        args.down_after,
        Duration::from_millis(args.probe_interval_ms),
        Duration::from_millis(args.connect_timeout_ms),
    ));

    let server = RouterServer::bind(Arc::clone(&cluster), args.addr.as_str())
        .map_err(|e| format!("cannot bind {}: {e}", args.addr))?;
    let addr = server.local_addr();
    let handle = server.handle();
    let metrics_addr = match &args.metrics_addr {
        Some(scrape_addr) => Some(spawn_metrics_listener(scrape_addr, Arc::clone(&metrics))?),
        None => None,
    };
    let mut supervisor = Supervisor::spawn(Arc::clone(&cluster));

    if args.ctl_stdin {
        // Admin + graceful-shutdown channel. Opt-in for the same reason as
        // gem-served's: a detached process inherits /dev/null, whose immediate EOF
        // would otherwise stop the daemon at startup.
        let ctl = handle.clone();
        let admin_cluster = Arc::clone(&cluster);
        std::thread::spawn(move || {
            use std::io::BufRead;
            let stdin = std::io::stdin();
            for line in stdin.lock().lines() {
                match line {
                    Ok(text) => {
                        if handle_admin_line(&admin_cluster, &text) {
                            break;
                        }
                    }
                    Err(_) => break,
                }
            }
            ctl.shutdown();
        });
    }

    // Readiness lines, flushed: scripts wait for the `listening on` line and sed the
    // addresses out, exactly as with gem-served.
    println!("gem-routed replicas: {}", args.replicas.join(","));
    if let Some(scrape) = metrics_addr {
        println!("gem-routed metrics on {scrape}");
    }
    println!("gem-routed listening on {addr}");
    let _ = std::io::stdout().flush();

    server.run().map_err(|e| e.to_string())?;
    supervisor.stop();
    let states: Vec<String> = cluster
        .replica_states()
        .into_iter()
        .map(|(replica, state)| format!("{replica}={}", state.name()))
        .collect();
    println!("gem-routed shutdown replicas: {}", states.join(","));
    let _ = std::io::stdout().flush();
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("gem-routed: {message}");
            ExitCode::FAILURE
        }
    }
}
