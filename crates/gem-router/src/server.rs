//! The routing front-end: a gem-proto TCP server that forwards each request to the
//! replica owning its route and streams the responses back, preserving the client's
//! pipeline.
//!
//! ## Forwarding model
//!
//! Each client connection owns its **own** upstream connection to every replica it
//! talks to. Client envelope ids are therefore unique per upstream connection by
//! construction (a client already may not reuse an id it has in flight, exactly as
//! against `gem-served` directly), so request lines are forwarded **verbatim** — no id
//! rewriting, no re-encoding — and response lines come back the same way. The router
//! decodes a request once, to route it; it never re-serializes what it forwards, so a
//! byte-exact round trip through the router is structural, not incidental.
//!
//! Routing is key-aware without extra round trips: the router computes `Fit` model
//! keys itself with the same [`gem_store::model_key`] the replica will use, derives
//! `FitUpdate` keys with [`gem_store::updated_model_key`], and peeks the `key` header
//! of `PushModel` snapshots — so it knows every handle *before* any replica answers.
//!
//! ## Codecs
//!
//! The router speaks both wire codecs. A client may negotiate the `gem_proto::binary`
//! codec exactly as against `gem-served`; each of that connection's upstreams then
//! negotiates binary toward its replica too, so matching codecs forward **frames
//! verbatim** — streamed `embed_rows` frames pass through without retiring the
//! in-flight entry (the closing `embed_done` does), and chunked corpus uploads are
//! reassembled here once, **fingerprinted incrementally while the chunks arrive**
//! ([`gem_store::CorpusHasher`] — the routing key is ready the moment the upload
//! completes, no second pass over megabytes of corpus), then re-chunked toward the
//! owning replica. A replica that declines the hello (an older build, or
//! `--json-only`) gets JSON on that upstream and the router converts: requests are
//! re-encoded from the decoded envelope, response lines are wrapped into binary
//! frames for the client.
//!
//! `Stats`, `ListModels`, and `Evict` fan out to every live replica and answer once
//! with a merged body. `Health` is answered by the router itself from the last probe
//! observations (a health probe that depended on the replicas being probed would be
//! useless for deciding whether to route to them).
//!
//! ## Fail-over
//!
//! A connect or write failure against a replica marks it down *immediately* and the
//! request retries against the next live ring node (which, for tracked handles, holds
//! the write-through snapshot copy — see [`Cluster::replicate`]). A replica that dies
//! with requests in flight EOFs its upstream reader, which answers every pending
//! request with the typed `replica_unavailable` error — safe to retry, and the retry
//! re-routes.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use gem_proto::{
    binary, decode_request, decode_response, encode_request, encode_response, merge_models,
    merge_stats, salvage_reply_id, salvage_request_id, RequestBody, RequestEnvelope, ResponseBody,
    ResponseEnvelope, WireModelInfo, WireStats, PROTOCOL_VERSION,
};
use gem_serve::sync::lock_or_recover;
use gem_serve::ModelHandle;
use gem_store::fingerprint::Fnv1a;
use gem_store::{
    config_fingerprint, corpus_fingerprint, updated_model_key_from_fingerprint, CorpusHasher,
    ModelKey,
};

use crate::cluster::{Cluster, Transition};
use crate::metrics::ReplicaInstruments;

/// How often blocked client reads wake to check the shutdown flag (mirrors the
/// serving tier's tick).
const READ_TICK: Duration = Duration::from_millis(100);
/// Backoff after a failed `accept` so a transient error cannot spin the loop.
const ACCEPT_ERROR_BACKOFF: Duration = Duration::from_millis(20);
/// The error code for "no live replica can own this route".
pub const NO_REPLICA: &str = "no_replica";
/// The error code for "the owning replica vanished mid-request" (safe to retry; the
/// retry re-routes to the fail-over owner).
pub const REPLICA_UNAVAILABLE: &str = "replica_unavailable";

/// A handle for stopping a running [`RouterServer`] from another thread.
#[derive(Debug, Clone)]
pub struct RouterHandle {
    shutdown: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl RouterHandle {
    /// Ask the router to stop: in-flight requests finish, the accept loop exits, and
    /// [`RouterServer::run`] returns.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Poke the accept loop so it notices the flag without waiting for a client.
        let _ = TcpStream::connect(self.addr);
    }
}

/// The routing front-end. Bind, grab a [`RouterHandle`], then [`RouterServer::run`].
#[derive(Debug)]
pub struct RouterServer {
    listener: TcpListener,
    cluster: Arc<Cluster>,
    shutdown: Arc<AtomicBool>,
    local_addr: SocketAddr,
}

impl RouterServer {
    /// Bind the front-end on `addr` (use port 0 to let the OS pick).
    ///
    /// # Errors
    /// Propagates the bind failure.
    pub fn bind(cluster: Arc<Cluster>, addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        Ok(RouterServer {
            listener,
            cluster,
            shutdown: Arc::new(AtomicBool::new(false)),
            local_addr,
        })
    }

    /// The address the router is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A shutdown handle usable from any thread.
    pub fn handle(&self) -> RouterHandle {
        RouterHandle {
            shutdown: Arc::clone(&self.shutdown),
            addr: self.local_addr,
        }
    }

    /// Accept and serve client connections until [`RouterHandle::shutdown`]. Joins
    /// every connection thread before returning.
    ///
    /// # Errors
    /// Propagates only fatal listener errors; per-connection errors end that
    /// connection and are otherwise absorbed.
    pub fn run(self) -> std::io::Result<()> {
        let mut connections: Vec<JoinHandle<()>> = Vec::new();
        for incoming in self.listener.incoming() {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            match incoming {
                Ok(stream) => {
                    let cluster = Arc::clone(&self.cluster);
                    let shutdown = Arc::clone(&self.shutdown);
                    connections.push(std::thread::spawn(move || {
                        serve_connection(stream, cluster, shutdown);
                    }));
                }
                Err(_) => std::thread::sleep(ACCEPT_ERROR_BACKOFF),
            }
        }
        for connection in connections {
            let _ = connection.join();
        }
        Ok(())
    }
}

/// One upstream connection's in-flight requests. `closed` flips (under the lock)
/// when the upstream reader EOFs and drains: any forward that raced the death and
/// would have registered *after* the drain is refused instead, so it retries on the
/// fail-over route rather than waiting on a reader that already exited.
#[derive(Default)]
struct PendingMap {
    closed: bool,
    entries: HashMap<u64, Pending>,
}

/// What an in-flight forwarded request is waiting for.
enum Pending {
    /// Forward the response line to the client verbatim.
    Forward { started: Instant },
    /// Like `Forward`, but on success first record placement and write-through
    /// replicate `handle` to its ring successor (fit / fit-update / push).
    Tracked { started: Instant, handle: String },
    /// One leg of a fan-out; fold the decoded body into the group.
    Fan { started: Instant, group: u64 },
}

/// Which fan-out request a group merges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FanKind {
    Stats,
    Models,
    Evict,
}

/// One fan-out in flight: the client's id, how many legs are still pending, and the
/// successful partial bodies collected so far.
struct FanGroup {
    client_id: u64,
    kind: FanKind,
    remaining: usize,
    ok_legs: usize,
    stats: Vec<WireStats>,
    models: Vec<Vec<WireModelInfo>>,
    existed: bool,
    evict_handle: Option<String>,
}

/// State shared between the client reader and this connection's upstream readers.
///
/// `reply_tx` carries **exact wire blobs**: newline-terminated JSON lines toward a
/// JSON client, complete binary frames toward one that negotiated the binary codec.
/// The writer thread never edits what it is handed — the codec decision is made
/// here, once, by whoever builds the reply.
struct ConnShared {
    cluster: Arc<Cluster>,
    reply_tx: mpsc::Sender<Vec<u8>>,
    groups: Mutex<HashMap<u64, FanGroup>>,
    /// Set during orderly teardown so upstream EOFs stop being treated as replica
    /// deaths.
    closing: AtomicBool,
    /// Whether this client negotiated the binary codec (its hello was the first
    /// line, so the flag is stable before any request can be forwarded).
    client_binary: AtomicBool,
}

impl ConnShared {
    fn client_is_binary(&self) -> bool {
        self.client_binary.load(Ordering::SeqCst)
    }

    fn send_response(&self, in_reply_to: Option<u64>, body: ResponseBody) {
        let envelope = match in_reply_to {
            Some(id) => ResponseEnvelope::new(id, body),
            None => ResponseEnvelope::uncorrelated(body),
        };
        let line = encode_response(&envelope);
        if self.client_is_binary() {
            if let Ok(frame) = binary::wrap_response_line(in_reply_to, &line) {
                let _ = self.reply_tx.send(frame);
            }
        } else {
            let mut bytes = line.into_bytes();
            if !bytes.ends_with(b"\n") {
                bytes.push(b'\n');
            }
            let _ = self.reply_tx.send(bytes);
        }
    }

    /// Forward a replica's JSON response line to the client in the client's codec:
    /// verbatim toward a JSON client, wrapped into a `resp_json` frame toward a
    /// binary one (the id is salvaged from the line so the wrap stays correlated).
    fn forward_json_line(&self, line: &str) {
        if self.client_is_binary() {
            let id = salvage_reply_id(line);
            match binary::wrap_response_line(id, line) {
                Ok(frame) => {
                    let _ = self.reply_tx.send(frame);
                }
                Err(e) => self.send_error(id, e.code(), e.to_string()),
            }
        } else {
            let mut bytes = line.as_bytes().to_vec();
            if !bytes.ends_with(b"\n") {
                bytes.push(b'\n');
            }
            let _ = self.reply_tx.send(bytes);
        }
    }

    /// Forward a replica's binary response frame to the client verbatim (only ever
    /// called when the client negotiated binary — upstreams mirror the client codec).
    fn forward_frame(&self, frame: &binary::Frame) {
        if let Ok(bytes) = binary::frame_bytes(frame.kind, &frame.payload) {
            let _ = self.reply_tx.send(bytes);
        }
    }

    fn send_error(&self, in_reply_to: Option<u64>, code: &str, message: String) {
        let retry_after_ms = if code == NO_REPLICA || code == REPLICA_UNAVAILABLE {
            Some(u64::try_from(self.cluster.probe_interval().as_millis()).unwrap_or(1_000))
        } else {
            None
        };
        self.send_response(
            in_reply_to,
            ResponseBody::Error {
                code: code.to_string(),
                message,
                retry_after_ms,
            },
        );
    }

    /// Fold one fan-out leg (decoded success body, or `None` for a failed leg) into
    /// its group; emits the merged response when the last leg lands.
    fn fold_fan_leg(&self, group_id: u64, body: Option<ResponseBody>) {
        let finished = {
            let mut groups = lock_or_recover(&self.groups);
            let Some(group) = groups.get_mut(&group_id) else {
                return;
            };
            match body {
                Some(ResponseBody::Stats(stats)) => {
                    group.stats.push(stats);
                    group.ok_legs += 1;
                }
                Some(ResponseBody::Models(models)) => {
                    group.models.push(models);
                    group.ok_legs += 1;
                }
                Some(ResponseBody::Evicted { existed }) => {
                    group.existed |= existed;
                    group.ok_legs += 1;
                }
                Some(_) | None => {}
            }
            group.remaining = group.remaining.saturating_sub(1);
            if group.remaining == 0 {
                groups.remove(&group_id)
            } else {
                None
            }
        };
        if let Some(group) = finished {
            self.finish_fan(group);
        }
    }

    fn finish_fan(&self, group: FanGroup) {
        if group.ok_legs == 0 {
            self.send_error(
                Some(group.client_id),
                REPLICA_UNAVAILABLE,
                "every fan-out leg failed; no replica answered".to_string(),
            );
            return;
        }
        let body = match group.kind {
            FanKind::Stats => ResponseBody::Stats(merge_stats(&group.stats)),
            FanKind::Models => ResponseBody::Models(merge_models(&group.models)),
            FanKind::Evict => {
                if let Some(handle) = &group.evict_handle {
                    if group.existed {
                        self.cluster.forget_placement(handle);
                    }
                }
                ResponseBody::Evicted {
                    existed: group.existed,
                }
            }
        };
        self.send_response(Some(group.client_id), body);
    }
}

/// Which codec one upstream connection negotiated with its replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum UpstreamCodec {
    Json,
    Binary,
}

/// What the router has in hand for one request when it forwards it. Matching codecs
/// forward the verbatim bytes; a mismatch (or a reassembled chunked upload, which has
/// no single verbatim form) re-encodes from the decoded envelope.
enum ForwardPayload<'a> {
    /// The client's original newline-delimited JSON request line.
    JsonLine(&'a [u8]),
    /// The client's original binary frame, re-serialized byte-for-byte.
    Frame(&'a [u8]),
    /// No verbatim bytes exist: always re-encode from the envelope (re-chunking the
    /// corpus toward binary replicas).
    Reencode,
}

/// One upstream connection owned by a client connection.
struct Upstream {
    write: TcpStream,
    codec: UpstreamCodec,
    pending: Arc<Mutex<PendingMap>>,
    reader: Option<JoinHandle<()>>,
    instruments: ReplicaInstruments,
}

impl Upstream {
    /// Send one request on this upstream in its negotiated codec.
    fn send(
        &mut self,
        payload: &ForwardPayload<'_>,
        envelope: &RequestEnvelope,
    ) -> std::io::Result<()> {
        match (payload, self.codec) {
            (ForwardPayload::JsonLine(raw), UpstreamCodec::Json) => {
                write_line(&mut self.write, raw)
            }
            (ForwardPayload::Frame(bytes), UpstreamCodec::Binary) => {
                self.write.write_all(bytes)?;
                self.write.flush()
            }
            (_, UpstreamCodec::Binary) => {
                // Re-encode (and re-chunk a large corpus) toward the binary replica.
                let frames = binary::encode_request_frames(envelope, binary::DEFAULT_CHUNK_BYTES)
                    .map_err(|e| {
                    std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
                })?;
                for frame in &frames {
                    self.write.write_all(frame)?;
                }
                self.write.flush()
            }
            (_, UpstreamCodec::Json) => {
                // A JSON replica gets one line; if the corpus outgrows the replica's
                // line cap it answers the typed over-cap error, which forwards back —
                // the client's remedy is a replica set that accepts binary.
                let line = encode_request(envelope);
                write_line(&mut self.write, line.as_bytes())
            }
        }
    }

    /// Register `entry` under `id` unless the reader already drained and closed this
    /// upstream (a write to a just-died socket can still buffer and "succeed", which
    /// would strand the entry). Returns whether the registration was accepted.
    fn register(&self, id: u64, entry: Pending) -> bool {
        let mut pending = lock_or_recover(&self.pending);
        if pending.closed {
            return false;
        }
        pending.entries.insert(id, entry);
        true
    }

    fn unregister(&self, id: u64) {
        lock_or_recover(&self.pending).entries.remove(&id);
    }
}

/// The per-client-connection forwarding state (owned by the client reader thread).
struct Forwarder {
    shared: Arc<ConnShared>,
    upstreams: HashMap<String, Upstream>,
    next_group: u64,
}

impl Forwarder {
    fn cluster(&self) -> &Arc<Cluster> {
        &self.shared.cluster
    }

    /// Get (or open) this connection's upstream to `addr`, spawning its reader.
    ///
    /// When the client negotiated binary the new upstream offers the replica the same
    /// hello before anything else crosses it; a declined offer (an older replica, or
    /// one running `--json-only`) leaves that upstream on JSON and the forwarding
    /// layer converts per request.
    fn upstream(&mut self, addr: &str) -> Result<&mut Upstream, ()> {
        if !self.upstreams.contains_key(addr) {
            let timeout = self.cluster().connect_timeout();
            let mut stream = connect_stream(addr, timeout).map_err(|_| ())?;
            let read_half = stream.try_clone().map_err(|_| ())?;
            let mut buffered = BufReader::new(read_half);
            let codec = if self.shared.client_is_binary() {
                negotiate_upstream_codec(&mut stream, &mut buffered, timeout).map_err(|_| ())?
            } else {
                UpstreamCodec::Json
            };
            let pending = Arc::new(Mutex::new(PendingMap::default()));
            let instruments = self.cluster().metrics().replica(addr);
            let reader = {
                let shared = Arc::clone(&self.shared);
                let pending = Arc::clone(&pending);
                let instruments = instruments.clone();
                let addr = addr.to_string();
                std::thread::spawn(move || {
                    read_upstream(buffered, codec, &addr, &shared, &pending, &instruments);
                })
            };
            self.upstreams.insert(
                addr.to_string(),
                Upstream {
                    write: stream,
                    codec,
                    pending,
                    reader: Some(reader),
                    instruments,
                },
            );
        }
        self.upstreams.get_mut(addr).ok_or(())
    }

    /// Drop the upstream to `addr` after a failure: close both halves so its reader
    /// drains every pending request to `replica_unavailable`, then join it.
    fn discard_upstream(&mut self, addr: &str) {
        if let Some(mut upstream) = self.upstreams.remove(addr) {
            let _ = upstream.write.shutdown(Shutdown::Both);
            if let Some(reader) = upstream.reader.take() {
                let _ = reader.join();
            }
        }
    }

    /// A forwarding failure against `addr`: count it, mark the replica down, kick a
    /// rebalance on the down edge, and drop the connection.
    fn forward_failed(&mut self, addr: &str) {
        if let Some(upstream) = self.upstreams.get(addr) {
            upstream.instruments.errors.inc();
        } else {
            self.cluster().metrics().replica(addr).errors.inc();
        }
        if self.cluster().mark_down(addr) == Transition::WentDown {
            let cluster = Arc::clone(self.cluster());
            std::thread::spawn(move || {
                let _ = cluster.rebalance();
            });
        }
        self.discard_upstream(addr);
    }

    /// Forward one request to the replica `route` currently resolves to, retrying
    /// across fail-over candidates: every failure marks the replica down, so
    /// re-running `route` yields the next live ring node. Bounded by the membership
    /// size.
    fn forward<R: Fn(&Cluster) -> Option<String>>(
        &mut self,
        id: u64,
        payload: &ForwardPayload<'_>,
        envelope: &RequestEnvelope,
        route: R,
        pending_for: impl Fn() -> Pending,
    ) {
        let attempts = self.cluster().replica_states().len().max(1);
        for _ in 0..attempts {
            let Some(addr) = route(self.cluster()) else {
                break;
            };
            let Ok(upstream) = self.upstream(&addr) else {
                self.forward_failed(&addr);
                continue;
            };
            // Register before writing: the response may race back before this thread
            // regains control. A refused registration means the reader died and
            // drained already — treat it exactly like a failed write.
            if !upstream.register(id, pending_for()) {
                self.forward_failed(&addr);
                continue;
            }
            if upstream.send(payload, envelope).is_ok() {
                upstream.instruments.forwards.inc();
                return;
            }
            upstream.unregister(id);
            self.forward_failed(&addr);
        }
        self.cluster().metrics().inc_no_replica();
        self.shared.send_error(
            Some(id),
            NO_REPLICA,
            "no live replica can serve this request".to_string(),
        );
    }

    /// Send one request to every live replica and answer once with the merged body.
    fn fan_out(
        &mut self,
        id: u64,
        payload: &ForwardPayload<'_>,
        envelope: &RequestEnvelope,
        kind: FanKind,
        evict_handle: Option<String>,
    ) {
        self.cluster().metrics().inc_fanout();
        let live = self.cluster().live_replicas();
        if live.is_empty() {
            self.cluster().metrics().inc_no_replica();
            self.shared.send_error(
                Some(id),
                NO_REPLICA,
                "no live replica can serve this request".to_string(),
            );
            return;
        }
        self.next_group += 1;
        let group_id = self.next_group;
        lock_or_recover(&self.shared.groups).insert(
            group_id,
            FanGroup {
                client_id: id,
                kind,
                remaining: live.len(),
                ok_legs: 0,
                stats: Vec::new(),
                models: Vec::new(),
                existed: false,
                evict_handle,
            },
        );
        for addr in live {
            let sent = match self.upstream(&addr) {
                Ok(upstream) => {
                    let entry = Pending::Fan {
                        started: Instant::now(),
                        group: group_id,
                    };
                    if !upstream.register(id, entry) {
                        false
                    } else if upstream.send(payload, envelope).is_ok() {
                        upstream.instruments.forwards.inc();
                        true
                    } else {
                        upstream.unregister(id);
                        false
                    }
                }
                Err(()) => false,
            };
            if !sent {
                self.forward_failed(&addr);
                self.shared.fold_fan_leg(group_id, None);
            }
        }
    }

    /// Decode, route, and forward one client JSON line.
    fn handle_line(&mut self, raw: &[u8]) {
        let text = match std::str::from_utf8(raw) {
            Ok(text) => text,
            Err(_) => {
                self.shared.send_error(
                    None,
                    "protocol_error",
                    "request line is not valid UTF-8".to_string(),
                );
                return;
            }
        };
        let envelope = match decode_request(text.trim_end_matches(['\r', '\n'])) {
            Ok(envelope) => envelope,
            Err(e) => {
                self.shared
                    .send_error(salvage_request_id(text), e.code(), e.to_string());
                return;
            }
        };
        self.dispatch(envelope, ForwardPayload::JsonLine(raw), None);
    }

    /// Route and forward one decoded request, whatever codec it arrived in.
    ///
    /// `corpus_fp` is the incremental corpus fingerprint a chunked upload computed
    /// while its chunks streamed in — passing it here is what makes chunked routing
    /// O(1) instead of a second pass over the reassembled corpus.
    fn dispatch(
        &mut self,
        envelope: RequestEnvelope,
        payload: ForwardPayload<'_>,
        corpus_fp: Option<u64>,
    ) {
        self.cluster().metrics().inc_request();
        let id = envelope.id;
        match &envelope.body {
            RequestBody::Health => {
                let view = self.cluster().health_view();
                self.shared.send_response(
                    Some(id),
                    ResponseBody::Health {
                        state: view.state.to_string(),
                        queue_depth: view.queue_depth,
                        queue_capacity: view.queue_capacity,
                        busy_workers: view.busy_workers,
                        workers: view.workers,
                        retry_after_ms: view.retry_after_ms,
                    },
                );
            }
            RequestBody::Stats => self.fan_out(id, &payload, &envelope, FanKind::Stats, None),
            RequestBody::ListModels => {
                self.fan_out(id, &payload, &envelope, FanKind::Models, None);
            }
            RequestBody::Evict { handle } => {
                let handle = handle.clone();
                self.fan_out(id, &payload, &envelope, FanKind::Evict, Some(handle));
            }
            RequestBody::Fit {
                corpus,
                config,
                features,
                composition,
            } => {
                // Compute the handle exactly as the replica will (composition override
                // applied first), so the router can place the model before it exists.
                let mut config = config.clone();
                if let Some(composition) = composition {
                    config.composition = *composition;
                }
                let key = ModelKey {
                    corpus: corpus_fp.unwrap_or_else(|| corpus_fingerprint(corpus)),
                    config: config_fingerprint(&config, *features),
                };
                let handle = key.to_hex();
                let route_handle = handle.clone();
                self.forward(
                    id,
                    &payload,
                    &envelope,
                    move |cluster| cluster.route_handle(&route_handle),
                    || Pending::Tracked {
                        started: Instant::now(),
                        handle: handle.clone(),
                    },
                );
            }
            RequestBody::FitUpdate { handle, corpus } => {
                let parent = match ModelHandle::parse(handle) {
                    Ok(parent) => parent,
                    Err(reason) => {
                        self.shared.send_error(Some(id), "invalid_request", reason);
                        return;
                    }
                };
                // The derived model is created wherever the parent lives (placement
                // first — the parent may itself be a derivative off its ring slot).
                let derived = updated_model_key_from_fingerprint(
                    parent.key(),
                    corpus_fp.unwrap_or_else(|| corpus_fingerprint(corpus)),
                )
                .to_hex();
                let route_handle = handle.clone();
                self.forward(
                    id,
                    &payload,
                    &envelope,
                    move |cluster| cluster.route_handle(&route_handle),
                    || Pending::Tracked {
                        started: Instant::now(),
                        handle: derived.clone(),
                    },
                );
            }
            RequestBody::Embed { handle, .. } | RequestBody::PullModel { handle } => {
                if let Err(reason) = ModelHandle::parse(handle) {
                    self.shared.send_error(Some(id), "invalid_request", reason);
                    return;
                }
                let handle = handle.clone();
                self.forward(
                    id,
                    &payload,
                    &envelope,
                    move |cluster| cluster.route_handle(&handle),
                    || Pending::Forward {
                        started: Instant::now(),
                    },
                );
            }
            RequestBody::PushModel { snapshot } => {
                // Route by the key the envelope header names; a snapshot too malformed
                // to carry one goes to any live replica, whose store validation owns
                // the canonical rejection.
                let key = snapshot
                    .get("key")
                    .and_then(|k| k.as_str())
                    .map(str::to_owned);
                match key {
                    Some(key) => {
                        let route_key = key.clone();
                        self.forward(
                            id,
                            &payload,
                            &envelope,
                            move |cluster| cluster.route_handle(&route_key),
                            || Pending::Tracked {
                                started: Instant::now(),
                                handle: key.clone(),
                            },
                        );
                    }
                    None => self.forward(
                        id,
                        &payload,
                        &envelope,
                        |cluster| cluster.route_hash(0),
                        || Pending::Forward {
                            started: Instant::now(),
                        },
                    ),
                }
            }
            RequestBody::EmbedCorpus { method, corpus, .. } => {
                // One-shot embeds have no handle; shard them by method + corpus
                // fingerprint so repeated calls hit the same replica's cache.
                let mut h = Fnv1a::new();
                h.write(b"gem-route-embed-corpus:");
                h.write(method.as_bytes());
                h.write_u64(corpus_fingerprint(corpus));
                let hash = h.finish();
                self.forward(
                    id,
                    &payload,
                    &envelope,
                    move |cluster| cluster.route_hash(hash),
                    || Pending::Forward {
                        started: Instant::now(),
                    },
                );
            }
        }
    }

    /// Orderly teardown: stop treating upstream EOFs as deaths, close every upstream,
    /// and join their readers.
    fn close(&mut self) {
        self.shared.closing.store(true, Ordering::SeqCst);
        let addrs: Vec<String> = self.upstreams.keys().cloned().collect();
        for addr in addrs {
            self.discard_upstream(&addr);
        }
    }
}

/// Resolve and connect with a timeout (mirrors `GemClient::connect_timeout`, but for
/// the raw forwarding stream).
fn connect_stream(addr: &str, timeout: Duration) -> std::io::Result<TcpStream> {
    let mut last: Option<std::io::Error> = None;
    for resolved in addr.to_socket_addrs()? {
        match TcpStream::connect_timeout(&resolved, timeout) {
            Ok(stream) => {
                stream.set_nodelay(true)?;
                stream.set_write_timeout(Some(timeout))?;
                return Ok(stream);
            }
            Err(e) => last = Some(e),
        }
    }
    Err(last.unwrap_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "address resolved to no socket addresses",
        )
    }))
}

/// Write one request line, guaranteeing the trailing newline.
fn write_line(stream: &mut TcpStream, raw: &[u8]) -> std::io::Result<()> {
    stream.write_all(raw)?;
    if !raw.ends_with(b"\n") {
        stream.write_all(b"\n")?;
    }
    stream.flush()
}

/// Offer the binary hello on a fresh upstream and read the replica's one-line
/// verdict. Anything other than a version-matched accept (a typed decline from a
/// `--json-only` or older replica) leaves the upstream on JSON; the verdict line is
/// consumed either way, so the upstream reader starts on a clean stream.
fn negotiate_upstream_codec(
    write: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    timeout: Duration,
) -> std::io::Result<UpstreamCodec> {
    write.write_all(binary::hello_line().as_bytes())?;
    write.flush()?;
    // The verdict read is the one upstream read this thread performs itself; bound it
    // so a stalled replica cannot wedge the client's request.
    reader.get_ref().set_read_timeout(Some(timeout))?;
    let mut verdict = String::new();
    let n = reader.read_line(&mut verdict)?;
    reader.get_ref().set_read_timeout(None)?;
    if n == 0 {
        return Err(std::io::Error::from(std::io::ErrorKind::UnexpectedEof));
    }
    Ok(
        if binary::parse_accept(&verdict) == Some(PROTOCOL_VERSION) {
            UpstreamCodec::Binary
        } else {
            UpstreamCodec::Json
        },
    )
}

/// One upstream connection's reader: correlate responses with pending requests, run
/// write-through replication for tracked handles, fold fan-out legs, and — if the
/// replica dies with requests in flight — drain them to `replica_unavailable`.
fn read_upstream(
    reader: BufReader<TcpStream>,
    codec: UpstreamCodec,
    addr: &str,
    shared: &Arc<ConnShared>,
    pending: &Arc<Mutex<PendingMap>>,
    instruments: &ReplicaInstruments,
) {
    match codec {
        UpstreamCodec::Json => read_upstream_lines(reader, addr, shared, pending, instruments),
        UpstreamCodec::Binary => read_upstream_frames(reader, addr, shared, pending, instruments),
    }
    if shared.closing.load(Ordering::SeqCst) {
        return;
    }
    // The replica died under us. Mark it down, kick a rebalance on the edge, and
    // answer everything still in flight with the retryable typed error.
    instruments.errors.inc();
    if shared.cluster.mark_down(addr) == Transition::WentDown {
        let cluster = Arc::clone(&shared.cluster);
        std::thread::spawn(move || {
            let _ = cluster.rebalance();
        });
    }
    // Close first, drain second, under one lock hold: a forward racing this teardown
    // either lands in `entries` before the drain (answered below) or sees `closed`
    // and retries on the fail-over route. Nothing can be stranded in between.
    let drained: Vec<(u64, Pending)> = {
        let mut pending = lock_or_recover(pending);
        pending.closed = true;
        pending.entries.drain().collect()
    };
    for (id, entry) in drained {
        match entry {
            Pending::Forward { .. } | Pending::Tracked { .. } => {
                shared.send_error(
                    Some(id),
                    REPLICA_UNAVAILABLE,
                    format!("replica {addr} disconnected with the request in flight"),
                );
            }
            Pending::Fan { group, .. } => shared.fold_fan_leg(group, None),
        }
    }
}

/// The JSON upstream reader loop: newline-delimited response lines, forwarded in the
/// client's codec. Returns when the upstream EOFs or fails.
fn read_upstream_lines(
    mut reader: BufReader<TcpStream>,
    addr: &str,
    shared: &Arc<ConnShared>,
    pending: &Arc<Mutex<PendingMap>>,
    instruments: &ReplicaInstruments,
) {
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {
                let Some(id) = salvage_reply_id(&line) else {
                    continue; // uncorrelated noise; nothing to answer
                };
                let entry = lock_or_recover(pending).entries.remove(&id);
                match entry {
                    None => {}
                    Some(Pending::Forward { started }) => {
                        instruments.latency.record(started.elapsed());
                        shared.forward_json_line(&line);
                    }
                    Some(Pending::Tracked { started, handle }) => {
                        instruments.latency.record(started.elapsed());
                        let trimmed = line.trim_end_matches(['\r', '\n']);
                        let succeeded = matches!(
                            decode_response(trimmed),
                            Ok(envelope) if !matches!(envelope.body, ResponseBody::Error { .. })
                        );
                        if succeeded {
                            // Write-through BEFORE the client sees success: once the
                            // response is out, fail-over must already be covered.
                            shared.cluster.record_placement(&handle, addr);
                            let _ = shared.cluster.replicate(&handle, addr);
                        }
                        shared.forward_json_line(&line);
                    }
                    Some(Pending::Fan { started, group }) => {
                        instruments.latency.record(started.elapsed());
                        let trimmed = line.trim_end_matches(['\r', '\n']);
                        let body = match decode_response(trimmed) {
                            Ok(envelope) => match envelope.body {
                                ResponseBody::Error { .. } => None,
                                body => Some(body),
                            },
                            Err(_) => None,
                        };
                        shared.fold_fan_leg(group, body);
                    }
                }
            }
        }
    }
}

/// The binary upstream reader loop: length-prefixed frames. Streamed `embed_rows`
/// frames pass through to the client **without retiring** the in-flight entry — the
/// closing `embed_done` (or a wrapped JSON response) does that. Returns when the
/// upstream EOFs, fails, or violates framing (indistinguishable from corruption, so
/// it is treated as a replica death and everything in flight drains to the retryable
/// error).
fn read_upstream_frames(
    mut reader: BufReader<TcpStream>,
    addr: &str,
    shared: &Arc<ConnShared>,
    pending: &Arc<Mutex<PendingMap>>,
    instruments: &ReplicaInstruments,
) {
    let mut assembler = binary::FrameAssembler::new();
    let mut partials = binary::EmbedPartials::new();
    loop {
        let frame = match assembler.next_frame() {
            Ok(Some(frame)) => frame,
            Ok(None) => {
                match reader.fill_buf() {
                    Ok([]) => return,
                    Ok(buf) => {
                        let n = buf.len();
                        assembler.push(buf);
                        reader.consume(n);
                    }
                    Err(_) => return,
                }
                continue;
            }
            Err(_) => return,
        };
        match frame.kind {
            binary::KIND_EMBED_ROWS => {
                // Stream through verbatim while the request stays pending; rows for
                // an id that already drained (replica raced its own death) vanish —
                // the drain already answered that id.
                let live = frame
                    .correlation_id()
                    .is_some_and(|id| lock_or_recover(pending).entries.contains_key(&id));
                if live {
                    shared.forward_frame(&frame);
                }
            }
            binary::KIND_EMBED_DONE => {
                let Some(id) = frame.correlation_id() else {
                    continue;
                };
                let entry = lock_or_recover(pending).entries.remove(&id);
                match entry {
                    None => {}
                    Some(Pending::Forward { started }) | Some(Pending::Tracked { started, .. }) => {
                        instruments.latency.record(started.elapsed());
                        shared.forward_frame(&frame);
                    }
                    // Embeds never fan out; fold defensively so a confused replica
                    // cannot wedge a fan group forever.
                    Some(Pending::Fan { started, group }) => {
                        instruments.latency.record(started.elapsed());
                        shared.fold_fan_leg(group, None);
                    }
                }
            }
            binary::KIND_RESP_JSON => {
                let Some(id) = frame.correlation_id() else {
                    continue;
                };
                let decoded = binary::decode_response_frame(&frame, &mut partials);
                let entry = lock_or_recover(pending).entries.remove(&id);
                match entry {
                    None => {}
                    Some(Pending::Forward { started }) => {
                        instruments.latency.record(started.elapsed());
                        shared.forward_frame(&frame);
                    }
                    Some(Pending::Tracked { started, handle }) => {
                        instruments.latency.record(started.elapsed());
                        let succeeded = matches!(
                            &decoded,
                            Ok(Some(envelope))
                                if !matches!(envelope.body, ResponseBody::Error { .. })
                        );
                        if succeeded {
                            // Write-through BEFORE the client sees success: once the
                            // response is out, fail-over must already be covered.
                            shared.cluster.record_placement(&handle, addr);
                            let _ = shared.cluster.replicate(&handle, addr);
                        }
                        shared.forward_frame(&frame);
                    }
                    Some(Pending::Fan { started, group }) => {
                        instruments.latency.record(started.elapsed());
                        let body = match decoded {
                            Ok(Some(envelope)) => match envelope.body {
                                ResponseBody::Error { .. } => None,
                                body => Some(body),
                            },
                            _ => None,
                        };
                        shared.fold_fan_leg(group, body);
                    }
                }
            }
            _ => {} // an unknown response kind is uncorrelated noise
        }
    }
}

/// Serve one client connection: reader loop here, writer on its own thread, upstream
/// readers spawned on demand.
///
/// A connection starts in JSON line mode. If the **first** line is a version-matched
/// binary hello the router accepts it (it always speaks binary; upstream replicas may
/// still individually negotiate down) and the connection switches to frame mode for
/// its whole remaining life.
fn serve_connection(stream: TcpStream, cluster: Arc<Cluster>, shutdown: Arc<AtomicBool>) {
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(READ_TICK)).is_err() {
        return;
    }
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let (reply_tx, reply_rx) = mpsc::channel::<Vec<u8>>();
    let writer = std::thread::spawn(move || write_replies(write_half, &reply_rx));
    let shared = Arc::new(ConnShared {
        cluster,
        reply_tx,
        groups: Mutex::new(HashMap::new()),
        closing: AtomicBool::new(false),
        client_binary: AtomicBool::new(false),
    });
    let mut forwarder = Forwarder {
        shared: Arc::clone(&shared),
        upstreams: HashMap::new(),
        next_group: 0,
    };

    let mut reader = BufReader::new(stream);
    let mut line: Vec<u8> = Vec::new();
    let mut awaiting_first_line = true;
    while !shutdown.load(Ordering::SeqCst) {
        match reader.read_until(b'\n', &mut line) {
            Ok(0) => break, // client hung up
            Ok(_) => {
                if line.iter().all(u8::is_ascii_whitespace) {
                    line.clear();
                    continue;
                }
                if awaiting_first_line {
                    awaiting_first_line = false;
                    let offer = std::str::from_utf8(&line)
                        .ok()
                        .and_then(binary::parse_hello);
                    match offer {
                        Some(version) if version == PROTOCOL_VERSION => {
                            shared.client_binary.store(true, Ordering::SeqCst);
                            let _ = shared.reply_tx.send(binary::accept_line().into_bytes());
                            serve_binary_client(reader, &mut forwarder, &shutdown);
                            break;
                        }
                        Some(version) => {
                            shared.send_error(
                                None,
                                "version_mismatch",
                                format!(
                                    "binary codec hello names protocol version \
                                     {version}; this router speaks {PROTOCOL_VERSION} \
                                     — continuing in JSON"
                                ),
                            );
                            line.clear();
                            continue;
                        }
                        None => {} // an ordinary request line; fall through
                    }
                }
                forwarder.handle_line(&line);
                line.clear();
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                continue; // shutdown tick; keep any partial line
            }
            Err(_) => break,
        }
    }
    forwarder.close();
    // Every holder of a reply sender (forwarder's shared clone, ours, and the
    // upstream readers joined in `close`) must be gone before the writer can exit.
    drop(forwarder);
    drop(shared);
    let _ = writer.join();
}

/// The frame-mode client reader loop, entered after an accepted binary hello.
///
/// Chunked uploads are reassembled here exactly once, and — the routing win — the
/// corpus fingerprint is computed **incrementally from the chunk events**, so by the
/// time `end_fit` lands the model key (identical to the replica's, and to an offline
/// [`gem_store::model_key`]) costs two hash finishes instead of a second multi-
/// megabyte corpus walk.
fn serve_binary_client(
    mut reader: BufReader<TcpStream>,
    forwarder: &mut Forwarder,
    shutdown: &Arc<AtomicBool>,
) {
    let mut assembler = binary::FrameAssembler::new();
    let mut chunks = binary::ChunkAssembler::new();
    let mut hashers: HashMap<u64, CorpusHasher> = HashMap::new();
    while !shutdown.load(Ordering::SeqCst) {
        let frame = match assembler.next_frame() {
            Ok(Some(frame)) => frame,
            Ok(None) => {
                match reader.fill_buf() {
                    Ok([]) => return, // client hung up
                    Ok(buf) => {
                        let n = buf.len();
                        assembler.push(buf);
                        reader.consume(n);
                    }
                    Err(e)
                        if matches!(
                            e.kind(),
                            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                        ) =>
                    {
                        continue; // shutdown tick
                    }
                    Err(_) => return,
                }
                continue;
            }
            Err(e) => {
                // A framing violation has no resynchronisation point on a byte
                // stream: answer the typed error uncorrelated and drop the link.
                forwarder.shared.send_error(None, e.code(), e.to_string());
                return;
            }
        };
        if binary::ChunkAssembler::is_chunk_kind(frame.kind) {
            let accepted = chunks.accept(&frame, |event| match event {
                binary::ChunkEvent::Begin { id, total_columns } => {
                    hashers.insert(id, CorpusHasher::new(total_columns));
                }
                binary::ChunkEvent::Columns { id, columns } => {
                    if let Some(hasher) = hashers.get_mut(&id) {
                        hasher.push_columns(columns);
                    }
                }
            });
            match accepted {
                Ok(Some(envelope)) => {
                    let corpus_fp = hashers.remove(&envelope.id).map(CorpusHasher::finish);
                    forwarder.dispatch(envelope, ForwardPayload::Reencode, corpus_fp);
                }
                Ok(None) => {}
                Err(e) => {
                    // A chunk-sequence violation costs only that upload: the
                    // assembler already dropped its partial state, we drop the
                    // matching hasher, and the connection (with any interleaved
                    // uploads) lives on.
                    let id = frame.correlation_id();
                    if let Some(id) = id {
                        hashers.remove(&id);
                    }
                    forwarder.shared.send_error(id, e.code(), e.to_string());
                }
            }
        } else {
            match binary::decode_request_frame(&frame) {
                Ok(envelope) => match binary::frame_bytes(frame.kind, &frame.payload) {
                    Ok(raw) => {
                        forwarder.dispatch(envelope, ForwardPayload::Frame(&raw), None);
                    }
                    Err(_) => forwarder.dispatch(envelope, ForwardPayload::Reencode, None),
                },
                Err(e) => {
                    forwarder
                        .shared
                        .send_error(frame.correlation_id(), e.code(), e.to_string());
                }
            }
        }
    }
}

/// The client connection's writer: every queued reply is a complete wire blob in the
/// client's codec (newline-terminated JSON line or binary frame) and is written
/// byte-for-byte — editing here would corrupt binary frames.
fn write_replies(mut stream: TcpStream, replies: &mpsc::Receiver<Vec<u8>>) {
    for reply in replies {
        if stream.write_all(&reply).is_err() {
            return;
        }
        if stream.flush().is_err() {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::RouterMetrics;
    use gem_core::{FeatureSet, GemColumn, GemConfig, MethodRegistry};
    use gem_serve::client::{ClientError, GemClient};
    use gem_serve::{model_key, EmbedService, GemServer, ServerHandle};

    fn empty_router() -> (RouterHandle, SocketAddr, JoinHandle<std::io::Result<()>>) {
        let metrics = Arc::new(RouterMetrics::new());
        // A member that cannot be reached: connects to it fail instantly, so routing
        // exercises the mark-down + no_replica path without sleeping.
        let cluster = Arc::new(Cluster::with_options(
            &["127.0.0.1:1".to_string()],
            metrics,
            8,
            1,
            Duration::from_millis(50),
            Duration::from_millis(100),
        ));
        let server = RouterServer::bind(cluster, ("127.0.0.1", 0)).expect("bind");
        let handle = server.handle();
        let addr = server.local_addr();
        let thread = std::thread::spawn(move || server.run());
        (handle, addr, thread)
    }

    #[test]
    fn health_is_answered_by_the_router_itself() {
        let (handle, addr, thread) = empty_router();
        let mut client = GemClient::connect(addr).expect("connect");
        let health = client.health().expect("health");
        // No probe has run and the only member is unreachable but not yet marked
        // down, so the router reports ok with zeroed queue numbers.
        assert_eq!(health.queue_depth, 0);
        handle.shutdown();
        let _ = thread.join();
    }

    #[test]
    fn unroutable_requests_get_the_typed_no_replica_error() {
        let (handle, addr, thread) = empty_router();
        let mut client = GemClient::connect(addr).expect("connect");
        let handle_hex = "00000000000000aa-00000000000000bb";
        let err = client
            .embed(ModelHandle::parse(handle_hex).expect("valid hex"), &[])
            .expect_err("nothing can serve this");
        match err {
            ClientError::Server {
                code,
                retry_after_ms,
                ..
            } => {
                assert_eq!(code, NO_REPLICA);
                assert!(retry_after_ms.is_some(), "no_replica carries a retry hint");
            }
            other => panic!("expected a typed server error, got {other:?}"),
        }
        handle.shutdown();
        let _ = thread.join();
    }

    fn real_replica(json_only: bool) -> (ServerHandle, JoinHandle<std::io::Result<()>>) {
        let config = GemConfig::fast();
        let mut service = EmbedService::new(MethodRegistry::with_gem(&config), 8);
        service.register_gem_family(&config);
        let mut server = GemServer::bind(Arc::new(service), ("127.0.0.1", 0))
            .expect("bind replica")
            .with_workers(2);
        if json_only {
            server = server.with_json_only();
        }
        let handle = server.handle().expect("replica handle");
        let join = std::thread::spawn(move || server.run());
        (handle, join)
    }

    #[allow(clippy::type_complexity)]
    fn router_over(
        replica: SocketAddr,
    ) -> (
        Arc<Cluster>,
        RouterHandle,
        SocketAddr,
        JoinHandle<std::io::Result<()>>,
    ) {
        let metrics = Arc::new(RouterMetrics::new());
        let cluster = Arc::new(Cluster::with_options(
            &[replica.to_string()],
            metrics,
            8,
            1,
            Duration::from_millis(50),
            Duration::from_millis(500),
        ));
        let server = RouterServer::bind(Arc::clone(&cluster), ("127.0.0.1", 0)).expect("bind");
        let handle = server.handle();
        let addr = server.local_addr();
        let thread = std::thread::spawn(move || server.run());
        (cluster, handle, addr, thread)
    }

    fn test_corpus() -> Vec<GemColumn> {
        (0..4)
            .map(|c| {
                GemColumn::new(
                    (0..300)
                        .map(|i| f64::from(i) * 0.25 + f64::from(c) * 40.0)
                        .collect(),
                    format!("col_{c}"),
                )
            })
            .collect()
    }

    #[test]
    fn binary_clients_chunk_fits_through_the_router_with_incremental_keys() {
        let (replica, replica_join) = real_replica(false);
        let (cluster, handle, addr, thread) = router_over(replica.addr());
        let config = GemConfig::fast();
        let corpus = test_corpus();

        // chunk_bytes(1) clamps to the 1 KiB floor, so this ~10 KiB corpus genuinely
        // travels as a begin_fit / corpus_chunk* / end_fit sequence.
        let mut client = GemClient::connect(addr)
            .expect("connect")
            .with_chunk_bytes(1);
        assert_eq!(client.codec_name(), "binary");
        let fitted = client
            .fit(&corpus, &config, FeatureSet::ds())
            .expect("chunked fit through the router");
        let expected = model_key(&corpus, &config, FeatureSet::ds());
        assert_eq!(fitted.handle, ModelHandle::from(expected));
        // The router keyed its placement from the *incremental* chunk hash — it must
        // land on the same hex as the offline derivation, or fail-over would look the
        // model up under a name nobody else computes.
        assert_eq!(
            cluster.placement_of(&expected.to_hex()),
            Some(replica.addr().to_string()),
            "placement recorded under the incrementally fingerprinted key"
        );

        // Streamed embed rows forward through the router verbatim and match what the
        // replica serves directly.
        let embedded = client.embed(fitted.handle, &corpus).expect("embed");
        assert_eq!(embedded.matrix.rows(), corpus.len());
        let mut direct = GemClient::connect_json(replica.addr()).expect("direct connect");
        let via_direct = direct.embed(fitted.handle, &corpus).expect("direct embed");
        assert_eq!(embedded.matrix, via_direct.matrix);

        handle.shutdown();
        let _ = thread.join();
        replica.shutdown();
        let _ = replica_join.join();
    }

    #[test]
    fn json_only_replicas_still_serve_binary_clients_through_the_router() {
        let (replica, replica_join) = real_replica(true);
        let (_cluster, handle, addr, thread) = router_over(replica.addr());
        let config = GemConfig::fast();
        let corpus = test_corpus();

        // The client negotiates binary with the router; the replica declines the
        // router's upstream hello, so every request is converted to JSON on the way
        // up and every response wrapped into a frame on the way back.
        let mut client = GemClient::connect(addr).expect("connect");
        assert_eq!(client.codec_name(), "binary");
        let fitted = client
            .fit(&corpus, &config, FeatureSet::ds())
            .expect("fit through codec conversion");
        assert_eq!(
            fitted.handle,
            ModelHandle::from(model_key(&corpus, &config, FeatureSet::ds()))
        );
        let embedded = client.embed(fitted.handle, &corpus).expect("embed");
        assert_eq!(embedded.matrix.rows(), corpus.len());
        let mut direct = GemClient::connect_json(replica.addr()).expect("direct connect");
        let via_direct = direct.embed(fitted.handle, &corpus).expect("direct embed");
        assert_eq!(embedded.matrix, via_direct.matrix);

        handle.shutdown();
        let _ = thread.join();
        replica.shutdown();
        let _ = replica_join.join();
    }

    #[test]
    fn malformed_lines_answer_protocol_errors_with_salvaged_ids() {
        let (handle, addr, thread) = empty_router();
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(b"{\"id\": 42, \"version\": 999999, \"body\": {\"type\": \"stats\"}}\n")
            .expect("write");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut line = String::new();
        reader.read_line(&mut line).expect("read");
        let envelope = decode_response(line.trim_end()).expect("decode");
        assert_eq!(envelope.in_reply_to, Some(42), "id salvaged from bad line");
        assert!(
            matches!(envelope.body, ResponseBody::Error { ref code, .. } if code == "version_mismatch"),
            "{envelope:?}"
        );
        handle.shutdown();
        let _ = thread.join();
    }
}
