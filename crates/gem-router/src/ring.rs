//! The consistent-hash ring that partitions model handles across replicas.
//!
//! Every replica contributes `vnodes` points to a 64-bit ring (FNV-1a over
//! `replica-address#vnode`, domain-separated from handle hashes); a handle routes to
//! the first point clockwise from its own hash. The construction is deterministic —
//! two routers (or one router across restarts) built from the same membership route
//! every handle identically, with no state to persist or exchange — and membership
//! changes move only the keys between the affected points: adding or removing one of
//! N replicas relocates ~1/N of the handles, never reshuffles everything.
//!
//! Liveness is *not* baked into the ring: routing takes an `alive` predicate and
//! walks clockwise past dead replicas, so a fail-over route ("next live node") and
//! the replication target ("first live node that is not the owner") fall out of the
//! same walk without rebuilding anything.

use gem_store::fingerprint::Fnv1a;

/// Finalizing avalanche (the splitmix64 mixer) applied on top of FNV-1a. Ring order
/// is decided by the *high* bits of the point hash, which raw FNV-1a mixes poorly for
/// short, near-sequential inputs like `addr#vnode` — without this, replica shares can
/// skew by an order of magnitude.
fn mix(mut h: u64) -> u64 {
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58476d1ce4e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d049bb133111eb);
    h ^ (h >> 31)
}

/// A deterministic consistent-hash ring over replica addresses. See the module docs.
#[derive(Debug, Clone)]
pub struct HashRing {
    vnodes: usize,
    nodes: Vec<String>,
    /// `(point hash, index into nodes)`, sorted by hash (ties broken by address so
    /// construction order never matters).
    points: Vec<(u64, usize)>,
}

/// Default virtual nodes per replica: enough to keep the share spread tight (the
/// distribution test below bounds it) while membership changes stay cheap.
pub const DEFAULT_VNODES: usize = 64;

impl HashRing {
    /// Build the ring for `nodes` with `vnodes` points per node (use
    /// [`DEFAULT_VNODES`] unless tuning). Duplicate addresses are collapsed.
    pub fn build(nodes: &[String], vnodes: usize) -> Self {
        let vnodes = vnodes.max(1);
        let mut unique: Vec<String> = Vec::new();
        for node in nodes {
            if !unique.iter().any(|n| n == node) {
                unique.push(node.clone());
            }
        }
        let mut points = Vec::with_capacity(unique.len() * vnodes);
        for (index, node) in unique.iter().enumerate() {
            for vnode in 0..vnodes {
                points.push((Self::point_hash(node, vnode), index));
            }
        }
        points.sort_by(|a, b| {
            let node_of = |p: &(u64, usize)| unique.get(p.1).map(String::as_str);
            (a.0, node_of(a)).cmp(&(b.0, node_of(b)))
        });
        HashRing {
            vnodes,
            nodes: unique,
            points,
        }
    }

    /// The replica addresses on the ring, in insertion order.
    pub fn nodes(&self) -> &[String] {
        &self.nodes
    }

    /// Virtual nodes per replica.
    pub fn vnodes(&self) -> usize {
        self.vnodes
    }

    /// Hash a handle's hex rendering onto the ring. Domain-separated from point
    /// hashes so a handle can never collide with a vnode by construction.
    pub fn handle_hash(handle: &str) -> u64 {
        let mut h = Fnv1a::new();
        h.write(b"gem-ring-key:");
        h.write(handle.as_bytes());
        mix(h.finish())
    }

    fn point_hash(node: &str, vnode: usize) -> u64 {
        let mut h = Fnv1a::new();
        h.write(b"gem-ring-node:");
        h.write(node.as_bytes());
        h.write_u64(vnode as u64);
        mix(h.finish())
    }

    /// The replica owning `handle` when every node is considered live.
    pub fn owner(&self, handle: &str) -> Option<&str> {
        self.route(handle, |_| true)
    }

    /// The first *live* replica clockwise from `handle`'s ring position — the owner
    /// when it is live, its fail-over target otherwise. `None` when nothing is live.
    pub fn route<F: Fn(&str) -> bool>(&self, handle: &str, alive: F) -> Option<&str> {
        self.walk(Self::handle_hash(handle), alive, None)
    }

    /// [`HashRing::route`] from a precomputed hash (for routes keyed by something
    /// other than a handle, e.g. an `EmbedCorpus` corpus fingerprint).
    pub fn route_hash<F: Fn(&str) -> bool>(&self, hash: u64, alive: F) -> Option<&str> {
        self.walk(hash, alive, None)
    }

    /// The first live replica clockwise from `handle` that is **not** `exclude`: the
    /// write-through replication target for a model held by `exclude`, and — by the
    /// same walk — exactly the node [`HashRing::route`] answers once `exclude` dies.
    pub fn successor<F: Fn(&str) -> bool>(
        &self,
        handle: &str,
        exclude: &str,
        alive: F,
    ) -> Option<&str> {
        self.walk(Self::handle_hash(handle), alive, Some(exclude))
    }

    fn walk<F: Fn(&str) -> bool>(
        &self,
        hash: u64,
        alive: F,
        exclude: Option<&str>,
    ) -> Option<&str> {
        if self.points.is_empty() {
            return None;
        }
        let start = self.points.partition_point(|(point, _)| *point < hash);
        let clockwise = self
            .points
            .iter()
            .skip(start)
            .chain(self.points.iter().take(start));
        for (_, index) in clockwise {
            let Some(node) = self.nodes.get(*index) else {
                continue;
            };
            if exclude.is_some_and(|e| e == node) {
                continue;
            }
            if alive(node) {
                return Some(node);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gem_store::ModelKey;

    fn nodes(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("10.0.0.{i}:7878")).collect()
    }

    /// ≥1k synthetic handles in the exact wire format (`<corpus:016x>-<config:016x>`),
    /// spread via the same FNV construction real fingerprints use.
    fn synthetic_handles(count: usize) -> Vec<String> {
        (0..count)
            .map(|i| {
                let mut a = Fnv1a::new();
                a.write(b"synthetic-corpus");
                a.write_u64(i as u64);
                let mut b = Fnv1a::new();
                b.write(b"synthetic-config");
                b.write_u64(i as u64);
                ModelKey {
                    corpus: a.finish(),
                    config: b.finish(),
                }
                .to_hex()
            })
            .collect()
    }

    #[test]
    fn ring_is_deterministic_across_rebuilds_and_node_order() {
        let handles = synthetic_handles(1000);
        let ring = HashRing::build(&nodes(5), DEFAULT_VNODES);
        // "Across process restarts": a freshly built ring from the same membership
        // (even listed in a different order) routes every handle identically — the
        // construction has no hidden state, clocks, or RNG.
        let rebuilt = HashRing::build(&nodes(5), DEFAULT_VNODES);
        let mut reversed_nodes = nodes(5);
        reversed_nodes.reverse();
        let reordered = HashRing::build(&reversed_nodes, DEFAULT_VNODES);
        for handle in &handles {
            assert_eq!(ring.owner(handle), rebuilt.owner(handle));
            assert_eq!(ring.owner(handle), reordered.owner(handle));
        }
    }

    #[test]
    fn joining_a_replica_moves_a_bounded_fraction_of_handles() {
        let handles = synthetic_handles(2000);
        let before = HashRing::build(&nodes(4), DEFAULT_VNODES);
        let after = HashRing::build(&nodes(5), DEFAULT_VNODES);
        let moved = handles
            .iter()
            .filter(|h| before.owner(h) != after.owner(h))
            .count();
        // Theory: joining the 5th replica moves ~1/5 of the keys (those it now owns).
        // Allow vnode-placement slack but stay far below a reshuffle.
        let expected = handles.len() / 5;
        assert!(
            moved <= expected * 2,
            "join moved {moved} of {} handles (expected ~{expected})",
            handles.len()
        );
        assert!(moved > 0, "a join that moves nothing shards nothing");
        // Every moved handle moved TO the joining replica — a join never shuffles
        // keys between the old replicas.
        let joiner = "10.0.0.4:7878".to_string();
        for handle in &handles {
            if before.owner(handle) != after.owner(handle) {
                assert_eq!(after.owner(handle), Some(joiner.as_str()));
            }
        }
    }

    #[test]
    fn leaving_a_replica_moves_only_its_own_handles() {
        let handles = synthetic_handles(2000);
        let before = HashRing::build(&nodes(5), DEFAULT_VNODES);
        let after = HashRing::build(&nodes(4), DEFAULT_VNODES);
        let leaver = "10.0.0.4:7878".to_string();
        let mut moved = 0usize;
        for handle in &handles {
            if before.owner(handle) == Some(leaver.as_str()) {
                // Its keys must land somewhere among the survivors…
                assert_ne!(after.owner(handle), Some(leaver.as_str()));
                moved += 1;
            } else {
                // …and nobody else's keys move at all.
                assert_eq!(before.owner(handle), after.owner(handle));
            }
        }
        let expected = handles.len() / 5;
        assert!(
            moved <= expected * 2,
            "leave moved {moved} of {} handles (expected ~{expected})",
            handles.len()
        );
    }

    #[test]
    fn fail_over_route_equals_the_replication_successor() {
        // The invariant the write-through replication relies on: for any handle, the
        // node `route` picks once the owner is dead is exactly the `successor` the
        // snapshot was shipped to while the owner was alive.
        let ring = HashRing::build(&nodes(5), DEFAULT_VNODES);
        for handle in synthetic_handles(500) {
            let owner = ring.owner(&handle).unwrap().to_string();
            let target = ring.successor(&handle, &owner, |_| true).map(str::to_owned);
            let failed_over = ring.route(&handle, |n| n != owner).map(str::to_owned);
            assert_eq!(target, failed_over, "handle {handle}");
            assert_ne!(target.as_deref(), Some(owner.as_str()));
        }
    }

    #[test]
    fn distribution_over_synthetic_fingerprints_is_even() {
        let handles = synthetic_handles(1500);
        let members = nodes(4);
        let ring = HashRing::build(&members, DEFAULT_VNODES);
        let mut counts = vec![0usize; members.len()];
        for handle in &handles {
            let owner = ring.owner(handle).unwrap();
            let at = members.iter().position(|n| n == owner).unwrap();
            counts[at] += 1;
        }
        let mean = handles.len() / members.len();
        for (node, count) in members.iter().zip(&counts) {
            assert!(
                *count * 2 > mean && *count < mean * 2,
                "{node} owns {count} of {} handles (mean {mean}) — too skewed",
                handles.len()
            );
        }
    }

    #[test]
    fn routing_skips_dead_nodes_and_empty_rings_route_nowhere() {
        let members = nodes(3);
        let ring = HashRing::build(&members, DEFAULT_VNODES);
        let handle = synthetic_handles(1).pop().unwrap();
        let owner = ring.owner(&handle).unwrap().to_string();
        let rerouted = ring.route(&handle, |n| n != owner).unwrap().to_string();
        assert_ne!(rerouted, owner);
        assert!(ring.route(&handle, |_| false).is_none(), "nothing live");
        let empty = HashRing::build(&[], DEFAULT_VNODES);
        assert!(empty.owner(&handle).is_none());
    }

    #[test]
    fn duplicate_nodes_collapse() {
        let mut twice = nodes(3);
        twice.extend(nodes(3));
        let ring = HashRing::build(&twice, DEFAULT_VNODES);
        assert_eq!(ring.nodes().len(), 3);
    }
}
