//! # gem-router
//!
//! The sharded cluster tier: a routing front-end that speaks `gem-proto` on both
//! sides. Clients connect to one address ([`RouterServer`] / the `gem-routed` bin) and
//! see a single logical server; behind it, model handles are partitioned across N
//! `gem-served` replicas by consistent hashing over the handle's hex fingerprint —
//! which is already replica-agnostic, so any replica that fits (or receives) the same
//! corpus under the same configuration resolves the same handle.
//!
//! ```text
//!                        ┌──────────────┐ probe ┌────────────┐
//!   client ── gem-proto ─┤  gem-routed  ├───────┤ gem-served │ replica A
//!   client ── gem-proto ─┤  (this crate)├───────┤ gem-served │ replica B
//!                        └──────┬───────┘       └────────────┘
//!                               └── Prometheus exposition (--metrics-addr)
//! ```
//!
//! * **Placement** — [`HashRing`]: a deterministic consistent-hash ring (FNV-1a over
//!   `replica#vnode` points). `Fit` requests are routed by computing the model key
//!   *router-side* with the same [`gem_store::model_key`] the replica will use, so the
//!   router knows the handle before the replica answers. Key movement on membership
//!   change is bounded to ~1/N of the handles.
//! * **Forwarding** — pipelined requests are forwarded to the owning replica with the
//!   client's envelope id preserved verbatim (each client connection gets its own
//!   upstream connections, so ids never collide), and responses stream back in
//!   whatever order replicas finish them. `Stats` / `ListModels` / `Evict` fan out to
//!   every live replica and answer with a merged body ([`gem_proto::merge_stats`] /
//!   [`gem_proto::merge_models`]).
//! * **Supervision** — [`Supervisor`] probes every replica's `Health` endpoint on an
//!   interval and tracks `up | degraded | down` per replica ([`ReplicaState`]);
//!   forwarding failures mark a replica down immediately (passive detection), so
//!   fail-over does not wait for the next probe tick.
//! * **Fail-over without refits** — every fitted model is write-through replicated to
//!   its ring successor via `PullModel`/`PushModel` *before* the client sees the
//!   `Fitted` response. When a replica dies, its handles re-route to the next live
//!   node on the ring — which already holds the snapshot — and [`Cluster::rebalance`]
//!   re-ships copies to restore redundancy. The corpus never crosses the wire twice
//!   and nothing is ever refitted: a router cannot even cause a refit, because the
//!   requests it re-routes carry handles, not corpora.
//! * **Membership** — `add-replica HOST:PORT` / `remove-replica HOST:PORT` on the
//!   `gem-routed` admin channel (`--ctl-stdin`) trigger the same snapshot-driven
//!   rebalance as fail-over.
//!
//! Router-side errors use two stable codes layered on the serving taxonomy:
//! `no_replica` (no live replica can own the route; carries a retry-after hint) and
//! `replica_unavailable` (the owning replica vanished mid-request; safe to retry —
//! the retry re-routes to the fail-over owner).
//!
//! Locks follow the serving tier's discipline: every acquisition goes through
//! [`gem_serve::sync`]'s poisoning-recovery helpers, and the crate is in scope for
//! gem-lint's L1 (lock discipline) and L3 (panic-free wire) rules.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod cluster;
pub mod metrics;
pub mod ring;
pub mod server;

pub use cluster::{Cluster, RebalanceReport, ReplicaState, Supervisor};
pub use metrics::RouterMetrics;
pub use ring::HashRing;
pub use server::{RouterHandle, RouterServer};
