//! Cluster state and supervision: which replicas exist, which are live, where each
//! model handle lives, and the snapshot-driven machinery that keeps models reachable
//! across replica failures and membership changes.
//!
//! [`Cluster`] is the single shared-state hub. One mutex protects the membership
//! slots, the [`HashRing`], and the placement map; every acquisition goes through
//! [`gem_serve::sync::lock_or_recover`], and **no network I/O ever happens under the
//! lock** — snapshot pulls and pushes collect their plan while locked and execute
//! unlocked, so a slow replica cannot wedge routing.
//!
//! Failure detection is two-tier:
//!
//! * **Passive** — the forwarding path calls [`Cluster::mark_down`] the moment a
//!   connect or write against a replica fails, so fail-over happens on the very
//!   request that observed the failure, not at the next probe tick.
//! * **Active** — the [`Supervisor`] thread probes every replica's `Health` endpoint
//!   on an interval; replicas reporting `degraded`/`overloaded` are marked
//!   [`ReplicaState::Degraded`] (still routable, but visible to operators), and
//!   [`Cluster::down_after`] consecutive probe failures mark a replica
//!   [`ReplicaState::Down`]. The supervisor reacts to both death and recovery with a
//!   [`Cluster::rebalance`].
//!
//! Rebalancing never refits: it lists the models each live replica holds, pulls the
//! snapshot for any handle whose ring owner lacks it (from whichever live replica —
//! or shared store tier behind one — still resolves it), pushes it to the owner, and
//! re-ships the successor copy that write-through replication maintains.

use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use gem_serve::client::{ClientError, GemClient, HealthOutcome, HealthState};
use gem_serve::sync::{lock_or_recover, wait_timeout_or_recover};

use crate::metrics::{RouterMetrics, STATE_DEGRADED, STATE_DOWN, STATE_UP};
use crate::ring::{HashRing, DEFAULT_VNODES};

/// The router's view of one replica's availability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaState {
    /// Probes answer `ok`; the replica receives its full ring share.
    Up,
    /// Reachable but reporting `degraded`/`overloaded`. Still routed to — it answers,
    /// just slowly — but flagged in health views and metrics.
    Degraded,
    /// Unreachable (probe failures or a forwarding failure). Its ring share is served
    /// by successors until it returns.
    Down,
}

impl ReplicaState {
    /// The wire/display name (`"up"` / `"degraded"` / `"down"`).
    pub fn name(self) -> &'static str {
        match self {
            ReplicaState::Up => "up",
            ReplicaState::Degraded => "degraded",
            ReplicaState::Down => "down",
        }
    }

    /// Whether the replica can be routed to at all.
    pub fn is_live(self) -> bool {
        !matches!(self, ReplicaState::Down)
    }

    fn metric_value(self) -> u64 {
        match self {
            ReplicaState::Up => STATE_UP,
            ReplicaState::Degraded => STATE_DEGRADED,
            ReplicaState::Down => STATE_DOWN,
        }
    }
}

/// What a probe (or forwarding failure) changed about a replica's state — the
/// supervisor rebalances on either edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transition {
    /// No state change.
    None,
    /// The replica just became unroutable.
    WentDown,
    /// A down replica is answering again.
    CameBack,
}

/// Per-replica bookkeeping behind the cluster lock.
#[derive(Debug, Clone)]
struct Slot {
    state: ReplicaState,
    consecutive_failures: u32,
    last_health: Option<HealthOutcome>,
}

impl Slot {
    fn fresh() -> Self {
        Slot {
            state: ReplicaState::Up,
            consecutive_failures: 0,
            last_health: None,
        }
    }
}

/// Everything the cluster lock protects.
#[derive(Debug)]
struct State {
    slots: HashMap<String, Slot>,
    ring: HashRing,
    /// Where each known handle is actually served from right now. Consulted before
    /// the ring so handles that legitimately live off their ring position — a
    /// `fit-update` derivative created on its parent's holder, or a model awaiting
    /// rebalance after a membership change — keep resolving.
    placement: HashMap<String, String>,
}

/// The merged health view the router reports for `Health` requests, computed from the
/// last probe observations without touching any replica.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthView {
    /// `ok` (every replica up), `degraded` (something down or degraded but at least
    /// one live replica), or `overloaded` (nothing live).
    pub state: &'static str,
    /// Sum of queue depths across live replicas, from the last probes.
    pub queue_depth: u64,
    /// Sum of queue capacities across live replicas.
    pub queue_capacity: u64,
    /// Sum of busy executors across live replicas.
    pub busy_workers: u64,
    /// Sum of executor threads across live replicas.
    pub workers: u64,
    /// Backoff hint, set only when nothing is live.
    pub retry_after_ms: Option<u64>,
}

/// What a [`Cluster::rebalance`] pass did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RebalanceReport {
    /// Distinct handles examined (union of every live replica's model list and the
    /// placement map).
    pub examined: usize,
    /// Handles whose snapshot was shipped to a new ring owner.
    pub moved: usize,
    /// Successor copies shipped to restore write-through redundancy.
    pub replicated: usize,
    /// Human-readable descriptions of pulls/pushes that failed (the pass continues
    /// past individual failures; these handles retry at the next rebalance).
    pub failures: Vec<String>,
}

/// Shared cluster state: membership, liveness, the ring, and handle placement.
/// See the module docs.
#[derive(Debug)]
pub struct Cluster {
    state: Mutex<State>,
    metrics: Arc<RouterMetrics>,
    down_after: u32,
    probe_interval: Duration,
    connect_timeout: Duration,
}

impl Cluster {
    /// A cluster over `replicas` with default tuning: [`DEFAULT_VNODES`] ring points
    /// per replica, two consecutive probe failures before `down`, a 1 s probe
    /// interval, and a 2 s connect/IO timeout for control traffic.
    pub fn new(replicas: &[String], metrics: Arc<RouterMetrics>) -> Self {
        Self::with_options(
            replicas,
            metrics,
            DEFAULT_VNODES,
            2,
            Duration::from_secs(1),
            Duration::from_secs(2),
        )
    }

    /// [`Cluster::new`] with every knob explicit (the `gem-routed` flags map here).
    pub fn with_options(
        replicas: &[String],
        metrics: Arc<RouterMetrics>,
        vnodes: usize,
        down_after: u32,
        probe_interval: Duration,
        connect_timeout: Duration,
    ) -> Self {
        let ring = HashRing::build(replicas, vnodes);
        let mut slots = HashMap::new();
        for node in ring.nodes() {
            metrics.replica(node);
            slots.insert(node.clone(), Slot::fresh());
        }
        Cluster {
            state: Mutex::new(State {
                slots,
                ring,
                placement: HashMap::new(),
            }),
            metrics,
            down_after: down_after.max(1),
            probe_interval,
            connect_timeout,
        }
    }

    /// The metrics set this cluster records into.
    pub fn metrics(&self) -> &Arc<RouterMetrics> {
        &self.metrics
    }

    /// The supervisor's probe interval.
    pub fn probe_interval(&self) -> Duration {
        self.probe_interval
    }

    /// Consecutive probe failures before a replica is marked down.
    pub fn down_after(&self) -> u32 {
        self.down_after
    }

    /// The connect/IO timeout used for control traffic (and upstream connects).
    pub fn connect_timeout(&self) -> Duration {
        self.connect_timeout
    }

    /// Open a control connection (probes, pulls, pushes) to `addr` with the cluster's
    /// connect/IO timeout.
    ///
    /// # Errors
    /// [`ClientError`] when the replica is unreachable or the handshake fails.
    pub fn connect(&self, addr: &str) -> Result<GemClient, ClientError> {
        GemClient::connect_timeout(addr, self.connect_timeout)
    }

    /// Every replica address with its current state, sorted by address.
    pub fn replica_states(&self) -> Vec<(String, ReplicaState)> {
        let state = lock_or_recover(&self.state);
        let mut out: Vec<(String, ReplicaState)> = state
            .slots
            .iter()
            .map(|(addr, slot)| (addr.clone(), slot.state))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// The live (routable) replica addresses, sorted.
    pub fn live_replicas(&self) -> Vec<String> {
        let state = lock_or_recover(&self.state);
        let mut out: Vec<String> = state
            .slots
            .iter()
            .filter(|(_, slot)| slot.state.is_live())
            .map(|(addr, _)| addr.clone())
            .collect();
        out.sort();
        out
    }

    /// The replica that should serve `handle` right now: its recorded placement when
    /// that replica is live, the first live ring node otherwise. `None` when nothing
    /// is live.
    pub fn route_handle(&self, handle: &str) -> Option<String> {
        let state = lock_or_recover(&self.state);
        if let Some(addr) = state.placement.get(handle) {
            if is_live(&state.slots, addr) {
                return Some(addr.clone());
            }
        }
        state
            .ring
            .route(handle, |node| is_live(&state.slots, node))
            .map(str::to_owned)
    }

    /// Route a non-handle key (e.g. an `embed-corpus` fingerprint hash) to the first
    /// live ring node.
    pub fn route_hash(&self, hash: u64) -> Option<String> {
        let state = lock_or_recover(&self.state);
        state
            .ring
            .route_hash(hash, |node| is_live(&state.slots, node))
            .map(str::to_owned)
    }

    /// Record that `handle` is served by `addr` (called when a tracked `Fit` /
    /// `FitUpdate` / `PushModel` succeeds, and by rebalancing).
    pub fn record_placement(&self, handle: &str, addr: &str) {
        let mut state = lock_or_recover(&self.state);
        state.placement.insert(handle.to_string(), addr.to_string());
    }

    /// Where `handle` was last recorded, live or not.
    pub fn placement_of(&self, handle: &str) -> Option<String> {
        lock_or_recover(&self.state).placement.get(handle).cloned()
    }

    /// Drop `handle`'s placement record (after a cluster-wide evict).
    pub fn forget_placement(&self, handle: &str) {
        lock_or_recover(&self.state).placement.remove(handle);
    }

    /// Handles with a recorded placement, sorted (the admin `placements` view).
    pub fn placements(&self) -> Vec<(String, String)> {
        let state = lock_or_recover(&self.state);
        let mut out: Vec<(String, String)> = state
            .placement
            .iter()
            .map(|(h, a)| (h.clone(), a.clone()))
            .collect();
        out.sort();
        out
    }

    /// Passive failure detection: the forwarding path observed `addr` failing.
    /// Marks it down immediately. Returns the transition (so callers can trigger a
    /// rebalance on the `WentDown` edge exactly once).
    pub fn mark_down(&self, addr: &str) -> Transition {
        let mut state = lock_or_recover(&self.state);
        let down_after = self.down_after;
        let Some(slot) = state.slots.get_mut(addr) else {
            return Transition::None;
        };
        slot.consecutive_failures = down_after;
        if slot.state == ReplicaState::Down {
            return Transition::None;
        }
        slot.state = ReplicaState::Down;
        self.metrics.replica(addr).state.set(STATE_DOWN);
        Transition::WentDown
    }

    /// Active failure detection: fold one probe outcome into `addr`'s slot.
    pub fn probe_result(
        &self,
        addr: &str,
        outcome: Result<HealthOutcome, ClientError>,
    ) -> Transition {
        let instruments = self.metrics.replica(addr);
        instruments.probes.inc();
        let mut state = lock_or_recover(&self.state);
        let down_after = self.down_after;
        let Some(slot) = state.slots.get_mut(addr) else {
            return Transition::None;
        };
        let was = slot.state;
        match outcome {
            Ok(health) => {
                slot.consecutive_failures = 0;
                slot.state = match health.state {
                    HealthState::Ok => ReplicaState::Up,
                    HealthState::Degraded | HealthState::Overloaded => ReplicaState::Degraded,
                };
                slot.last_health = Some(health);
            }
            Err(_) => {
                instruments.probe_failures.inc();
                slot.consecutive_failures = slot.consecutive_failures.saturating_add(1);
                if slot.consecutive_failures >= down_after {
                    slot.state = ReplicaState::Down;
                }
            }
        }
        let now = slot.state;
        if now != was {
            instruments.state.set(now.metric_value());
        }
        match (was.is_live(), now.is_live()) {
            (true, false) => Transition::WentDown,
            (false, true) => Transition::CameBack,
            _ => Transition::None,
        }
    }

    /// The merged health view for router-answered `Health` requests.
    pub fn health_view(&self) -> HealthView {
        let state = lock_or_recover(&self.state);
        let mut live = 0usize;
        let mut impaired = 0usize;
        let mut view = HealthView {
            state: "ok",
            queue_depth: 0,
            queue_capacity: 0,
            busy_workers: 0,
            workers: 0,
            retry_after_ms: None,
        };
        for slot in state.slots.values() {
            if slot.state.is_live() {
                live += 1;
                if let Some(health) = &slot.last_health {
                    view.queue_depth += health.queue_depth;
                    view.queue_capacity += health.queue_capacity;
                    view.busy_workers += health.busy_workers;
                    view.workers += health.workers;
                }
            }
            if slot.state != ReplicaState::Up {
                impaired += 1;
            }
        }
        if live == 0 {
            view.state = "overloaded";
            view.retry_after_ms =
                Some(u64::try_from(self.probe_interval.as_millis()).unwrap_or(1_000));
        } else if impaired > 0 {
            view.state = "degraded";
        }
        view
    }

    /// Add `addr` to the membership (admin surface). Returns `false` when it was
    /// already a member. The caller follows up with [`Cluster::rebalance`].
    pub fn add_replica(&self, addr: &str) -> bool {
        let mut state = lock_or_recover(&self.state);
        if state.slots.contains_key(addr) {
            return false;
        }
        self.metrics.replica(addr).state.set(STATE_UP);
        state.slots.insert(addr.to_string(), Slot::fresh());
        let vnodes = state.ring.vnodes();
        let mut nodes: Vec<String> = state.slots.keys().cloned().collect();
        nodes.sort();
        state.ring = HashRing::build(&nodes, vnodes);
        true
    }

    /// Remove `addr` from the membership (admin surface). Returns `false` when it was
    /// not a member. The caller follows up with [`Cluster::rebalance`].
    pub fn remove_replica(&self, addr: &str) -> bool {
        let mut state = lock_or_recover(&self.state);
        if state.slots.remove(addr).is_none() {
            return false;
        }
        self.metrics.replica(addr).state.set(STATE_DOWN);
        let vnodes = state.ring.vnodes();
        let mut nodes: Vec<String> = state.slots.keys().cloned().collect();
        nodes.sort();
        state.ring = HashRing::build(&nodes, vnodes);
        true
    }

    /// Write-through replication: copy `handle`'s snapshot from `owner` to its live
    /// ring successor, so the node fail-over would route to already holds it. Called
    /// synchronously after every tracked fit/push, **before** the client sees the
    /// success — fail-over needs no grace period.
    ///
    /// Returns the successor that now holds the copy, or `None` when the cluster has
    /// no second live replica to copy to.
    ///
    /// # Errors
    /// A human-readable description when the pull or push failed; the primary copy is
    /// unaffected.
    pub fn replicate(&self, handle: &str, owner: &str) -> Result<Option<String>, String> {
        let successor = {
            let state = lock_or_recover(&self.state);
            state
                .ring
                .successor(handle, owner, |node| is_live(&state.slots, node))
                .map(str::to_owned)
        };
        let Some(successor) = successor else {
            return Ok(None);
        };
        self.copy_snapshot(handle, owner, &successor)?;
        self.metrics.inc_replication();
        Ok(Some(successor))
    }

    /// Pull `handle`'s snapshot from `from` and push it to `to`. No refit anywhere:
    /// the source serves bytes it already holds (memory or store tier) and the
    /// destination installs them.
    fn copy_snapshot(&self, handle: &str, from: &str, to: &str) -> Result<(), String> {
        let parsed = gem_serve::ModelHandle::parse(handle)?;
        let mut source = self
            .connect(from)
            .map_err(|e| format!("pull {handle} from {from}: {e}"))?;
        let snapshot = source
            .pull_model(parsed)
            .map_err(|e| format!("pull {handle} from {from}: {e}"))?;
        let mut destination = self
            .connect(to)
            .map_err(|e| format!("push {handle} to {to}: {e}"))?;
        destination
            .push_model(&snapshot.snapshot)
            .map_err(|e| format!("push {handle} to {to}: {e}"))?;
        Ok(())
    }

    /// Re-home every known handle after a liveness or membership change: ship each
    /// handle's snapshot to its current ring owner (if the owner lacks it) and to the
    /// owner's successor (restoring write-through redundancy), then normalize the
    /// placement map to the ring. Never refits — every move is a `PullModel` /
    /// `PushModel` pair between replicas (or the shared store tier behind them).
    ///
    /// All network traffic happens outside the cluster lock.
    pub fn rebalance(&self) -> RebalanceReport {
        let mut report = RebalanceReport::default();

        // Phase 1 (locked): snapshot the live membership and known placements.
        let (live, ring, placement) = {
            let state = lock_or_recover(&self.state);
            let live: Vec<String> = state
                .slots
                .iter()
                .filter(|(_, slot)| slot.state.is_live())
                .map(|(addr, _)| addr.clone())
                .collect();
            (live, state.ring.clone(), state.placement.clone())
        };
        if live.is_empty() {
            return report;
        }

        // Phase 2 (unlocked): ask every live replica what it holds.
        let mut holders: HashMap<String, Vec<String>> = HashMap::new();
        for addr in &live {
            let models = self.connect(addr).and_then(|mut c| c.list_models());
            match models {
                Ok(models) => {
                    for model in models {
                        holders.entry(model.handle).or_default().push(addr.clone());
                    }
                }
                Err(e) => report.failures.push(format!("list {addr}: {e}")),
            }
        }
        let mut handles: HashSet<String> = holders.keys().cloned().collect();
        handles.extend(placement.keys().cloned());
        let mut handles: Vec<String> = handles.into_iter().collect();
        handles.sort();

        // Phase 3 (unlocked): ship snapshots so each handle's ring owner and its
        // successor both hold it.
        let is_member = |node: &str| live.iter().any(|l| l == node);
        let mut moved = 0u64;
        for handle in &handles {
            report.examined += 1;
            let Some(owner) = ring.route(handle, is_member).map(str::to_owned) else {
                continue;
            };
            let holds: Vec<String> = holders.get(handle).cloned().unwrap_or_default();
            if !holds.iter().any(|h| h == &owner) {
                // Prefer any live holder; fall back to the recorded placement (it may
                // front a shared store tier even if its memory list missed the handle).
                let source = holds
                    .first()
                    .cloned()
                    .or_else(|| placement.get(handle).cloned().filter(|a| is_member(a)));
                let Some(source) = source else {
                    report
                        .failures
                        .push(format!("{handle}: no live replica holds it"));
                    continue;
                };
                match self.copy_snapshot(handle, &source, &owner) {
                    Ok(()) => {
                        report.moved += 1;
                        moved += 1;
                    }
                    Err(e) => {
                        report.failures.push(e);
                        continue;
                    }
                }
            }
            if let Some(successor) = ring.successor(handle, &owner, is_member).map(str::to_owned) {
                if !holds.iter().any(|h| h == &successor) {
                    match self.copy_snapshot(handle, &owner, &successor) {
                        Ok(()) => report.replicated += 1,
                        Err(e) => report.failures.push(e),
                    }
                }
            }
            self.record_placement(handle, &owner);
        }
        self.metrics.add_failover_moves(moved);
        report
    }
}

/// Whether `addr` is present and routable. Free function (not a method) so callers
/// holding the state guard can use it without re-locking.
fn is_live(slots: &HashMap<String, Slot>, addr: &str) -> bool {
    slots.get(addr).is_some_and(|slot| slot.state.is_live())
}

/// The health-probe thread: probes every replica each [`Cluster::probe_interval`],
/// folds the outcomes into the cluster, and runs a rebalance whenever a replica's
/// liveness flips in either direction.
#[derive(Debug)]
pub struct Supervisor {
    stop: Arc<(Mutex<bool>, Condvar)>,
    thread: Option<JoinHandle<()>>,
}

impl Supervisor {
    /// Start probing `cluster`. The thread exits promptly on [`Supervisor::stop`].
    pub fn spawn(cluster: Arc<Cluster>) -> Self {
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let signal = Arc::clone(&stop);
        let thread = std::thread::spawn(move || {
            let (flag, condvar) = &*signal;
            loop {
                {
                    let guard = lock_or_recover(flag);
                    let guard =
                        wait_timeout_or_recover(condvar, guard, cluster.probe_interval(), || {});
                    if *guard {
                        return;
                    }
                }
                let mut needs_rebalance = false;
                for (addr, _) in cluster.replica_states() {
                    let outcome = cluster.connect(&addr).and_then(|mut c| c.health());
                    if cluster.probe_result(&addr, outcome) != Transition::None {
                        needs_rebalance = true;
                    }
                }
                if needs_rebalance {
                    let _ = cluster.rebalance();
                }
            }
        });
        Supervisor {
            stop,
            thread: Some(thread),
        }
    }

    /// Stop the probe thread and wait for it to exit.
    pub fn stop(&mut self) {
        let (flag, condvar) = &*self.stop;
        *lock_or_recover(flag) = true;
        condvar.notify_all();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for Supervisor {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(addrs: &[&str]) -> Cluster {
        let replicas: Vec<String> = addrs.iter().map(|a| a.to_string()).collect();
        Cluster::new(&replicas, Arc::new(RouterMetrics::new()))
    }

    fn probe_failure() -> Result<HealthOutcome, ClientError> {
        Err(ClientError::Io(std::io::Error::new(
            std::io::ErrorKind::ConnectionRefused,
            "probe refused",
        )))
    }

    fn probe_ok(state: HealthState) -> Result<HealthOutcome, ClientError> {
        Ok(HealthOutcome {
            state,
            queue_depth: 1,
            queue_capacity: 64,
            busy_workers: 2,
            workers: 4,
            retry_after_ms: None,
        })
    }

    #[test]
    fn down_needs_consecutive_probe_failures_and_recovery_is_immediate() {
        let c = cluster(&["a:1", "b:2"]);
        assert_eq!(c.probe_result("a:1", probe_failure()), Transition::None);
        assert_eq!(
            c.probe_result("a:1", probe_ok(HealthState::Ok)),
            Transition::None,
            "a success resets the failure streak"
        );
        assert_eq!(c.probe_result("a:1", probe_failure()), Transition::None);
        assert_eq!(c.probe_result("a:1", probe_failure()), Transition::WentDown);
        assert_eq!(c.live_replicas(), vec!["b:2".to_string()]);
        assert_eq!(
            c.probe_result("a:1", probe_ok(HealthState::Ok)),
            Transition::CameBack
        );
        assert_eq!(c.live_replicas().len(), 2);
    }

    #[test]
    fn mark_down_is_immediate_and_reroutes_handles() {
        let c = cluster(&["a:1", "b:2"]);
        let handle = "00000000000000aa-00000000000000bb";
        let owner = c.route_handle(handle).expect("two live replicas");
        assert_eq!(c.mark_down(&owner), Transition::WentDown);
        assert_eq!(c.mark_down(&owner), Transition::None, "edge fires once");
        let rerouted = c.route_handle(handle).expect("one live replica left");
        assert_ne!(rerouted, owner);
    }

    #[test]
    fn placement_overrides_ring_while_its_replica_lives() {
        let c = cluster(&["a:1", "b:2"]);
        let handle = "00000000000000aa-00000000000000bb";
        let ring_owner = c.route_handle(handle).expect("routable");
        let other = if ring_owner == "a:1" { "b:2" } else { "a:1" };
        c.record_placement(handle, other);
        assert_eq!(c.route_handle(handle).as_deref(), Some(other));
        // Placement on a dead replica is ignored — the ring takes over.
        c.mark_down(other);
        assert_eq!(c.route_handle(handle).as_deref(), Some(ring_owner.as_str()));
    }

    #[test]
    fn health_view_merges_live_probe_observations() {
        let c = cluster(&["a:1", "b:2"]);
        let _ = c.probe_result("a:1", probe_ok(HealthState::Ok));
        let _ = c.probe_result("b:2", probe_ok(HealthState::Ok));
        let view = c.health_view();
        assert_eq!(view.state, "ok");
        assert_eq!(view.queue_depth, 2);
        assert_eq!(view.workers, 8);

        let _ = c.probe_result("b:2", probe_ok(HealthState::Overloaded));
        assert_eq!(c.health_view().state, "degraded");

        c.mark_down("a:1");
        c.mark_down("b:2");
        let dead = c.health_view();
        assert_eq!(dead.state, "overloaded");
        assert!(dead.retry_after_ms.is_some());
    }

    #[test]
    fn membership_changes_rebuild_the_ring() {
        let c = cluster(&["a:1", "b:2"]);
        assert!(c.add_replica("c:3"));
        assert!(!c.add_replica("c:3"), "idempotent");
        assert_eq!(c.live_replicas().len(), 3);
        assert!(c.remove_replica("a:1"));
        assert!(!c.remove_replica("a:1"));
        let handle = "00000000000000aa-00000000000000bb";
        let owner = c.route_handle(handle).expect("routable");
        assert_ne!(owner, "a:1", "removed members receive no routes");
    }

    #[test]
    fn supervisor_stops_promptly() {
        let replicas = vec!["127.0.0.1:1".to_string()]; // nothing listens; probes fail
        let c = Arc::new(Cluster::with_options(
            &replicas,
            Arc::new(RouterMetrics::new()),
            8,
            2,
            Duration::from_millis(20),
            Duration::from_millis(50),
        ));
        let mut supervisor = Supervisor::spawn(Arc::clone(&c));
        std::thread::sleep(Duration::from_millis(120));
        supervisor.stop();
        // Probes against a dead address eventually mark it down.
        let states = c.replica_states();
        assert_eq!(states.len(), 1);
    }
}
