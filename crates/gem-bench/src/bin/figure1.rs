//! Figure 1: histogram + KDE overlays of four numeric columns (Age, Rank, Test Score,
//! Temperature) whose distribution shapes overlap although their semantic types differ.
//! The binary prints the histogram frequencies and KDE series that the figure plots, plus
//! the pairwise Gem similarity showing that Gem still separates the types.

use gem_bench::{save_records, standard_registry};
use gem_core::GemColumn;
use gem_data::figure1_columns;
use gem_eval::ExperimentRecord;
use gem_numeric::distance::cosine_similarity;
use gem_numeric::{Histogram, KernelDensityEstimate};

fn main() {
    println!("Regenerating Figure 1 (motivating histograms + KDE)\n");
    let columns = figure1_columns(11);
    let mut records = Vec::new();

    for column in &columns {
        let histogram = Histogram::new(&column.values, 12).expect("non-empty column");
        let kde = KernelDensityEstimate::new(&column.values).expect("non-empty column");
        let (grid, density) = kde.evaluate_grid(20);
        println!(
            "== {} (semantic type: {}) ==",
            column.header, column.fine_type
        );
        println!(
            "  histogram bin centres: {:?}",
            rounded(&histogram.centers())
        );
        println!(
            "  histogram frequencies: {:?}",
            rounded(&histogram.frequencies())
        );
        println!("  KDE grid:             {:?}", rounded(&grid));
        println!("  KDE density:          {:?}", rounded(&density));
        println!();
        let mean = column.values.iter().sum::<f64>() / column.values.len() as f64;
        records.push(ExperimentRecord {
            experiment: "Figure 1".into(),
            setting: column.header.clone(),
            method: "corpus generator".into(),
            metric: "column mean".into(),
            paper_value: Some(if column.fine_type == "age" || column.fine_type == "rank" {
                30.0
            } else {
                75.0
            }),
            measured_value: mean,
        });
    }

    // The paper's point: overlapping shapes, different semantics — and Gem separates them
    // once distributional + statistical evidence is considered.
    let gem_cols: Vec<GemColumn> = columns
        .iter()
        .map(|c| GemColumn::new(c.values.clone(), c.header.clone()))
        .collect();
    let embedding = standard_registry()
        .require("Gem (D+S)")
        .expect("registered method")
        .embed(&gem_cols, None)
        .expect("gem embedding");
    println!("Pairwise cosine similarity of Gem (D+S) embeddings:");
    for i in 0..columns.len() {
        for j in (i + 1)..columns.len() {
            let sim = cosine_similarity(embedding.row(i), embedding.row(j)).unwrap();
            println!(
                "  {:<22} vs {:<22}: {:.3}",
                columns[i].header, columns[j].header, sim
            );
        }
    }
    save_records(&records);
}

fn rounded(values: &[f64]) -> Vec<f64> {
    values
        .iter()
        .map(|v| (v * 1000.0).round() / 1000.0)
        .collect()
}
