//! Figure 4: impact of the number of Gaussian components (5–100) on Gem's average precision
//! across the four corpora. The paper's finding is a flat curve — precision is insensitive
//! to the component count. Each sweep point instantiates the registry at that component
//! count and runs its `"Gem (D+S)"` entry.

use gem_bench::{
    bench_corpus_config, embed_with, fmt3, registry_with_components, save_records, score,
    strip_headers, to_gem_columns,
};
use gem_data::{build_corpus, CorpusKind, Granularity};
use gem_eval::{ExperimentRecord, ResultTable};

fn main() {
    let config = bench_corpus_config();
    let component_counts = [5usize, 10, 20, 30, 50, 75, 100];
    println!(
        "Regenerating Figure 4 at scale {:.2} (component-count sweep {component_counts:?})\n",
        config.scale
    );

    let corpora = [
        ("GitTables", CorpusKind::GitTables),
        ("Sato Tables", CorpusKind::SatoTables),
        ("GDS", CorpusKind::Gds),
        ("WDC", CorpusKind::Wdc),
    ];

    let mut headers = vec!["# components".to_string()];
    headers.extend(corpora.iter().map(|(n, _)| n.to_string()));
    let mut table = ResultTable::new(
        "Figure 4: average precision vs number of GMM components (Gem D+S, coarse GT)",
        headers,
    );
    let mut records = Vec::new();

    let datasets: Vec<_> = corpora
        .iter()
        .map(|(name, kind)| (*name, build_corpus(*kind, &config)))
        .collect();

    for &k in &component_counts {
        let registry = registry_with_components(k);
        let mut row = vec![k.to_string()];
        for (name, dataset) in &datasets {
            let columns = strip_headers(&to_gem_columns(dataset));
            let embedding = embed_with(&registry, "Gem (D+S)", &columns, None);
            let precision = score(dataset, &embedding, Granularity::Coarse).average_precision;
            row.push(fmt3(precision));
            records.push(ExperimentRecord {
                experiment: "Figure 4".into(),
                setting: format!("{name} / {k} components"),
                method: "Gem (D+S)".into(),
                metric: "average precision".into(),
                paper_value: None,
                measured_value: precision,
            });
            eprintln!("  k={k:<4} {name:<12}: {precision:.3}");
        }
        table.push_row(row);
    }
    println!("{}", table.to_markdown());
    println!(
        "Paper finding to compare against: precision varies only slightly with the component \
         count (GitTables ~0.27-0.28, Sato ~0.35-0.37, GDS ~0.36-0.37, WDC ~0.19-0.21)."
    );
    save_records(&records);
}
