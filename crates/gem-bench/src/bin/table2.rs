//! Table 2: average precision of the numeric-only methods (Squashing_GMM, Squashing_SOM,
//! PLE, PAF, KS statistic, Gem D+S) on the coarse-grained versions of GitTables, Sato
//! Tables, WDC and GDS. The method set is the `"table2"` slice of the standard
//! [`gem_bench::standard_registry`]; per corpus, all methods are fanned out across
//! threads with `gem-parallel`.

use gem_bench::{
    bench_components, bench_corpus_config, fmt3, save_records, score, standard_registry,
    strip_headers, to_gem_columns,
};
use gem_data::{build_corpus, CorpusKind, Granularity};
use gem_eval::{ExperimentRecord, ResultTable};
use std::collections::BTreeMap;

/// Average-precision values reported in the paper's Table 2, keyed by (method, corpus).
fn paper_value(method: &str, kind: CorpusKind) -> Option<f64> {
    let idx = match kind {
        CorpusKind::GitTables => 0,
        CorpusKind::SatoTables => 1,
        CorpusKind::Wdc => 2,
        CorpusKind::Gds => 3,
    };
    let row: [f64; 4] = match method {
        "Squashing_GMM" => [0.25, 0.28, 0.18, 0.29],
        "Squashing_SOM" => [0.19, 0.31, 0.14, 0.28],
        "PLE" => [0.19, 0.11, 0.18, 0.11],
        "PAF" => [0.24, 0.23, 0.17, 0.34],
        "KS statistic" => [0.21, 0.21, 0.02, 0.21],
        "Gem (D+S)" => [0.28, 0.37, 0.21, 0.37],
        _ => return None,
    };
    Some(row[idx])
}

fn main() {
    let config = bench_corpus_config();
    let components = bench_components();
    let registry = standard_registry();
    println!(
        "Regenerating Table 2 at scale {:.2}, {components} components (numeric-only, coarse-grained GT)\n",
        config.scale
    );

    let corpora = [
        ("Git Tables", CorpusKind::GitTables),
        ("Sato Tables", CorpusKind::SatoTables),
        ("WDC", CorpusKind::Wdc),
        ("GDS", CorpusKind::Gds),
    ];
    let datasets: Vec<_> = corpora
        .iter()
        .map(|(name, kind)| (*name, *kind, build_corpus(*kind, &config)))
        .collect();

    let mut headers = vec!["method".to_string()];
    for (name, _, _) in &datasets {
        headers.push(format!("{name} (measured)"));
        headers.push(format!("{name} (paper)"));
    }
    let mut table = ResultTable::new("Table 2: average precision, numeric-only methods", headers);

    // Per corpus, fan every Table 2 method out across worker threads, then collate the
    // per-method scores into the table's method-major row order.
    let mut measured: BTreeMap<(String, &str), f64> = BTreeMap::new();
    let mut records = Vec::new();
    for (name, kind, dataset) in &datasets {
        let columns = strip_headers(&to_gem_columns(dataset));
        for (method, embedding) in registry.embed_all_tagged("table2", &columns, None, true) {
            let embedding = embedding.unwrap_or_else(|e| panic!("{method} on {name}: {e}"));
            let scores = score(dataset, &embedding, Granularity::Coarse);
            eprintln!(
                "  {method:>15} on {name:<12}: {:.3}",
                scores.average_precision
            );
            records.push(ExperimentRecord {
                experiment: "Table 2".into(),
                setting: (*name).into(),
                method: method.clone(),
                metric: "average precision".into(),
                paper_value: paper_value(&method, *kind),
                measured_value: scores.average_precision,
            });
            measured.insert((method, *name), scores.average_precision);
        }
    }

    for entry in registry.tagged("table2") {
        let method = entry.name();
        let mut row = vec![method.to_string()];
        for (name, kind, _) in &datasets {
            row.push(fmt3(measured[&(method.to_string(), *name)]));
            let paper = paper_value(method, *kind);
            row.push(paper.map(|p| format!("{p:.2}")).unwrap_or_default());
        }
        table.push_row(row);
    }
    println!("{}", table.to_markdown());
    save_records(&records);
}
