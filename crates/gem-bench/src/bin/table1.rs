//! Table 1: dataset statistics — number of numeric columns and ground-truth clusters for
//! the four (synthetic) corpora, at coarse and fine granularity.

use gem_bench::{bench_corpus_config, save_records};
use gem_data::{build_corpus, dataset_statistics, CorpusKind};
use gem_eval::{ExperimentRecord, ResultTable};

fn main() {
    let config = bench_corpus_config();
    println!(
        "Regenerating Table 1 at scale {:.2} (set GEM_BENCH_SCALE=1.0 for paper-sized corpora)\n",
        config.scale
    );

    let mut table = ResultTable::new(
        "Table 1: dataset statistics (synthetic corpora)",
        vec![
            "dataset".into(),
            "# columns".into(),
            "# coarse GT clusters".into(),
            "# fine GT clusters".into(),
            "paper # columns".into(),
            "paper coarse (fine) clusters".into(),
        ],
    );
    let mut records = Vec::new();
    for kind in [
        CorpusKind::Gds,
        CorpusKind::Wdc,
        CorpusKind::SatoTables,
        CorpusKind::GitTables,
    ] {
        let dataset = build_corpus(kind, &config);
        let stats = dataset_statistics(&dataset);
        table.push_row(vec![
            stats.name.clone(),
            stats.n_columns.to_string(),
            stats.coarse_clusters.to_string(),
            stats.fine_clusters.to_string(),
            kind.paper_columns().to_string(),
            format!(
                "{} ({})",
                kind.paper_coarse_clusters(),
                kind.paper_fine_clusters()
            ),
        ]);
        records.push(ExperimentRecord {
            experiment: "Table 1".into(),
            setting: stats.name.clone(),
            method: "corpus generator".into(),
            metric: "n_columns".into(),
            paper_value: Some(kind.paper_columns() as f64),
            measured_value: stats.n_columns as f64,
        });
        records.push(ExperimentRecord {
            experiment: "Table 1".into(),
            setting: stats.name.clone(),
            method: "corpus generator".into(),
            metric: "fine_clusters".into(),
            paper_value: Some(kind.paper_fine_clusters() as f64),
            measured_value: stats.fine_clusters as f64,
        });
    }
    println!("{}", table.to_markdown());
    save_records(&records);
}
