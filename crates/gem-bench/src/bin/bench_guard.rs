//! Bench-regression guard: compare a fresh `GEM_CRITERION_JSON` snapshot against a
//! committed baseline and flag benchmarks whose mean — or 99th-percentile, when both
//! snapshots record one — regressed beyond a threshold.
//!
//! ```sh
//! GEM_CRITERION_JSON=/tmp/scalability.json cargo bench -p gem-bench --bench scalability
//! cargo run -p gem-bench --release --bin bench_guard -- BENCH_baseline.json /tmp/scalability.json
//! ```
//!
//! Exits non-zero when any benchmark present in both files regressed by more than the
//! threshold (default 25%, override with `--threshold 0.25`). Pass `--warn-only` (what CI
//! does, since shared runners are noisy) to report regressions without failing.
//! Benchmarks present in only one file are reported but never fail the guard, so adding
//! a bench does not break the gate before its baseline is committed.

use gem_json::Json;
use std::process::ExitCode;

struct Entry {
    group: String,
    id: String,
    mean_s: f64,
    /// 99th-percentile seconds, when the snapshot carries one (newer snapshots do).
    /// Tail latency is guarded separately from the mean: a bench whose median is flat
    /// but whose worst samples ballooned is a regression the mean hides.
    p99_s: Option<f64>,
}

fn load(path: &str) -> Result<Vec<Entry>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let json = Json::parse(&text).map_err(|e| format!("cannot parse {path}: {e}"))?;
    let items = json
        .as_array()
        .ok_or_else(|| format!("{path}: expected a JSON array of bench results"))?;
    items
        .iter()
        .map(|item| {
            Ok(Entry {
                group: item
                    .str_field("group")
                    .map_err(|e| format!("{path}: {e}"))?,
                id: item.str_field("id").map_err(|e| format!("{path}: {e}"))?,
                mean_s: item
                    .num_field("mean_s")
                    .map_err(|e| format!("{path}: {e}"))?,
                p99_s: item.num_field("p99_s").ok(),
            })
        })
        .collect()
}

fn run(baseline_path: &str, current_path: &str, threshold: f64, warn_only: bool) -> ExitCode {
    let (baseline, current) = match (load(baseline_path), load(current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_guard: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "bench_guard: {current_path} vs baseline {baseline_path} (threshold +{:.0}%)",
        threshold * 100.0
    );
    println!(
        "{:<45} {:>12} {:>12} {:>9}  verdict",
        "benchmark", "baseline_s", "current_s", "ratio"
    );

    let mut regressions = 0usize;
    let mut compared = 0usize;
    for entry in &current {
        let label = format!("{}/{}", entry.group, entry.id);
        match baseline
            .iter()
            .find(|b| b.group == entry.group && b.id == entry.id)
        {
            Some(base) if base.mean_s > 0.0 => {
                compared += 1;
                let ratio = entry.mean_s / base.mean_s;
                let regressed = ratio > 1.0 + threshold;
                if regressed {
                    regressions += 1;
                }
                println!(
                    "{label:<45} {:>12.6} {:>12.6} {:>8.2}x  {}",
                    base.mean_s,
                    entry.mean_s,
                    ratio,
                    if regressed { "REGRESSED" } else { "ok" }
                );
                // Tail-latency guard, when both snapshots carry p99.
                if let (Some(base_p99), Some(p99)) = (base.p99_s, entry.p99_s) {
                    if base_p99 > 0.0 {
                        compared += 1;
                        let tail_ratio = p99 / base_p99;
                        let tail_regressed = tail_ratio > 1.0 + threshold;
                        if tail_regressed {
                            regressions += 1;
                        }
                        println!(
                            "{:<45} {base_p99:>12.6} {p99:>12.6} {tail_ratio:>8.2}x  {}",
                            format!("{label} [p99]"),
                            if tail_regressed { "REGRESSED" } else { "ok" }
                        );
                    }
                }
            }
            _ => println!(
                "{label:<45} {:>12} {:>12.6} {:>9}  no baseline (informational)",
                "-", entry.mean_s, "-"
            ),
        }
    }
    for base in &baseline {
        if !current
            .iter()
            .any(|c| c.group == base.group && c.id == base.id)
        {
            println!(
                "{:<45} {:>12.6} {:>12} {:>9}  missing from current (informational)",
                format!("{}/{}", base.group, base.id),
                base.mean_s,
                "-",
                "-"
            );
        }
    }

    println!("bench_guard: {compared} compared, {regressions} regressed");
    if regressions > 0 {
        if warn_only {
            println!("bench_guard: warn-only mode, not failing");
            return ExitCode::SUCCESS;
        }
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut threshold = 0.25;
    let mut warn_only = false;
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--warn-only" => warn_only = true,
            "--threshold" => match iter.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(t) if t > 0.0 => threshold = t,
                _ => {
                    eprintln!("bench_guard: --threshold needs a positive number");
                    return ExitCode::FAILURE;
                }
            },
            other => paths.push(other.to_string()),
        }
    }
    // `GEM_BENCH_GUARD_WARN_ONLY=1` is an environment-variable alternative to the
    // `--warn-only` flag (which is what the CI workflow passes).
    if std::env::var("GEM_BENCH_GUARD_WARN_ONLY").is_ok_and(|v| v == "1") {
        warn_only = true;
    }
    let [baseline, current] = paths.as_slice() else {
        eprintln!(
            "usage: bench_guard <baseline.json> <current.json> [--threshold 0.25] [--warn-only]"
        );
        return ExitCode::FAILURE;
    };
    run(baseline, current, threshold, warn_only)
}
