//! Figure 3: ablation of Gem's feature combinations (D, S, C, D+S, C+S, D+C, D+C+S) on the
//! fine-grained WDC and GDS corpora. The seven variants are the `"ablation"` slice of the
//! standard [`gem_bench::standard_registry`], named by their feature labels.

use gem_bench::{bench_corpus_config, fmt3, run_on_dataset, save_records, standard_registry};
use gem_data::{gds, wdc, Granularity};
use gem_eval::{ExperimentRecord, ResultTable};

fn paper_value(label: &str, dataset: &str) -> Option<f64> {
    let (wdc_v, gds_v): (f64, f64) = match label {
        "D" => (0.02, 0.30),
        "S" => (0.14, 0.39),
        "C" => (0.37, 0.79),
        "D+S" => (0.15, 0.45),
        "C+S" => (0.11, 0.40),
        "D+C" => (0.40, 0.81),
        "D+C+S" => (0.43, 0.82),
        _ => return None,
    };
    match dataset {
        "WDC" => Some(wdc_v),
        "GDS" => Some(gds_v),
        _ => None,
    }
}

fn main() {
    let config = bench_corpus_config();
    let registry = standard_registry();
    println!(
        "Regenerating Figure 3 at scale {:.2} (feature-combination ablation, fine-grained GT)\n",
        config.scale
    );
    let datasets = [("WDC", wdc(&config)), ("GDS", gds(&config))];

    let mut table = ResultTable::new(
        "Figure 3: average precision per feature combination",
        vec![
            "features".into(),
            "WDC (measured)".into(),
            "WDC (paper)".into(),
            "GDS (measured)".into(),
            "GDS (paper)".into(),
        ],
    );
    let mut records = Vec::new();
    for entry in registry.tagged("ablation") {
        let label = entry.name();
        let mut row = vec![label.to_string()];
        for (name, dataset) in &datasets {
            let precision = run_on_dataset(&registry, label, dataset, Granularity::Fine);
            row.push(fmt3(precision));
            let paper = paper_value(label, name);
            row.push(paper.map(|p| format!("{p:.2}")).unwrap_or_default());
            records.push(ExperimentRecord {
                experiment: "Figure 3".into(),
                setting: (*name).into(),
                method: label.to_string(),
                metric: "average precision".into(),
                paper_value: paper,
                measured_value: precision,
            });
            eprintln!("  {label:<6} on {name}: {precision:.3}");
        }
        table.push_row(row);
    }
    println!("{}", table.to_markdown());
    save_records(&records);
}
