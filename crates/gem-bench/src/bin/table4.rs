//! Table 4: downstream clustering of Gem vs. Squashing_SOM embeddings with TableDC and SDCN
//! on GDS and WDC, reported as ARI and ACC for headers-only, values-only and
//! headers + values settings. The embedders are fetched from the standard
//! [`gem_bench::standard_registry`] (tag `"table4"` marks the comparison pair); per
//! setting, the registry's Gem feature-set variants select the evidence types.

use gem_bench::{
    bench_corpus_config, embed_with, fmt3, header_embeddings, save_records, standard_registry,
    strip_headers, to_gem_columns,
};
use gem_cluster::{DeepClustering, Sdcn, TableDc};
use gem_core::MethodRegistry;
use gem_data::{gds, wdc, Dataset, Granularity};
use gem_eval::{adjusted_rand_index, clustering_accuracy, ExperimentRecord, ResultTable};
use gem_numeric::Matrix;

/// The three input settings of Table 4.
const SETTINGS: [&str; 3] = ["Headers only", "Values only", "Headers + Values"];

fn gem_embeddings(registry: &MethodRegistry, dataset: &Dataset, setting: &str) -> Matrix {
    let columns = to_gem_columns(dataset);
    // The registry's Gem variants cover the three evidence settings: the headers-only
    // reference, the numeric-only variant of Table 2 and the full pipeline.
    let variant = match setting {
        "Headers only" => "SBERT (headers only)",
        "Values only" => "Gem (D+S)",
        _ => "Gem",
    };
    embed_with(registry, variant, &columns, None)
}

fn squashing_som_embeddings(
    registry: &MethodRegistry,
    dataset: &Dataset,
    setting: &str,
) -> Option<Matrix> {
    // Squashing_SOM has no header pathway, so the headers-only setting is undefined for it
    // (the paper leaves those cells blank).
    let columns = to_gem_columns(dataset);
    match setting {
        "Headers only" => None,
        "Values only" => Some(embed_with(
            registry,
            "Squashing_SOM",
            &strip_headers(&columns),
            None,
        )),
        _ => {
            // Headers + values: concatenate the SOM value embedding with the same header
            // embedding Gem uses, mirroring the paper's composition for the baseline.
            let values = embed_with(registry, "Squashing_SOM", &strip_headers(&columns), None);
            let headers = header_embeddings(dataset);
            Some(values.hconcat(&headers).expect("same rows"))
        }
    }
}

fn main() {
    let config = bench_corpus_config();
    let registry = standard_registry();
    println!(
        "Regenerating Table 4 at scale {:.2} (deep clustering of Gem vs Squashing_SOM embeddings)\n",
        config.scale
    );
    let datasets = [("GDS", gds(&config)), ("WDC", wdc(&config))];

    let mut table = ResultTable::new(
        "Table 4: clustering results (ARI / ACC)",
        vec![
            "setting".into(),
            "embeddings".into(),
            "dataset".into(),
            "TableDC ARI".into(),
            "TableDC ACC".into(),
            "SDCN ARI".into(),
            "SDCN ACC".into(),
        ],
    );
    let mut records = Vec::new();

    for setting in SETTINGS {
        for entry in registry.tagged("table4") {
            let emb_name = entry.name();
            for (ds_name, dataset) in &datasets {
                let embeddings = if emb_name == "Gem" {
                    Some(gem_embeddings(&registry, dataset, setting))
                } else {
                    squashing_som_embeddings(&registry, dataset, setting)
                };
                let Some(embeddings) = embeddings else {
                    table.push_row(vec![
                        setting.into(),
                        emb_name.into(),
                        (*ds_name).into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                    ]);
                    continue;
                };
                let truth = Granularity::Fine.label_indices(dataset);
                let k = Granularity::Fine.n_clusters(dataset);
                let tabledc_labels = TableDc::new(k).cluster(&embeddings);
                let sdcn_labels = Sdcn::new(k).cluster(&embeddings);
                let t_ari = adjusted_rand_index(&tabledc_labels, &truth);
                let t_acc = clustering_accuracy(&tabledc_labels, &truth);
                let s_ari = adjusted_rand_index(&sdcn_labels, &truth);
                let s_acc = clustering_accuracy(&sdcn_labels, &truth);
                table.push_row(vec![
                    setting.into(),
                    emb_name.into(),
                    (*ds_name).into(),
                    fmt3(t_ari),
                    fmt3(t_acc),
                    fmt3(s_ari),
                    fmt3(s_acc),
                ]);
                for (algo, ari, acc) in [("TableDC", t_ari, t_acc), ("SDCN", s_ari, s_acc)] {
                    records.push(ExperimentRecord {
                        experiment: "Table 4".into(),
                        setting: format!("{ds_name} / {setting} / {emb_name}"),
                        method: algo.into(),
                        metric: "ARI".into(),
                        paper_value: None,
                        measured_value: ari,
                    });
                    records.push(ExperimentRecord {
                        experiment: "Table 4".into(),
                        setting: format!("{ds_name} / {setting} / {emb_name}"),
                        method: algo.into(),
                        metric: "ACC".into(),
                        paper_value: None,
                        measured_value: acc,
                    });
                }
                eprintln!(
                    "  {setting:<17} {emb_name:<14} {ds_name}: TableDC ARI {t_ari:.3} ACC {t_acc:.3} | SDCN ARI {s_ari:.3} ACC {s_acc:.3}"
                );
            }
        }
    }
    println!("{}", table.to_markdown());
    save_records(&records);
}
