//! Table 3: average precision with headers + values on the fine-grained GDS and WDC
//! corpora. The method set — SBERT-substitute headers only, the three supervised `_SC`
//! baselines, Gem (D+S) and the three Gem D+S+C composition variants — is the `"table3"`
//! slice of the standard [`gem_bench::standard_registry`].

use gem_bench::{bench_corpus_config, fmt3, run_on_dataset, save_records, standard_registry};
use gem_data::{gds, wdc, Granularity};
use gem_eval::{ExperimentRecord, ResultTable};

fn paper_value(method: &str, dataset: &str) -> Option<f64> {
    let (wdc_v, gds_v): (f64, f64) = match method {
        "SBERT (headers only)" => (0.37, 0.79),
        "Pythagoras_SC" => (0.02, 0.01),
        "Sherlock_SC" => (0.002, 0.27),
        "Sato_SC" => (0.003, 0.25),
        "Gem (D+S)" => (0.14, 0.45),
        "Gem D+S+C (aggregation)" => (0.41, 0.81),
        "Gem D+S+C (AE)" => (0.40, 0.81),
        "Gem D+S+C (concatenation)" => (0.43, 0.82),
        _ => return None,
    };
    match dataset {
        "WDC" => Some(wdc_v),
        "GDS" => Some(gds_v),
        _ => None,
    }
}

fn main() {
    let config = bench_corpus_config();
    let registry = standard_registry();
    println!(
        "Regenerating Table 3 at scale {:.2} (headers + values, fine-grained GT)\n",
        config.scale
    );
    let datasets = [("WDC", wdc(&config)), ("GDS", gds(&config))];

    let mut table = ResultTable::new(
        "Table 3: average precision, headers + values (fine-grained GDS and WDC)",
        vec![
            "method".into(),
            "WDC (measured)".into(),
            "WDC (paper)".into(),
            "GDS (measured)".into(),
            "GDS (paper)".into(),
        ],
    );
    let mut records = Vec::new();
    for entry in registry.tagged("table3") {
        let method = entry.name();
        let mut row = vec![method.to_string()];
        for (name, dataset) in &datasets {
            let precision = run_on_dataset(&registry, method, dataset, Granularity::Fine);
            row.push(fmt3(precision));
            let paper = paper_value(method, name);
            row.push(paper.map(|p| format!("{p}")).unwrap_or_default());
            records.push(ExperimentRecord {
                experiment: "Table 3".into(),
                setting: (*name).into(),
                method: method.into(),
                metric: "average precision".into(),
                paper_value: paper,
                measured_value: precision,
            });
            eprintln!("  {method:>28} on {name}: {precision:.3}");
        }
        table.push_row(row);
    }
    println!("{}", table.to_markdown());
    save_records(&records);
}
