//! Table 3: average precision with headers + values on the fine-grained GDS and WDC
//! corpora: SBERT-substitute headers only, Pythagoras_SC, Sherlock_SC, Sato_SC, Gem (D+S),
//! and Gem D+S+C with aggregation / autoencoder / concatenation composition.

use gem_bench::{bench_corpus_config, fmt3, run_gem, run_supervised, save_records};
use gem_core::{Composition, FeatureSet};
use gem_data::{gds, wdc, Dataset, Granularity};
use gem_eval::{ExperimentRecord, ResultTable};

fn paper_value(method: &str, dataset: &str) -> Option<f64> {
    let (wdc_v, gds_v): (f64, f64) = match method {
        "SBERT (headers only)" => (0.37, 0.79),
        "Pythagoras_SC" => (0.02, 0.01),
        "Sherlock_SC" => (0.002, 0.27),
        "Sato_SC" => (0.003, 0.25),
        "Gem (D+S)" => (0.14, 0.45),
        "Gem D+S+C (aggregation)" => (0.41, 0.81),
        "Gem D+S+C (AE)" => (0.40, 0.81),
        "Gem D+S+C (concatenation)" => (0.43, 0.82),
        _ => return None,
    };
    match dataset {
        "WDC" => Some(wdc_v),
        "GDS" => Some(gds_v),
        _ => None,
    }
}

fn run_method(method: &str, dataset: &Dataset) -> f64 {
    match method {
        "SBERT (headers only)" => run_gem(
            dataset,
            FeatureSet::c(),
            Composition::Concatenation,
            Granularity::Fine,
        ),
        "Pythagoras_SC" | "Sherlock_SC" | "Sato_SC" => {
            run_supervised(method, dataset, Granularity::Fine)
        }
        "Gem (D+S)" => run_gem(
            dataset,
            FeatureSet::ds(),
            Composition::Concatenation,
            Granularity::Fine,
        ),
        "Gem D+S+C (aggregation)" => run_gem(
            dataset,
            FeatureSet::dsc(),
            Composition::Aggregation,
            Granularity::Fine,
        ),
        "Gem D+S+C (AE)" => run_gem(
            dataset,
            FeatureSet::dsc(),
            Composition::autoencoder(),
            Granularity::Fine,
        ),
        "Gem D+S+C (concatenation)" => run_gem(
            dataset,
            FeatureSet::dsc(),
            Composition::Concatenation,
            Granularity::Fine,
        ),
        other => panic!("unknown Table 3 method {other}"),
    }
}

fn main() {
    let config = bench_corpus_config();
    println!(
        "Regenerating Table 3 at scale {:.2} (headers + values, fine-grained GT)\n",
        config.scale
    );
    let datasets = [("WDC", wdc(&config)), ("GDS", gds(&config))];

    let methods = [
        "SBERT (headers only)",
        "Pythagoras_SC",
        "Sherlock_SC",
        "Sato_SC",
        "Gem (D+S)",
        "Gem D+S+C (aggregation)",
        "Gem D+S+C (AE)",
        "Gem D+S+C (concatenation)",
    ];

    let mut table = ResultTable::new(
        "Table 3: average precision, headers + values (fine-grained GDS and WDC)",
        vec![
            "method".into(),
            "WDC (measured)".into(),
            "WDC (paper)".into(),
            "GDS (measured)".into(),
            "GDS (paper)".into(),
        ],
    );
    let mut records = Vec::new();
    for method in methods {
        let mut row = vec![method.to_string()];
        for (name, dataset) in &datasets {
            let precision = run_method(method, dataset);
            row.push(fmt3(precision));
            let paper = paper_value(method, name);
            row.push(paper.map(|p| format!("{p}")).unwrap_or_default());
            records.push(ExperimentRecord {
                experiment: "Table 3".into(),
                setting: (*name).into(),
                method: method.into(),
                metric: "average precision".into(),
                paper_value: paper,
                measured_value: precision,
            });
            eprintln!("  {method:>28} on {name}: {precision:.3}");
        }
        table.push_row(row);
    }
    println!("{}", table.to_markdown());
    save_records(&records);
}
