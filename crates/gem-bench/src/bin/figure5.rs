//! Figure 5: scalability — embedding-generation runtime of Gem, PLE, Squashing_GMM and the
//! KS statistic as the number of columns grows from 200 to 2000. Each point is the mean of
//! several repetitions, as in the paper. The method set is the `"figure5"` slice of the
//! standard [`gem_bench::standard_registry`].

use gem_bench::{
    bench_components, fmt3, save_records, standard_registry, strip_headers, timed, to_gem_columns,
};
use gem_data::{gds, CorpusConfig};
use gem_eval::{ExperimentRecord, ResultTable};

fn main() {
    let repetitions: usize = std::env::var("GEM_BENCH_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let column_counts = [200usize, 600, 1000, 1400, 1800, 2000];
    let registry = standard_registry();
    let methods: Vec<String> = registry
        .tagged("figure5")
        .map(|m| m.name().to_string())
        .collect();
    let components = bench_components();
    println!(
        "Regenerating Figure 5 (runtime vs number of columns, mean of {repetitions} runs, {components} components)\n"
    );

    // One large pool of columns, truncated to each sweep size (as the paper scales the
    // number of columns of a single corpus).
    let pool = gds(&CorpusConfig {
        scale: 1.0,
        min_values: 60,
        max_values: 120,
        seed: 13,
    });

    let mut headers = vec!["# columns".to_string()];
    headers.extend(methods.iter().map(|m| format!("{m} (s)")));
    let mut table = ResultTable::new("Figure 5: embedding runtime in seconds", headers);
    let mut records = Vec::new();

    for &n in &column_counts {
        let dataset = pool.truncated(n);
        let columns = strip_headers(&to_gem_columns(&dataset));
        let mut row = vec![n.to_string()];
        for method in &methods {
            let entry = registry.require(method).expect("registered method");
            let mut total = 0.0;
            for _ in 0..repetitions {
                let (result, secs) = timed(|| entry.embed(&columns, None));
                result.unwrap_or_else(|e| panic!("{method}: {e}"));
                total += secs;
            }
            let mean = total / repetitions as f64;
            row.push(fmt3(mean));
            records.push(ExperimentRecord {
                experiment: "Figure 5".into(),
                setting: format!("{n} columns"),
                method: method.clone(),
                metric: "runtime seconds".into(),
                paper_value: None,
                measured_value: mean,
            });
            eprintln!("  {method:>15} @ {n:>4} columns: {mean:.3}s");
        }
        table.push_row(row);
    }
    println!("{}", table.to_markdown());
    println!(
        "Paper finding to compare against: KS grows linearly and is the most expensive; PLE is \
         nearly flat; Gem and Squashing_GMM grow sub-linearly."
    );
    save_records(&records);
}
