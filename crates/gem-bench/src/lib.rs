//! # gem-bench
//!
//! Experiment runners that regenerate every table and figure of the Gem paper, plus the
//! micro-benchmarks behind the scalability analysis.
//!
//! Each table/figure has a binary (`cargo run -p gem-bench --release --bin table2`, etc.)
//! that builds the relevant synthetic corpora, runs the methods enumerated by the
//! [`standard_registry`] (Gem, its variants and all eight baselines behind the unified
//! `gem_core::MethodRegistry`), prints the paper-shaped table and appends
//! paper-vs-measured records to `results/experiments.json`. Method fan-out across
//! threads is handled by `gem-parallel` through
//! [`gem_core::MethodRegistry::embed_all_tagged`].
//!
//! The binaries accept three environment variables:
//!
//! * `GEM_BENCH_SCALE` — fraction of the paper-sized corpora to generate (default `0.12`;
//!   `1.0` regenerates the full Table 1 sizes and takes correspondingly longer),
//! * `GEM_BENCH_COMPONENTS` — number of Gaussian components (default `50`, the paper's
//!   setting; smaller values speed up quick runs),
//! * `GEM_NUM_THREADS` — worker-thread cap for the parallel paths (`1` forces the
//!   sequential fallback).

#![deny(missing_docs)]
#![warn(clippy::all)]

use gem_baselines::register_baselines;
use gem_core::{GemColumn, GemConfig, GemEmbedder, MethodRegistry};
use gem_data::{Column, CorpusConfig, Dataset, Granularity};
use gem_eval::{evaluate_retrieval, ExperimentRecord, RetrievalScores};
use gem_gmm::GmmConfig;
use gem_numeric::Matrix;
use std::path::PathBuf;
use std::time::Instant;

/// Corpus scale for the quick experiment runs (override with `GEM_BENCH_SCALE`).
pub fn bench_scale() -> f64 {
    std::env::var("GEM_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.12)
}

/// Number of Gaussian components for the quick experiment runs (override with
/// `GEM_BENCH_COMPONENTS`).
pub fn bench_components() -> usize {
    std::env::var("GEM_BENCH_COMPONENTS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(50)
}

/// Corpus configuration used by the experiment binaries.
pub fn bench_corpus_config() -> CorpusConfig {
    CorpusConfig::default().with_scale(bench_scale())
}

/// A Gem configuration sized for the experiment binaries: the paper's tolerance and
/// initialisation, a reduced restart count so the quick runs finish in seconds, and the
/// given component count.
pub fn gem_config_with_components(components: usize) -> GemConfig {
    GemConfig {
        gmm: GmmConfig::with_components(components)
            .restarts(3)
            .with_seed(17),
        ..GemConfig::default()
    }
}

/// A Gem configuration sized for the experiment binaries with the component count from
/// [`bench_components`].
pub fn bench_gem_config() -> GemConfig {
    gem_config_with_components(bench_components())
}

/// Build the method registry every experiment binary consumes: the eight baselines of the
/// paper followed by the Gem method family, all sized by `components`. On top of the
/// method-property tags set at registration (`"numeric-only"`, `"supervised"`, `"gem"`,
/// `"ablation"`, ...), this attaches the experiment-membership tags the binaries filter
/// on:
///
/// * `"table2"` — the numeric-only comparison (baselines then Gem (D+S), the table's row
///   order),
/// * `"table3"` — the headers+values comparison on fine-grained WDC/GDS,
/// * `"table4"` — the embedders whose output is clustered with TableDC/SDCN,
/// * `"figure5"` / `"scalability"` — the runtime sweep methods.
pub fn registry_with_components(components: usize) -> MethodRegistry {
    let mut registry = MethodRegistry::new();
    register_baselines(&mut registry, components);
    registry.register_gem_family(&gem_config_with_components(components));
    for name in [
        "Squashing_GMM",
        "Squashing_SOM",
        "PLE",
        "PAF",
        "KS statistic",
        "Gem (D+S)",
    ] {
        registry.add_tag(name, "table2");
    }
    for name in [
        "SBERT (headers only)",
        "Pythagoras_SC",
        "Sherlock_SC",
        "Sato_SC",
        "Gem (D+S)",
        "Gem D+S+C (aggregation)",
        "Gem D+S+C (AE)",
        "Gem D+S+C (concatenation)",
    ] {
        registry.add_tag(name, "table3");
    }
    for name in ["Gem", "Squashing_SOM"] {
        registry.add_tag(name, "table4");
    }
    for name in ["Gem (D+S)", "PLE", "Squashing_GMM", "KS statistic"] {
        registry.add_tag(name, "figure5");
        registry.add_tag(name, "scalability");
    }
    registry
}

/// The standard registry sized by [`bench_components`].
pub fn standard_registry() -> MethodRegistry {
    registry_with_components(bench_components())
}

/// Path of the JSON file collecting paper-vs-measured records (`results/experiments.json`
/// at the workspace root).
pub fn results_path() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let root = manifest
        .parent()
        .and_then(|p| p.parent())
        .map(|p| p.to_path_buf())
        .unwrap_or(manifest);
    root.join("results").join("experiments.json")
}

/// Persist experiment records, creating the results directory when needed. Failures are
/// reported on stderr but never abort an experiment run.
pub fn save_records(records: &[ExperimentRecord]) {
    let path = results_path();
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Err(e) = ExperimentRecord::append_all(&path, records) {
        eprintln!("warning: could not persist experiment records: {e}");
    }
}

/// Convert a `gem-data` dataset into the `GemColumn` form consumed by the embedders.
pub fn to_gem_columns(dataset: &Dataset) -> Vec<GemColumn> {
    dataset
        .columns
        .iter()
        .map(|c: &Column| GemColumn::new(c.values.clone(), c.header.clone()))
        .collect()
}

/// Strip the headers from columns (numeric-only settings).
pub fn strip_headers(columns: &[GemColumn]) -> Vec<GemColumn> {
    columns
        .iter()
        .map(|c| GemColumn::values_only(c.values.clone()))
        .collect()
}

/// Run a registered method by name and return its embedding matrix. Supervised methods
/// are trained on the dataset's coarse labels, the paper's `_SC` protocol; pass them via
/// `coarse_labels`.
///
/// # Panics
/// Panics on an unknown method name or a failed embedding — experiment binaries treat
/// both as fatal configuration errors.
pub fn embed_with(
    registry: &MethodRegistry,
    method: &str,
    columns: &[GemColumn],
    coarse_labels: Option<&[String]>,
) -> Matrix {
    registry
        .require(method)
        .unwrap_or_else(|e| panic!("{e}"))
        .embed(columns, coarse_labels)
        .unwrap_or_else(|e| panic!("{method}: {e}"))
}

/// Evaluate an embedding matrix against a dataset's ground truth at the given granularity.
pub fn score(dataset: &Dataset, embeddings: &Matrix, granularity: Granularity) -> RetrievalScores {
    evaluate_retrieval(embeddings, &granularity.labels(dataset))
}

/// Run a registered method on a dataset (headers included, supervised methods trained on
/// coarse labels) and return the average precision at the given granularity.
pub fn run_on_dataset(
    registry: &MethodRegistry,
    method: &str,
    dataset: &Dataset,
    granularity: Granularity,
) -> f64 {
    let columns = to_gem_columns(dataset);
    let coarse = dataset.coarse_labels();
    let embeddings = embed_with(registry, method, &columns, Some(&coarse));
    score(dataset, &embeddings, granularity).average_precision
}

/// A headers-only embedding of a dataset (the SBERT substitute), used by Table 4's
/// "headers + values" composition for the Squashing_SOM baseline.
pub fn header_embeddings(dataset: &Dataset) -> Matrix {
    let columns = to_gem_columns(dataset);
    GemEmbedder::new(bench_gem_config())
        .embed(&columns, gem_core::FeatureSet::c())
        .expect("header embedding")
        .matrix
}

/// Time a closure, returning `(result, seconds)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Format a float with three decimals for table cells.
pub fn fmt3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gem_data::sato_tables;

    fn tiny_dataset() -> Dataset {
        sato_tables(&CorpusConfig {
            scale: 0.02,
            min_values: 20,
            max_values: 40,
            seed: 3,
        })
    }

    #[test]
    fn conversion_preserves_headers_and_values() {
        let d = tiny_dataset();
        let cols = to_gem_columns(&d);
        assert_eq!(cols.len(), d.n_columns());
        assert_eq!(cols[0].values, d.columns[0].values);
        assert_eq!(cols[0].header, d.columns[0].header);
        let stripped = strip_headers(&cols);
        assert!(stripped.iter().all(|c| c.header.is_empty()));
    }

    #[test]
    fn registry_lists_gem_and_all_eight_baselines() {
        let registry = registry_with_components(6);
        let names = registry.names();
        for expected in [
            "Gem",
            "Squashing_GMM",
            "Squashing_SOM",
            "PLE",
            "PAF",
            "KS statistic",
            "Pythagoras_SC",
            "Sherlock_SC",
            "Sato_SC",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
        // Table 2's row order falls out of the registration order.
        let table2: Vec<&str> = registry.tagged("table2").map(|m| m.name()).collect();
        assert_eq!(
            table2,
            vec![
                "Squashing_GMM",
                "Squashing_SOM",
                "PLE",
                "PAF",
                "KS statistic",
                "Gem (D+S)"
            ]
        );
        assert_eq!(registry.tagged("table3").count(), 8);
        assert_eq!(registry.tagged("figure5").count(), 4);
        assert_eq!(registry.tagged("supervised").count(), 3);
    }

    #[test]
    fn every_numeric_method_runs_on_a_tiny_corpus() {
        let d = tiny_dataset();
        let cols = strip_headers(&to_gem_columns(&d));
        let registry = registry_with_components(6);
        for entry in registry.tagged("table2") {
            let emb = entry.method().embed(&cols, None).unwrap();
            assert_eq!(emb.rows(), cols.len(), "{}", entry.name());
            assert!(emb.all_finite(), "{}", entry.name());
            let s = score(&d, &emb, Granularity::Coarse);
            assert!(
                (0.0..=1.0).contains(&s.average_precision),
                "{}: {}",
                entry.name(),
                s.average_precision
            );
        }
    }

    #[test]
    fn parallel_method_fanout_matches_serial() {
        let d = tiny_dataset();
        let cols = strip_headers(&to_gem_columns(&d));
        let registry = registry_with_components(4);
        let serial = registry.embed_all_tagged("figure5", &cols, None, false);
        let parallel = registry.embed_all_tagged("figure5", &cols, None, true);
        assert_eq!(serial.len(), 4);
        for ((n1, r1), (n2, r2)) in serial.iter().zip(parallel.iter()) {
            assert_eq!(n1, n2);
            assert_eq!(r1.as_ref().unwrap(), r2.as_ref().unwrap());
        }
    }

    #[test]
    fn supervised_methods_score_through_the_registry() {
        let d = tiny_dataset();
        let registry = registry_with_components(4);
        let p = run_on_dataset(&registry, "Sherlock_SC", &d, Granularity::Coarse);
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn gem_runner_produces_probability_range_scores() {
        let d = tiny_dataset();
        let registry = registry_with_components(6);
        let p = run_on_dataset(&registry, "Gem (D+S)", &d, Granularity::Coarse);
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn timed_measures_elapsed_time() {
        let (value, secs) = timed(|| (0..10_000).map(|i| i as f64).sum::<f64>());
        assert!(value > 0.0);
        assert!(secs >= 0.0);
    }

    #[test]
    fn helpers_and_paths() {
        assert!(results_path().ends_with("results/experiments.json"));
        assert_eq!(fmt3(0.123456), "0.123");
        assert!(bench_scale() > 0.0);
        assert!(bench_components() > 0);
    }
}
