//! # gem-bench
//!
//! Experiment runners that regenerate every table and figure of the Gem paper, plus the
//! Criterion micro-benchmarks behind the scalability analysis.
//!
//! Each table/figure has a binary (`cargo run -p gem-bench --release --bin table2`, etc.)
//! that builds the relevant synthetic corpora, runs Gem and the baselines, prints the
//! paper-shaped table and appends paper-vs-measured records to `results/experiments.json`.
//!
//! The binaries accept two environment variables:
//!
//! * `GEM_BENCH_SCALE` — fraction of the paper-sized corpora to generate (default `0.12`;
//!   `1.0` regenerates the full Table 1 sizes and takes correspondingly longer),
//! * `GEM_BENCH_COMPONENTS` — number of Gaussian components (default `50`, the paper's
//!   setting; smaller values speed up quick runs).

#![deny(missing_docs)]
#![warn(clippy::all)]

use gem_baselines::{
    ColumnEmbedder, KsEncoder, PeriodicEncoder, PiecewiseLinearEncoder, PythagorasSc, SatoSc,
    SherlockSc, SquashingGmm, SquashingSom, SupervisedColumnEmbedder,
};
use gem_core::{Composition, FeatureSet, GemColumn, GemConfig, GemEmbedder};
use gem_data::{Column, CorpusConfig, Dataset, Granularity};
use gem_eval::{evaluate_retrieval, ExperimentRecord, RetrievalScores};
use gem_gmm::GmmConfig;
use gem_numeric::Matrix;
use std::path::PathBuf;
use std::time::Instant;

/// Names of the numeric-only methods of Table 2, in the table's row order.
pub const NUMERIC_ONLY_METHODS: [&str; 6] = [
    "Squashing_GMM",
    "Squashing_SOM",
    "PLE",
    "PAF",
    "KS statistic",
    "Gem (D+S)",
];

/// Corpus scale for the quick experiment runs (override with `GEM_BENCH_SCALE`).
pub fn bench_scale() -> f64 {
    std::env::var("GEM_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.12)
}

/// Number of Gaussian components for the quick experiment runs (override with
/// `GEM_BENCH_COMPONENTS`).
pub fn bench_components() -> usize {
    std::env::var("GEM_BENCH_COMPONENTS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(50)
}

/// Corpus configuration used by the experiment binaries.
pub fn bench_corpus_config() -> CorpusConfig {
    CorpusConfig::default().with_scale(bench_scale())
}

/// A Gem configuration sized for the experiment binaries: the paper's tolerance and
/// initialisation, a reduced restart count so the quick runs finish in seconds, and the
/// component count from [`bench_components`].
pub fn bench_gem_config() -> GemConfig {
    GemConfig {
        gmm: GmmConfig::with_components(bench_components())
            .restarts(3)
            .with_seed(17),
        ..GemConfig::default()
    }
}

/// Path of the JSON file collecting paper-vs-measured records (`results/experiments.json`
/// at the workspace root).
pub fn results_path() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let root = manifest
        .parent()
        .and_then(|p| p.parent())
        .map(|p| p.to_path_buf())
        .unwrap_or(manifest);
    root.join("results").join("experiments.json")
}

/// Persist experiment records, creating the results directory when needed. Failures are
/// reported on stderr but never abort an experiment run.
pub fn save_records(records: &[ExperimentRecord]) {
    let path = results_path();
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Err(e) = ExperimentRecord::append_all(&path, records) {
        eprintln!("warning: could not persist experiment records: {e}");
    }
}

/// Convert a `gem-data` dataset into the `GemColumn` form consumed by the embedders.
pub fn to_gem_columns(dataset: &Dataset) -> Vec<GemColumn> {
    dataset
        .columns
        .iter()
        .map(|c: &Column| GemColumn::new(c.values.clone(), c.header.clone()))
        .collect()
}

/// Strip the headers from columns (numeric-only settings).
pub fn strip_headers(columns: &[GemColumn]) -> Vec<GemColumn> {
    columns
        .iter()
        .map(|c| GemColumn::values_only(c.values.clone()))
        .collect()
}

/// Run one of the numeric-only methods of Table 2 by name and return its embedding matrix.
///
/// # Panics
/// Panics on an unknown method name.
pub fn run_numeric_method(method: &str, columns: &[GemColumn], n_components: usize) -> Matrix {
    match method {
        "Squashing_GMM" => SquashingGmm::new(n_components).embed_columns(columns),
        "Squashing_SOM" => SquashingSom::new(n_components).embed_columns(columns),
        "PLE" => PiecewiseLinearEncoder::new(n_components).embed_columns(columns),
        "PAF" => PeriodicEncoder::new(n_components).embed_columns(columns),
        "KS statistic" => KsEncoder.embed_columns(columns),
        "Gem (D+S)" => {
            let config = GemConfig {
                gmm: GmmConfig::with_components(n_components).restarts(3).with_seed(17),
                ..GemConfig::default()
            };
            GemEmbedder::new(config)
                .embed(columns, FeatureSet::ds())
                .expect("numeric-only embedding")
                .matrix
        }
        other => panic!("unknown numeric-only method {other}"),
    }
}

/// Evaluate an embedding matrix against a dataset's ground truth at the given granularity.
pub fn score(dataset: &Dataset, embeddings: &Matrix, granularity: Granularity) -> RetrievalScores {
    evaluate_retrieval(embeddings, &granularity.labels(dataset))
}

/// Run a Gem feature-set/composition configuration on a dataset and return the average
/// precision at the given granularity.
pub fn run_gem(
    dataset: &Dataset,
    features: FeatureSet,
    composition: Composition,
    granularity: Granularity,
) -> f64 {
    let columns = to_gem_columns(dataset);
    let config = GemConfig {
        composition,
        ..bench_gem_config()
    };
    let embedding = GemEmbedder::new(config)
        .embed(&columns, features)
        .expect("gem embedding");
    score(dataset, &embedding.matrix, granularity).average_precision
}

/// Run a supervised `_SC` baseline (trained on coarse labels, as in the paper) and return
/// its average precision against the requested granularity.
pub fn run_supervised(
    method: &str,
    dataset: &Dataset,
    granularity: Granularity,
) -> f64 {
    let columns = to_gem_columns(dataset);
    let coarse = dataset.coarse_labels();
    let embeddings = match method {
        "Sherlock_SC" => SherlockSc::default().fit_embed(&columns, &coarse),
        "Sato_SC" => SatoSc::default().fit_embed(&columns, &coarse),
        "Pythagoras_SC" => PythagorasSc::default().fit_embed(&columns, &coarse),
        other => panic!("unknown supervised method {other}"),
    };
    score(dataset, &embeddings, granularity).average_precision
}

/// Time a closure, returning `(result, seconds)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Format a float with three decimals for table cells.
pub fn fmt3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gem_data::sato_tables;

    fn tiny_dataset() -> Dataset {
        sato_tables(&CorpusConfig {
            scale: 0.02,
            min_values: 20,
            max_values: 40,
            seed: 3,
        })
    }

    #[test]
    fn conversion_preserves_headers_and_values() {
        let d = tiny_dataset();
        let cols = to_gem_columns(&d);
        assert_eq!(cols.len(), d.n_columns());
        assert_eq!(cols[0].values, d.columns[0].values);
        assert_eq!(cols[0].header, d.columns[0].header);
        let stripped = strip_headers(&cols);
        assert!(stripped.iter().all(|c| c.header.is_empty()));
    }

    #[test]
    fn every_numeric_method_runs_on_a_tiny_corpus() {
        let d = tiny_dataset();
        let cols = strip_headers(&to_gem_columns(&d));
        for method in NUMERIC_ONLY_METHODS {
            let emb = run_numeric_method(method, &cols, 6);
            assert_eq!(emb.rows(), cols.len(), "{method}");
            assert!(emb.all_finite(), "{method}");
            let s = score(&d, &emb, Granularity::Coarse);
            assert!(
                (0.0..=1.0).contains(&s.average_precision),
                "{method}: {}",
                s.average_precision
            );
        }
    }

    #[test]
    fn gem_runner_produces_probability_range_scores() {
        let d = tiny_dataset();
        let p = run_gem(
            &d,
            FeatureSet::ds(),
            Composition::Concatenation,
            Granularity::Coarse,
        );
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn timed_measures_elapsed_time() {
        let (value, secs) = timed(|| (0..10_000).map(|i| i as f64).sum::<f64>());
        assert!(value > 0.0);
        assert!(secs >= 0.0);
    }

    #[test]
    fn helpers_and_paths() {
        assert!(results_path().ends_with("results/experiments.json"));
        assert_eq!(fmt3(0.123456), "0.123");
        assert!(bench_scale() > 0.0);
        assert!(bench_components() > 0);
        assert_eq!(NUMERIC_ONLY_METHODS.len(), 6);
    }
}
