//! Criterion version of the Figure 5 scalability sweep: embedding-generation time of Gem,
//! PLE, Squashing_GMM and the KS statistic as the number of columns grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gem_bench::{run_numeric_method, strip_headers, to_gem_columns};
use gem_data::{gds, CorpusConfig};

fn bench_scalability(criterion: &mut Criterion) {
    let pool = gds(&CorpusConfig {
        scale: 0.35,
        min_values: 40,
        max_values: 80,
        seed: 13,
    });
    let mut group = criterion.benchmark_group("scalability_columns");
    group.sample_size(10);
    for &n in &[100usize, 300, 600] {
        let dataset = pool.truncated(n);
        let columns = strip_headers(&to_gem_columns(&dataset));
        for method in ["Gem (D+S)", "PLE", "Squashing_GMM", "KS statistic"] {
            group.bench_with_input(BenchmarkId::new(method, n), &columns, |b, cols| {
                b.iter(|| run_numeric_method(method, cols, 10))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_scalability);
criterion_main!(benches);
