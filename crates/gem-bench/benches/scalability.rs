//! Criterion version of the Figure 5 scalability sweep: embedding-generation time of Gem,
//! PLE, Squashing_GMM and the KS statistic as the number of columns grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gem_bench::{registry_with_components, strip_headers, to_gem_columns};
use gem_data::{gds, CorpusConfig};

fn bench_scalability(criterion: &mut Criterion) {
    let pool = gds(&CorpusConfig {
        scale: 0.35,
        min_values: 40,
        max_values: 80,
        seed: 13,
    });
    let registry = registry_with_components(10);
    let mut group = criterion.benchmark_group("scalability_columns");
    group.sample_size(10);
    for &n in &[100usize, 300, 600] {
        let dataset = pool.truncated(n);
        let columns = strip_headers(&to_gem_columns(&dataset));
        for entry in registry.tagged("scalability") {
            group.bench_with_input(BenchmarkId::new(entry.name(), n), &columns, |b, cols| {
                b.iter(|| entry.method().embed(cols, None).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_scalability);
criterion_main!(benches);
