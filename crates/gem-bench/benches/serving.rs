//! Serving benchmark: what the fit/transform split and the fingerprint-keyed model cache
//! buy under repeated traffic against the same corpus.
//!
//! Four measurements on the 300-column scalability corpus (the same corpus the
//! `scalability` bench uses for Gem (D+S)):
//!
//! * `cold_fit` — a fresh engine per iteration: every request pays the EM fit (the
//!   pre-split behaviour of `GemEmbedder::embed`),
//! * `warm_hit` — a pre-warmed engine: every request is a cache hit and only pays the
//!   transform,
//! * `warm_hit_batch16` — sixteen warm requests grouped into one batch, the
//!   per-request cost of saturated serving,
//! * `warm_start_disk` — a fresh engine per iteration over a pre-populated
//!   `ModelStore`: the request misses memory, rehydrates the model from disk (no EM
//!   re-fit) and transforms — the cost of the first request after a process restart.
//! * `remote_round_trip` — one embed-by-handle request over a real loopback TCP
//!   connection to a `GemServer` (16 query columns): the serving protocol's wire
//!   overhead (JSON-line encode/decode, bit-pattern payloads, socket hop) on top of
//!   the warm transform.
//! * `binary_round_trip` / `json_round_trip` — the same warm embed at a 10× payload
//!   (160 query columns) over the negotiated binary codec (raw little-endian IEEE-754
//!   value bytes, streamed response rows) versus forced JSON (hex-string bit patterns,
//!   one response line). The gap is what the negotiated wire format buys; the binary
//!   number should sit within 2× of the in-process `warm_hit` even at this payload.
//! * `lockstep_round_trip` — a 16-query *mixed* batch (one slow cold fit + sixteen
//!   cheap single-query embeds) driven the only way the PR 4 client could: one request
//!   in flight at a time, so the embeds queue behind the fit (head-of-line blocking).
//!   Measured: time until the last embed response.
//! * `pipelined_round_trip` — the *same* mixed batch with all 17 requests in flight at
//!   once: the executor pool answers out of order, the embeds overtake the
//!   still-running fit, and the last embed lands in milliseconds. The ratio to
//!   `lockstep_round_trip` is the head-of-line-blocking win of the multiplexed
//!   protocol.
//!
//! Snapshot with `GEM_CRITERION_JSON=BENCH_serving.json cargo bench -p gem-bench --bench
//! serving`; the committed baseline lives at the repo root next to
//! `BENCH_baseline.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gem_bench::{gem_config_with_components, strip_headers, to_gem_columns};
use gem_core::{FeatureSet, GemColumn, GemConfig, GemModel, MethodRegistry};
use gem_data::{gds, CorpusConfig};
use gem_serve::{BatchEngine, EmbedService, EngineRequest, GemClient, GemServer, ServedFrom};
use gem_store::{model_key, ModelStore};
use std::sync::Arc;

const N_COLUMNS: usize = 300;

fn corpus() -> Arc<Vec<GemColumn>> {
    // Identical generation to the scalability bench so the two snapshots are comparable.
    let pool = gds(&CorpusConfig {
        scale: 0.35,
        min_values: 40,
        max_values: 80,
        seed: 13,
    });
    Arc::new(strip_headers(&to_gem_columns(&pool.truncated(N_COLUMNS))))
}

fn bench_config() -> GemConfig {
    gem_config_with_components(10)
}

fn bench_serving(criterion: &mut Criterion) {
    let corpus = corpus();
    let request =
        || EngineRequest::corpus_only(bench_config(), FeatureSet::ds(), Arc::clone(&corpus));

    let mut group = criterion.benchmark_group("serving");
    group.sample_size(10);

    // Cold: a fresh cache per iteration, so every embed pays the EM fit.
    group.bench_function(BenchmarkId::new("cold_fit", N_COLUMNS), |b| {
        b.iter(|| {
            let engine = BatchEngine::new(4);
            let response = engine.run_one(request());
            assert!(response.embedding.is_ok() && !response.cache_hit);
            response
        })
    });

    // Warm: the model is cached once up front; each embed is transform-only.
    let warm_engine = BatchEngine::new(4);
    assert!(!warm_engine.run_one(request()).cache_hit);
    group.bench_function(BenchmarkId::new("warm_hit", N_COLUMNS), |b| {
        b.iter(|| {
            let response = warm_engine.run_one(request());
            assert!(response.embedding.is_ok() && response.cache_hit);
            response
        })
    });

    // Warm batch: sixteen requests against the cached model in one engine call
    // (per-request time = measured time / 16).
    let batch: Vec<EngineRequest> = (0..16).map(|_| request()).collect();
    group.bench_function(BenchmarkId::new("warm_hit_batch16", N_COLUMNS), |b| {
        b.iter(|| {
            let responses = warm_engine.run(&batch);
            assert!(responses.iter().all(|r| r.cache_hit));
            responses
        })
    });

    // Warm start from disk: the model snapshot is on disk (as after a restart); each
    // iteration uses a fresh engine whose memory tier is cold, so the request
    // rehydrates from the store — deserialisation + transform, no EM re-fit.
    let store_dir =
        std::env::temp_dir().join(format!("gem-serving-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let store = Arc::new(ModelStore::open(&store_dir).expect("bench store directory"));
    let model =
        GemModel::fit(&corpus, &bench_config(), FeatureSet::ds()).expect("bench corpus fits");
    store
        .save(
            model_key(&corpus, &bench_config(), FeatureSet::ds()),
            &model,
        )
        .expect("snapshot writes");
    drop(model);
    group.bench_function(BenchmarkId::new("warm_start_disk", N_COLUMNS), |b| {
        b.iter(|| {
            let engine = BatchEngine::new(4).with_store(Arc::clone(&store));
            let response = engine.run_one(request());
            assert!(response.embedding.is_ok());
            assert_eq!(response.served_from, ServedFrom::DiskStore);
            response
        })
    });
    let _ = std::fs::remove_dir_all(&store_dir);

    // Remote round trip: a real GemServer on an ephemeral loopback port; the model is
    // fitted once (by handle), then every iteration is one embed request–response over
    // the socket with 16 query columns. Compare against `warm_hit` to read off the
    // protocol's wire overhead.
    let service = EmbedService::new(MethodRegistry::with_gem(&bench_config()), 4);
    let server =
        GemServer::bind(Arc::new(service), ("127.0.0.1", 0)).expect("bind loopback server");
    let server_handle = server.handle().expect("server handle");
    let server_thread = std::thread::spawn(move || server.run());
    let mut client = GemClient::connect(server_handle.addr()).expect("connect");
    let fitted = client
        .fit(&corpus, &bench_config(), FeatureSet::ds())
        .expect("remote fit");
    let remote_queries: Vec<GemColumn> = corpus[..16].to_vec();
    assert_eq!(client.codec_name(), "binary", "client negotiates binary");
    group.bench_function(BenchmarkId::new("remote_round_trip", 16), |b| {
        b.iter(|| {
            let outcome = client
                .embed(fitted.handle, &remote_queries)
                .expect("remote embed");
            assert_eq!(outcome.matrix.rows(), 16);
            outcome
        })
    });

    // Codec face-off at a 10× payload: the same warm embed with 160 query columns,
    // once over the negotiated binary codec (raw value bytes, streamed rows) and once
    // over a connection forced to JSON (hex-string bit patterns, one line per
    // response). Same server, same model, same queries — the difference is pure
    // encode/decode and framing cost.
    let big_queries: Vec<GemColumn> = corpus[..160].to_vec();
    group.bench_function(BenchmarkId::new("binary_round_trip", 160), |b| {
        b.iter(|| {
            let outcome = client
                .embed(fitted.handle, &big_queries)
                .expect("binary embed");
            assert_eq!(outcome.matrix.rows(), 160);
            outcome
        })
    });
    let mut json_client = GemClient::connect_json(server_handle.addr()).expect("connect json");
    assert_eq!(json_client.codec_name(), "json", "forced-JSON client");
    group.bench_function(BenchmarkId::new("json_round_trip", 160), |b| {
        b.iter(|| {
            let outcome = json_client
                .embed(fitted.handle, &big_queries)
                .expect("json embed");
            assert_eq!(outcome.matrix.rows(), 160);
            outcome
        })
    });
    drop(json_client);

    // Lockstep vs pipelined on a 16-query MIXED batch: one deliberately slow cold Fit
    // (a heavier configuration, evicted after every iteration so it never becomes a
    // cache hit) plus sixteen cheap single-query embeds of the warm handle, all on one
    // connection. Measured: time until the LAST EMBED response arrives — the latency
    // this refactor exists to fix. The lockstep client cannot even send its first
    // embed until the fit returns (head-of-line blocking: fit + 16 round trips); the
    // pipelined client has all 17 requests in flight and its embeds overtake the fit
    // on the executor pool, so they complete in milliseconds while the fit is still
    // running (its response is drained outside the timed window).
    let single_queries: Vec<Vec<GemColumn>> =
        corpus[..16].iter().map(|c| vec![c.clone()]).collect();
    let slow_config = gem_config_with_components(12);
    group.bench_function(BenchmarkId::new("lockstep_round_trip", 16), |b| {
        b.iter_custom(|iters| {
            let mut total = std::time::Duration::ZERO;
            for _ in 0..iters {
                let started = std::time::Instant::now();
                let slow = client
                    .fit(&corpus, &slow_config, FeatureSet::ds())
                    .expect("lockstep slow fit");
                for queries in &single_queries {
                    let outcome = client
                        .embed(fitted.handle, queries)
                        .expect("lockstep embed");
                    assert_eq!(outcome.matrix.rows(), 1);
                }
                total += started.elapsed();
                assert_eq!(slow.served_from, ServedFrom::ColdFit);
                assert!(client.evict(slow.handle).expect("evict slow handle"));
            }
            total
        })
    });
    group.bench_function(BenchmarkId::new("pipelined_round_trip", 16), |b| {
        b.iter_custom(|iters| {
            let mut total = std::time::Duration::ZERO;
            for _ in 0..iters {
                let started = std::time::Instant::now();
                let fit_id = client
                    .send(gem_proto::RequestBody::Fit {
                        corpus: corpus.to_vec(),
                        config: slow_config.clone(),
                        features: FeatureSet::ds(),
                        composition: None,
                    })
                    .expect("pipelined slow fit send");
                for queries in &single_queries {
                    client
                        .send(gem_proto::RequestBody::Embed {
                            handle: fitted.handle.to_hex(),
                            queries: queries.clone(),
                        })
                        .expect("pipelined send");
                }
                let mut embeds_answered = 0;
                while embeds_answered < single_queries.len() {
                    let reply = client.recv_any().expect("pipelined recv");
                    if reply.id == fit_id {
                        continue; // the slow fit finishing early would end the timing
                    }
                    reply.outcome.expect("pipelined embed outcome");
                    embeds_answered += 1;
                }
                total += started.elapsed();
                // Drain the still-running fit and reset for the next iteration,
                // outside the timed window.
                while client.pending() > 0 {
                    client
                        .recv_any()
                        .expect("drain fit")
                        .outcome
                        .expect("fit ok");
                }
                let slow_handle = gem_serve::ModelHandle::from(model_key(
                    &corpus,
                    &slow_config,
                    FeatureSet::ds(),
                ));
                assert!(client.evict(slow_handle).expect("evict slow handle"));
            }
            total
        })
    });
    drop(client);
    server_handle.shutdown();
    server_thread
        .join()
        .expect("server thread")
        .expect("server run");

    group.finish();
}

criterion_group!(benches, bench_serving);
criterion_main!(benches);
