//! Serving benchmark: what the fit/transform split and the fingerprint-keyed model cache
//! buy under repeated traffic against the same corpus.
//!
//! Four measurements on the 300-column scalability corpus (the same corpus the
//! `scalability` bench uses for Gem (D+S)):
//!
//! * `cold_fit` — a fresh engine per iteration: every request pays the EM fit (the
//!   pre-split behaviour of `GemEmbedder::embed`),
//! * `warm_hit` — a pre-warmed engine: every request is a cache hit and only pays the
//!   transform,
//! * `warm_hit_batch16` — sixteen warm requests grouped into one batch, the
//!   per-request cost of saturated serving,
//! * `warm_start_disk` — a fresh engine per iteration over a pre-populated
//!   `ModelStore`: the request misses memory, rehydrates the model from disk (no EM
//!   re-fit) and transforms — the cost of the first request after a process restart.
//! * `remote_round_trip` — one embed-by-handle request over a real loopback TCP
//!   connection to a `GemServer` (16 query columns): the serving protocol's wire
//!   overhead (JSON-line encode/decode, bit-pattern payloads, socket hop) on top of
//!   the warm transform.
//!
//! Snapshot with `GEM_CRITERION_JSON=BENCH_serving.json cargo bench -p gem-bench --bench
//! serving`; the committed baseline lives at the repo root next to
//! `BENCH_baseline.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gem_bench::{gem_config_with_components, strip_headers, to_gem_columns};
use gem_core::{FeatureSet, GemColumn, GemConfig, GemModel, MethodRegistry};
use gem_data::{gds, CorpusConfig};
use gem_serve::{BatchEngine, EmbedService, EngineRequest, GemClient, GemServer, ServedFrom};
use gem_store::{model_key, ModelStore};
use std::sync::Arc;

const N_COLUMNS: usize = 300;

fn corpus() -> Arc<Vec<GemColumn>> {
    // Identical generation to the scalability bench so the two snapshots are comparable.
    let pool = gds(&CorpusConfig {
        scale: 0.35,
        min_values: 40,
        max_values: 80,
        seed: 13,
    });
    Arc::new(strip_headers(&to_gem_columns(&pool.truncated(N_COLUMNS))))
}

fn bench_config() -> GemConfig {
    gem_config_with_components(10)
}

fn bench_serving(criterion: &mut Criterion) {
    let corpus = corpus();
    let request =
        || EngineRequest::corpus_only(bench_config(), FeatureSet::ds(), Arc::clone(&corpus));

    let mut group = criterion.benchmark_group("serving");
    group.sample_size(10);

    // Cold: a fresh cache per iteration, so every embed pays the EM fit.
    group.bench_function(BenchmarkId::new("cold_fit", N_COLUMNS), |b| {
        b.iter(|| {
            let engine = BatchEngine::new(4);
            let response = engine.run_one(request());
            assert!(response.embedding.is_ok() && !response.cache_hit);
            response
        })
    });

    // Warm: the model is cached once up front; each embed is transform-only.
    let warm_engine = BatchEngine::new(4);
    assert!(!warm_engine.run_one(request()).cache_hit);
    group.bench_function(BenchmarkId::new("warm_hit", N_COLUMNS), |b| {
        b.iter(|| {
            let response = warm_engine.run_one(request());
            assert!(response.embedding.is_ok() && response.cache_hit);
            response
        })
    });

    // Warm batch: sixteen requests against the cached model in one engine call
    // (per-request time = measured time / 16).
    let batch: Vec<EngineRequest> = (0..16).map(|_| request()).collect();
    group.bench_function(BenchmarkId::new("warm_hit_batch16", N_COLUMNS), |b| {
        b.iter(|| {
            let responses = warm_engine.run(&batch);
            assert!(responses.iter().all(|r| r.cache_hit));
            responses
        })
    });

    // Warm start from disk: the model snapshot is on disk (as after a restart); each
    // iteration uses a fresh engine whose memory tier is cold, so the request
    // rehydrates from the store — deserialisation + transform, no EM re-fit.
    let store_dir =
        std::env::temp_dir().join(format!("gem-serving-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let store = Arc::new(ModelStore::open(&store_dir).expect("bench store directory"));
    let model =
        GemModel::fit(&corpus, &bench_config(), FeatureSet::ds()).expect("bench corpus fits");
    store
        .save(
            model_key(&corpus, &bench_config(), FeatureSet::ds()),
            &model,
        )
        .expect("snapshot writes");
    drop(model);
    group.bench_function(BenchmarkId::new("warm_start_disk", N_COLUMNS), |b| {
        b.iter(|| {
            let engine = BatchEngine::new(4).with_store(Arc::clone(&store));
            let response = engine.run_one(request());
            assert!(response.embedding.is_ok());
            assert_eq!(response.served_from, ServedFrom::DiskStore);
            response
        })
    });
    let _ = std::fs::remove_dir_all(&store_dir);

    // Remote round trip: a real GemServer on an ephemeral loopback port; the model is
    // fitted once (by handle), then every iteration is one embed request–response over
    // the socket with 16 query columns. Compare against `warm_hit` to read off the
    // protocol's wire overhead.
    let service = EmbedService::new(MethodRegistry::with_gem(&bench_config()), 4);
    let server =
        GemServer::bind(Arc::new(service), ("127.0.0.1", 0)).expect("bind loopback server");
    let server_handle = server.handle().expect("server handle");
    let server_thread = std::thread::spawn(move || server.run());
    let mut client = GemClient::connect(server_handle.addr()).expect("connect");
    let fitted = client
        .fit(&corpus, &bench_config(), FeatureSet::ds())
        .expect("remote fit");
    let remote_queries: Vec<GemColumn> = corpus[..16].to_vec();
    group.bench_function(BenchmarkId::new("remote_round_trip", 16), |b| {
        b.iter(|| {
            let outcome = client
                .embed(fitted.handle, &remote_queries)
                .expect("remote embed");
            assert_eq!(outcome.matrix.rows(), 16);
            outcome
        })
    });
    drop(client);
    server_handle.shutdown();
    server_thread
        .join()
        .expect("server thread")
        .expect("server run");

    group.finish();
}

criterion_group!(benches, bench_serving);
criterion_main!(benches);
