//! Fit hot-path microbenchmarks: the fused EM kernels and the incremental
//! `fit_update` path, measured at the layer each optimisation lives.
//!
//! Kernel level (one 4096-point column, 10 components — the shape `GemModel::fit`
//! hands the GMM for a realistic column):
//!
//! * `estep_pass` — the fused E-step: per-component log-density tables, log-sum-exp
//!   normalisation, and the nk/mean accumulators, all in one row-major sweep over the
//!   flat responsibility matrix,
//! * `mstep_pass` — the row-major variance pass over the responsibilities the E-step
//!   left behind,
//! * `fused_iteration` — one full EM iteration (both passes plus the parameter
//!   update), the unit the fit loop repeats until convergence.
//!
//! Model level (100-column corpus grown by 100% / 300%):
//!
//! * `refit` — fitting the grown corpus from scratch: the full EM restart schedule
//!   over every column, old and new,
//! * `fit_update` — folding only the *new* columns into the already-fitted parent:
//!   frozen components, signature recomputation for the growth only, no EM. The
//!   ratio to `refit` is what incremental serving buys at that growth factor.
//!
//! Snapshot with `GEM_CRITERION_JSON=BENCH_fit.json cargo bench -p gem-bench --bench
//! fit_kernels`; the committed baseline lives at the repo root.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gem_bench::gem_config_with_components;
use gem_core::{FeatureSet, GemColumn, GemModel};
use gem_gmm::bench_kernels::{estep_pass, fused_iteration, mstep_pass, BenchScratch};
use gem_gmm::{GmmConfig, UnivariateGmm};

const N_POINTS: usize = 4096;
const N_COMPONENTS: usize = 10;
const BASE_COLUMNS: usize = 100;

/// A deterministic bimodal column: the kind of value distribution the paper's GMM
/// signature is built for, with enough spread that EM does real work.
fn kernel_data() -> Vec<f64> {
    (0..N_POINTS)
        .map(|i| {
            let cluster = (i % 3) as f64 * 40.0;
            cluster + (i % 17) as f64 * 0.75 + (i % 5) as f64 * 0.2
        })
        .collect()
}

fn synthetic_columns(count: usize, offset: usize) -> Vec<GemColumn> {
    (0..count)
        .map(|c| {
            let base = ((offset + c) * 13 % 700) as f64;
            GemColumn::new(
                (0..60)
                    .map(|i| base + (i % 11) as f64 * 1.5 + ((offset + c) % 7) as f64 * 0.3)
                    .collect(),
                format!("col_{}", offset + c),
            )
        })
        .collect()
}

fn bench_kernels(criterion: &mut Criterion) {
    let data = kernel_data();
    let config = GmmConfig::with_components(N_COMPONENTS)
        .restarts(2)
        .with_seed(17);
    let model = UnivariateGmm::fit(&data, &config).expect("kernel data fits");
    let data_var = {
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        data.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / data.len() as f64
    };
    let var_floor = (config.covariance_floor * data_var).max(1e-9);

    let mut group = criterion.benchmark_group("fit");
    group.sample_size(20);

    let mut scratch = BenchScratch::default();
    group.bench_function(BenchmarkId::new("estep_pass", N_POINTS), |b| {
        b.iter(|| estep_pass(&model, &data, &mut scratch))
    });

    // The M-step pass reads the responsibilities the E-step left in the scratch; it
    // never overwrites them, so one E-step outside the timer serves every iteration.
    estep_pass(&model, &data, &mut scratch);
    group.bench_function(BenchmarkId::new("mstep_pass", N_POINTS), |b| {
        b.iter(|| mstep_pass(&model, &data, &mut scratch))
    });

    group.bench_function(BenchmarkId::new("fused_iteration", N_POINTS), |b| {
        b.iter(|| {
            let mut weights = model.weights().to_vec();
            let mut means = model.means().to_vec();
            let mut variances = model.variances().to_vec();
            fused_iteration(
                &data,
                &mut weights,
                &mut means,
                &mut variances,
                data_var,
                var_floor,
                &mut scratch,
            )
        })
    });

    // Incremental growth: fit a parent once, then compare absorbing `factor - 1`
    // times the corpus as new columns against refitting the grown corpus cold.
    let gem_config = gem_config_with_components(N_COMPONENTS);
    let base = synthetic_columns(BASE_COLUMNS, 0);
    let parent = GemModel::fit(&base, &gem_config, FeatureSet::ds()).expect("base corpus fits");
    for factor in [2usize, 4] {
        let growth = synthetic_columns(BASE_COLUMNS * (factor - 1), BASE_COLUMNS);
        let mut grown = base.clone();
        grown.extend(growth.iter().cloned());
        let label = format!("{factor}x");
        group.bench_function(BenchmarkId::new("refit", &label), |b| {
            b.iter(|| GemModel::fit(&grown, &gem_config, FeatureSet::ds()).expect("refit"))
        });
        group.bench_function(BenchmarkId::new("fit_update", &label), |b| {
            b.iter(|| {
                let updated = parent.fit_update(&growth).expect("fit_update");
                assert_eq!(updated.n_fit_columns(), grown.len());
                updated
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
