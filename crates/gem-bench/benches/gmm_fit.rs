//! Criterion micro-benchmarks for the EM fit and the signature mechanism — the two
//! components that dominate Gem's runtime in the Figure 5 scalability analysis.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gem_core::{signature_matrix, stack_values};
use gem_gmm::{GmmConfig, UnivariateGmm};

fn synthetic_columns(n_columns: usize, values_per_column: usize) -> Vec<Vec<f64>> {
    (0..n_columns)
        .map(|c| {
            (0..values_per_column)
                .map(|i| {
                    let base = (c % 7) as f64 * 50.0;
                    base + ((i * 37 + c * 11) % 100) as f64 * 0.3
                })
                .collect()
        })
        .collect()
}

fn bench_em_fit(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("gmm_em_fit");
    group.sample_size(10);
    for &n_points in &[2_000usize, 10_000] {
        for &k in &[10usize, 50] {
            let data: Vec<f64> = synthetic_columns(n_points / 100, 100)
                .into_iter()
                .flatten()
                .collect();
            let config = GmmConfig::with_components(k).restarts(1).with_seed(3);
            group.bench_with_input(
                BenchmarkId::new(format!("k{k}"), n_points),
                &data,
                |b, data| b.iter(|| UnivariateGmm::fit(data, &config).unwrap()),
            );
        }
    }
    group.finish();
}

fn bench_signature(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("gmm_signature");
    group.sample_size(10);
    let columns = synthetic_columns(200, 100);
    let stacked = stack_values(&columns);
    let gmm = UnivariateGmm::fit(
        &stacked,
        &GmmConfig::with_components(20).restarts(1).with_seed(3),
    )
    .unwrap();
    group.bench_function("serial_200_columns", |b| {
        b.iter(|| signature_matrix(&gmm, &columns, false))
    });
    group.bench_function("parallel_200_columns", |b| {
        b.iter(|| signature_matrix(&gmm, &columns, true))
    });
    group.finish();
}

criterion_group!(benches, bench_em_fit, bench_signature);
criterion_main!(benches);
