//! Criterion benchmarks comparing the per-corpus embedding cost of Gem and every
//! numeric-only baseline on a fixed synthetic corpus (the per-method slice of Figure 5),
//! plus an ablation of two Gem design choices called out in DESIGN.md: serial vs. parallel
//! signatures and 1 vs. multiple EM restarts.

use criterion::{criterion_group, criterion_main, Criterion};
use gem_bench::{registry_with_components, strip_headers, to_gem_columns};
use gem_core::{FeatureSet, GemConfig, GemEmbedder};
use gem_data::{sato_tables, CorpusConfig};
use gem_gmm::GmmConfig;

fn corpus() -> Vec<gem_core::GemColumn> {
    let dataset = sato_tables(&CorpusConfig {
        scale: 0.05,
        min_values: 40,
        max_values: 80,
        seed: 9,
    });
    strip_headers(&to_gem_columns(&dataset))
}

fn bench_methods(criterion: &mut Criterion) {
    let columns = corpus();
    let registry = registry_with_components(10);
    let mut group = criterion.benchmark_group("embedding_methods");
    group.sample_size(10);
    for entry in registry.tagged("table2") {
        group.bench_function(entry.name(), |b| {
            b.iter(|| entry.method().embed(&columns, None).unwrap())
        });
    }
    group.finish();
}

fn bench_gem_ablations(criterion: &mut Criterion) {
    let columns = corpus();
    let mut group = criterion.benchmark_group("gem_design_ablations");
    group.sample_size(10);
    for (label, parallel, restarts) in [
        ("serial_1_restart", false, 1usize),
        ("parallel_1_restart", true, 1),
        ("parallel_5_restarts", true, 5),
    ] {
        let config = GemConfig {
            gmm: GmmConfig::with_components(10)
                .restarts(restarts)
                .with_seed(5),
            parallel,
            ..GemConfig::default()
        };
        group.bench_function(label, |b| {
            b.iter(|| {
                GemEmbedder::new(config.clone())
                    .embed(&columns, FeatureSet::ds())
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_methods, bench_gem_ablations);
criterion_main!(benches);
