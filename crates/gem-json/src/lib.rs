//! # gem-json
//!
//! A small JSON library: a [`Json`] value type, a recursive-descent parser and compact /
//! pretty writers. The workspace persists datasets, experiment records and benchmark
//! baselines as JSON; the build runs offline, so `serde`/`serde_json` are not available
//! and the handful of (de)serialisable types implement explicit `to_json` / `from_json`
//! conversions against this crate instead of deriving them.
//!
//! Design notes:
//! * Objects preserve insertion order (a `Vec` of pairs, not a map) so written files are
//!   stable and diffs stay readable.
//! * Numbers are `f64`, matching what every persisted type stores. Non-finite numbers
//!   serialise as `null`, mirroring `serde_json`'s behaviour.

#![deny(missing_docs)]
#![warn(clippy::all)]

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Json)>),
}

/// Parse or conversion error with a byte offset into the input.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input where the error was detected (0 for conversion errors).
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl JsonError {
    /// A conversion (not parse) error, e.g. a missing object field.
    pub fn conversion(message: impl Into<String>) -> Self {
        JsonError {
            message: message.into(),
            offset: 0,
        }
    }
}

/// Types convertible to a [`Json`] value.
pub trait ToJson {
    /// Convert to a JSON value.
    fn to_json(&self) -> Json;
}

/// Types constructible from a [`Json`] value.
pub trait FromJson: Sized {
    /// Build from a JSON value.
    ///
    /// # Errors
    /// Returns a [`JsonError`] when the value has the wrong shape.
    fn from_json(value: &Json) -> Result<Self, JsonError>;
}

impl Json {
    /// Parse a JSON document.
    ///
    /// # Errors
    /// Returns a [`JsonError`] with the byte offset of the first syntax error.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.parse_value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(value)
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object (ordered key/value pairs), if it is one.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_object()
            .and_then(|o| o.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// Mandatory object field, as a conversion error when absent.
    ///
    /// # Errors
    /// Returns a [`JsonError`] when the field is missing.
    pub fn field(&self, key: &str) -> Result<&Json, JsonError> {
        self.get(key)
            .ok_or_else(|| JsonError::conversion(format!("missing field `{key}`")))
    }

    /// Mandatory string field.
    ///
    /// # Errors
    /// Returns a [`JsonError`] when the field is missing or not a string.
    pub fn str_field(&self, key: &str) -> Result<String, JsonError> {
        self.field(key)?
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| JsonError::conversion(format!("field `{key}` is not a string")))
    }

    /// Mandatory numeric field.
    ///
    /// # Errors
    /// Returns a [`JsonError`] when the field is missing or not a number.
    pub fn num_field(&self, key: &str) -> Result<f64, JsonError> {
        self.field(key)?
            .as_f64()
            .ok_or_else(|| JsonError::conversion(format!("field `{key}` is not a number")))
    }

    /// The value as an unsigned integer, if it is a number that holds one exactly
    /// (no fractional part, in range, and within `f64`'s 2^53 exact-integer window).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n.fract() != 0.0 || !(0.0..=MAX_EXACT_INT).contains(&n) {
            return None;
        }
        Some(n as u64)
    }

    /// Mandatory unsigned-integer field (see [`Json::as_u64`] for what qualifies).
    ///
    /// # Errors
    /// Returns a [`JsonError`] when the field is missing, not a number, or not an
    /// exactly representable unsigned integer.
    pub fn u64_field(&self, key: &str) -> Result<u64, JsonError> {
        self.field(key)?.as_u64().ok_or_else(|| {
            JsonError::conversion(format!("field `{key}` is not an unsigned integer"))
        })
    }

    /// Serialise without whitespace.
    pub fn to_compact_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serialise with two-space indentation.
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Number(n) => {
                if n.is_finite() {
                    // `{}` on f64 prints the shortest representation that round-trips.
                    out.push_str(&format!("{n}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::String(s) => write_escaped(out, s),
            Json::Array(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, indent, d);
                });
            }
            Json::Object(pairs) => {
                write_seq(out, indent, depth, '{', '}', pairs.len(), |out, i, d| {
                    let (k, v) = &pairs[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, d);
                });
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_compact_string())
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut write_item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        write_item(out, i, depth + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", byte as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.parse_keyword("null", Json::Null),
            Some(b't') => self.parse_keyword("true", Json::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(self.err(&format!("unexpected character `{}`", c as char))),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn parse_number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid UTF-8 in number"))?;
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| self.err("invalid number"))
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            // Swallow a maximal run of plain ASCII in one push. Anything else —
            // validating from the current position to the END of the input per
            // character, say — goes quadratic in the document size: a corpus of
            // half a million bit-pattern hex strings would re-scan megabytes for
            // every single digit.
            let run_start = self.pos;
            while matches!(self.bytes.get(self.pos), Some(&b) if b != b'"' && b != b'\\' && b < 0x80)
            {
                self.pos += 1;
            }
            if self.pos > run_start {
                // The run is pure ASCII, hence valid UTF-8 by construction.
                out.push_str(
                    std::str::from_utf8(&self.bytes[run_start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?,
                );
            }
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let cp = self.parse_unicode_escape()?;
                            out.push(cp);
                            continue; // parse_unicode_escape advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // One multi-byte code point: a UTF-8 character is at most four
                    // bytes, so decode from a bounded window.
                    let end = self.bytes.len().min(self.pos + 4);
                    let window = &self.bytes[self.pos..end];
                    let prefix = match std::str::from_utf8(window) {
                        Ok(s) => s,
                        Err(e) if e.valid_up_to() > 0 => {
                            std::str::from_utf8(&window[..e.valid_up_to()])
                                .map_err(|_| self.err("invalid UTF-8 in string"))?
                        }
                        Err(_) => return Err(self.err("invalid UTF-8 in string")),
                    };
                    let Some(c) = prefix.chars().next() else {
                        return Err(self.err("invalid UTF-8 in string"));
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_unicode_escape(&mut self) -> Result<char, JsonError> {
        // self.pos currently points at the `u`.
        let read_hex4 = |p: &mut Parser<'a>| -> Result<u32, JsonError> {
            p.pos += 1; // consume `u`
            if p.pos + 4 > p.bytes.len() {
                return Err(p.err("truncated \\u escape"));
            }
            let hex = std::str::from_utf8(&p.bytes[p.pos..p.pos + 4])
                .map_err(|_| p.err("invalid \\u escape"))?;
            let cp = u32::from_str_radix(hex, 16).map_err(|_| p.err("invalid \\u escape"))?;
            p.pos += 4;
            Ok(cp)
        };
        let hi = read_hex4(self)?;
        if (0xD800..0xDC00).contains(&hi) {
            // Surrogate pair: expect `\uXXXX` low half.
            if self.peek() == Some(b'\\') {
                self.pos += 1;
                if self.peek() == Some(b'u') {
                    let lo = read_hex4(self)?;
                    if (0xDC00..0xE000).contains(&lo) {
                        let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                        return char::from_u32(cp).ok_or_else(|| self.err("invalid surrogate"));
                    }
                }
            }
            return Err(self.err("unpaired surrogate in \\u escape"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))
    }

    fn parse_array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(pairs));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }
}

/// Convenience: build an object from pairs.
pub fn object(pairs: Vec<(&str, Json)>) -> Json {
    Json::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Convenience: a string value.
pub fn string(s: impl Into<String>) -> Json {
    Json::String(s.into())
}

/// Convenience: a numeric value.
pub fn number(n: f64) -> Json {
    Json::Number(n)
}

/// Convenience: an optional number (`null` when `None`).
pub fn opt_number(n: Option<f64>) -> Json {
    match n {
        Some(v) => Json::Number(v),
        None => Json::Null,
    }
}

/// The largest integer `f64` represents exactly (2^53). JSON numbers are `f64`-backed
/// here, so integers beyond this window would silently lose precision.
const MAX_EXACT_INT: f64 = 9_007_199_254_740_992.0;

/// An unsigned integer as a JSON number. This is the **one audited integer↔number
/// seam** for codecs that otherwise ban `as f64` casts (counters, dimensions, version
/// fields): the conversion is exact for every value up to 2^53, and values beyond that
/// window saturate to it rather than rounding to an unpredictable neighbour. Floats
/// themselves never go through here — they cross serialization boundaries as
/// [`bits`] patterns.
pub fn u64_number(n: u64) -> Json {
    const MAX: u64 = 1 << 53;
    Json::Number(if n > MAX { MAX_EXACT_INT } else { n as f64 })
}

/// Convenience: an optional unsigned integer (`null` when `None`).
pub fn opt_u64_number(n: Option<u64>) -> Json {
    match n {
        Some(v) => u64_number(v),
        None => Json::Null,
    }
}

/// Convenience: an array of numbers.
pub fn number_array(values: &[f64]) -> Json {
    Json::Array(values.iter().map(|&v| Json::Number(v)).collect())
}

/// Bit-exact `f64` encoding: the IEEE-754 bit pattern as a 16-digit lower-case hex
/// string. Decimal shortest-round-trip formatting is exact for finite values but maps
/// every non-finite value to `null`; the bit encoding preserves *every* `f64` — NaN
/// payloads, infinities and `-0.0` included — which is what model-weight persistence
/// needs to guarantee bit-identical outputs after a reload.
pub fn bits(value: f64) -> Json {
    Json::String(format!("{:016x}", value.to_bits()))
}

/// Decode a [`bits`]-encoded `f64`.
///
/// # Errors
/// Returns a [`JsonError`] when the value is not a 16-digit hex string.
pub fn as_bits(value: &Json) -> Result<f64, JsonError> {
    let text = value
        .as_str()
        .ok_or_else(|| JsonError::conversion("expected a hex-encoded f64 bit pattern"))?;
    if text.len() != 16 {
        return Err(JsonError::conversion(
            "f64 bit pattern must be exactly 16 hex digits",
        ));
    }
    u64::from_str_radix(text, 16)
        .map(f64::from_bits)
        .map_err(|_| JsonError::conversion("invalid hex in f64 bit pattern"))
}

/// Convenience: an array of bit-exact [`bits`]-encoded floats.
pub fn bits_array(values: &[f64]) -> Json {
    Json::Array(values.iter().map(|&v| bits(v)).collect())
}

/// Convenience: parse a JSON array of [`bits`]-encoded floats.
///
/// # Errors
/// Returns a [`JsonError`] when the value is not an array of 16-digit hex strings.
pub fn as_bits_array(value: &Json) -> Result<Vec<f64>, JsonError> {
    value
        .as_array()
        .ok_or_else(|| JsonError::conversion("expected an array of f64 bit patterns"))?
        .iter()
        .map(as_bits)
        .collect()
}

/// Convenience: parse a JSON array of numbers.
///
/// # Errors
/// Returns a [`JsonError`] when the value is not an array of numbers.
pub fn as_number_array(value: &Json) -> Result<Vec<f64>, JsonError> {
    value
        .as_array()
        .ok_or_else(|| JsonError::conversion("expected an array of numbers"))?
        .iter()
        .map(|v| {
            v.as_f64()
                .ok_or_else(|| JsonError::conversion("expected a number"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse(" false ").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("3.5").unwrap(), Json::Number(3.5));
        assert_eq!(Json::parse("-1e3").unwrap(), Json::Number(-1000.0));
        assert_eq!(
            Json::parse("\"hi\\nthere\"").unwrap(),
            Json::String("hi\nthere".into())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"a": [1, 2, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v.get("c").unwrap().as_str(), Some("x"));
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert!(a[2].get("b").unwrap().is_null());
    }

    #[test]
    fn round_trips_compact_and_pretty() {
        let v = object(vec![
            ("name", string("Gem (D+S)")),
            ("value", number(0.375)),
            ("tags", Json::Array(vec![string("a"), string("b")])),
            ("none", Json::Null),
            ("flag", Json::Bool(true)),
        ]);
        for text in [v.to_compact_string(), v.to_pretty_string()] {
            assert_eq!(Json::parse(&text).unwrap(), v);
        }
    }

    #[test]
    fn preserves_key_order() {
        let v = Json::parse(r#"{"z": 1, "a": 2}"#).unwrap();
        let keys: Vec<&str> = v
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, vec!["z", "a"]);
    }

    #[test]
    fn escapes_control_characters_and_quotes() {
        let v = Json::String("a\"b\\c\n\u{1}".into());
        let text = v.to_compact_string();
        assert_eq!(Json::parse(&text).unwrap(), v);
        assert!(text.contains("\\u0001"));
    }

    #[test]
    fn string_heavy_documents_parse_in_linear_time() {
        // Half a million bit-pattern hex strings is the shape of a serialized
        // corpus; a parser that re-validates the remaining input per string
        // character goes quadratic and never finishes on documents this size.
        let mut doc = String::from("[");
        for i in 0..500_000u64 {
            if i > 0 {
                doc.push(',');
            }
            doc.push_str(&format!("\"{i:016x}\""));
        }
        doc.push(']');
        let parsed = Json::parse(&doc).unwrap();
        assert_eq!(parsed.as_array().unwrap().len(), 500_000);
        assert_eq!(
            parsed.as_array().unwrap()[7].as_str(),
            Some("0000000000000007")
        );
        // The ASCII fast path leaves multi-byte decoding intact, mid-string too.
        assert_eq!(
            Json::parse("\"héllo\\n☃ snow\"").unwrap(),
            Json::String("héllo\n☃ snow".into())
        );
    }

    #[test]
    fn handles_unicode_escapes_and_surrogates() {
        assert_eq!(Json::parse(r#""é""#).unwrap(), Json::String("é".into()));
        assert_eq!(Json::parse(r#""😀""#).unwrap(), Json::String("😀".into()));
        assert!(Json::parse(r#""\ud83d""#).is_err());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "tru",
            "1.2.3",
            "\"abc",
            "[1] extra",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad} should fail");
        }
        let err = Json::parse("[1,]").unwrap_err();
        assert!(err.to_string().contains("byte"));
    }

    #[test]
    fn non_finite_numbers_serialize_as_null() {
        assert_eq!(Json::Number(f64::NAN).to_compact_string(), "null");
        assert_eq!(Json::Number(f64::INFINITY).to_compact_string(), "null");
    }

    #[test]
    fn bits_encoding_round_trips_every_f64_shape() {
        let specials = [
            0.0,
            -0.0,
            1.0,
            -1.5e-308,
            f64::MIN_POSITIVE,
            f64::MAX,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
            f64::from_bits(0x7ff8_0000_dead_beef), // NaN with a payload
        ];
        for v in specials {
            let text = bits(v).to_compact_string();
            let back = as_bits(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(v.to_bits(), back.to_bits(), "{v}");
        }
        let arr = bits_array(&specials);
        let text = arr.to_pretty_string();
        let back = as_bits_array(&Json::parse(&text).unwrap()).unwrap();
        for (a, b) in specials.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn bits_decoding_rejects_malformed_patterns() {
        assert!(as_bits(&Json::Number(1.0)).is_err());
        assert!(as_bits(&string("abc")).is_err());
        assert!(as_bits(&string("zzzzzzzzzzzzzzzz")).is_err());
        assert!(as_bits(&string("3ff00000000000000")).is_err()); // 17 digits
        assert!(as_bits_array(&string("3ff0000000000000")).is_err());
    }

    #[test]
    fn u64_codec_is_exact_within_the_f64_window() {
        for v in [0u64, 1, 42, (1 << 53) - 1, 1 << 53] {
            assert_eq!(u64_number(v).as_u64(), Some(v), "{v}");
        }
        // Beyond 2^53 the encoder saturates instead of rounding silently.
        assert_eq!(u64_number(u64::MAX), u64_number(1 << 53));
        assert_eq!(opt_u64_number(None), Json::Null);
        assert_eq!(opt_u64_number(Some(7)).as_u64(), Some(7));
        // Decoding rejects anything that is not an exact unsigned integer.
        assert_eq!(Json::Number(1.5).as_u64(), None);
        assert_eq!(Json::Number(-1.0).as_u64(), None);
        assert_eq!(string("3").as_u64(), None);
        let v = object(vec![("n", number(12.0)), ("x", number(0.5))]);
        assert_eq!(v.u64_field("n").unwrap(), 12);
        assert!(v.u64_field("x").is_err());
        assert!(v.u64_field("missing").is_err());
    }

    #[test]
    fn field_helpers_report_missing_fields() {
        let v = object(vec![("x", number(1.0))]);
        assert_eq!(v.num_field("x").unwrap(), 1.0);
        assert!(v.num_field("y").is_err());
        assert!(v.str_field("x").is_err());
        assert_eq!(
            as_number_array(&number_array(&[1.0, 2.0])).unwrap(),
            vec![1.0, 2.0]
        );
        assert_eq!(opt_number(None), Json::Null);
        assert_eq!(opt_number(Some(2.0)), Json::Number(2.0));
    }
}
