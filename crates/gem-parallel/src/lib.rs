//! # gem-parallel
//!
//! Data-parallel building blocks for the workspace's hot paths (per-column signature
//! computation, EM restarts, per-method benchmark fan-out).
//!
//! The production design calls for `rayon`, but this workspace builds in offline
//! environments where crates.io is unreachable, so this crate provides the needed subset
//! on top of `std::thread::scope`:
//!
//! * [`par_map`] — an ordered parallel map over a slice,
//! * [`par_map_indexed`] — the same with the item index passed to the closure,
//! * [`par_map_with_scratch`] / [`par_fill_rows_with_scratch`] — the same with a
//!   reusable per-thread scratch buffer, for hot paths whose per-item work needs large
//!   temporaries (EM responsibility matrices, log-density tables),
//! * [`join`] — run two closures potentially in parallel.
//!
//! Every entry point has a sequential fallback that produces **identical** output:
//! results are collected per input index, so ordering never depends on thread timing, and
//! the closures receive the same arguments either way. The fallback is taken when the
//! `threads` cargo feature is disabled, when `GEM_NUM_THREADS=1` is set, or when the
//! input is too small to amortise thread spawning.

#![deny(missing_docs)]
#![warn(clippy::all)]

/// Inputs shorter than this are always processed sequentially. The threshold is low
/// (scoped-thread spawning costs microseconds) because the workspace's parallel callers —
/// EM restarts, per-column signatures, per-method fan-out — all do heavy work per item;
/// callers with trivial per-item work should pass `parallel: false` instead.
pub const MIN_PARALLEL_ITEMS: usize = 2;

/// Parse a `GEM_NUM_THREADS` override: `Some(n)` for a positive integer, `None` for
/// anything else. Reporting malformed values is [`max_threads`]'s job, not this one's,
/// which keeps the policy unit-testable without touching the process environment.
fn parse_thread_override(raw: &str) -> Option<usize> {
    match raw.parse::<usize>() {
        Ok(n) if n >= 1 => Some(n),
        _ => None,
    }
}

/// The number of worker threads parallel operations will use: the `GEM_NUM_THREADS`
/// environment variable when set to a positive integer, otherwise
/// [`std::thread::available_parallelism`]. A malformed override (not a positive integer)
/// falls back to available parallelism after one warning on stderr. Returns 1 when the
/// `threads` feature is disabled.
pub fn max_threads() -> usize {
    #[cfg(not(feature = "threads"))]
    {
        1
    }
    #[cfg(feature = "threads")]
    {
        let override_threads = match std::env::var("GEM_NUM_THREADS") {
            Err(_) => None,
            Ok(raw) => {
                let parsed = parse_thread_override(&raw);
                if parsed.is_none() {
                    static WARN_ONCE: std::sync::Once = std::sync::Once::new();
                    WARN_ONCE.call_once(|| {
                        eprintln!(
                            "gem-parallel: ignoring malformed GEM_NUM_THREADS={raw:?} \
                             (expected a positive integer); using available parallelism"
                        );
                    });
                }
                parsed
            }
        };
        match override_threads {
            Some(n) => n,
            None => std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1),
        }
    }
}

/// Whether parallel execution is available at all (feature enabled and more than one
/// thread permitted).
pub fn parallelism_enabled() -> bool {
    max_threads() > 1
}

/// Map `f` over `items`, preserving order. Runs on multiple threads when `parallel` is
/// true, threads are available and the input is large enough; otherwise runs
/// sequentially. Both paths produce identical output for a deterministic `f`.
pub fn par_map<T, R, F>(items: &[T], parallel: bool, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_indexed(items, parallel, |_, item| f(item))
}

/// Like [`par_map`], but the closure also receives the item's index — useful when the
/// work depends on position (e.g. seeding one EM restart per index).
pub fn par_map_indexed<T, R, F>(items: &[T], parallel: bool, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let threads = max_threads().min(n.max(1));
    if !parallel || threads <= 1 || n < MIN_PARALLEL_ITEMS {
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }

    let chunk = n.div_ceil(threads);
    let mut blocks: Vec<Vec<R>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for (b, chunk_items) in items.chunks(chunk).enumerate() {
            let f = &f;
            handles.push(scope.spawn(move || {
                chunk_items
                    .iter()
                    .enumerate()
                    .map(|(i, x)| f(b * chunk + i, x))
                    .collect::<Vec<R>>()
            }));
        }
        for h in handles {
            blocks.push(h.join().expect("gem-parallel worker panicked"));
        }
    });
    blocks.into_iter().flatten().collect()
}

/// Like [`par_map`], but hands the closure a reusable per-thread scratch value created
/// by `init`: each worker thread calls `init()` once and reuses that scratch for every
/// item of its block (the sequential path uses a single scratch for all items). Callers
/// whose per-item work needs large temporaries — EM responsibility matrices, log-density
/// tables — pay one allocation set per thread instead of one per item.
///
/// The scratch is a workspace, not an accumulator: `f` must fully overwrite whatever
/// scratch state it reads, because the scratch arrives carrying whatever the previous
/// item on the same thread left behind. Under that contract, sequential and parallel
/// execution produce identical output for a deterministic `f`.
pub fn par_map_with_scratch<T, R, S, I, F>(items: &[T], parallel: bool, init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&T, &mut S) -> R + Sync,
{
    let n = items.len();
    let threads = max_threads().min(n.max(1));
    if !parallel || threads <= 1 || n < MIN_PARALLEL_ITEMS {
        let mut scratch = init();
        return items.iter().map(|x| f(x, &mut scratch)).collect();
    }

    let chunk = n.div_ceil(threads);
    let mut blocks: Vec<Vec<R>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for chunk_items in items.chunks(chunk) {
            let f = &f;
            let init = &init;
            handles.push(scope.spawn(move || {
                let mut scratch = init();
                chunk_items
                    .iter()
                    .map(|x| f(x, &mut scratch))
                    .collect::<Vec<R>>()
            }));
        }
        for h in handles {
            blocks.push(h.join().expect("gem-parallel worker panicked"));
        }
    });
    blocks.into_iter().flatten().collect()
}

/// Fill a row-major output buffer in place: `out` is `items.len() × width`, and `f`
/// writes the row for each item directly into its slot. Unlike [`par_map`], no
/// intermediate per-item allocations are made — each output cell is written exactly once,
/// which is what the per-column signature hot path needs (one row per column, written
/// straight into the embedding matrix).
///
/// Sequential and parallel execution produce identical output for a deterministic `f`:
/// the buffer is partitioned by item index, never by thread timing.
///
/// # Panics
/// Panics when `out.len() != items.len() * width`.
pub fn par_fill_rows<T, F>(items: &[T], out: &mut [f64], width: usize, parallel: bool, f: F)
where
    T: Sync,
    F: Fn(&T, &mut [f64]) + Sync,
{
    par_fill_rows_with_scratch(
        items,
        out,
        width,
        parallel,
        || (),
        |item, row, _| f(item, row),
    );
}

/// [`par_fill_rows`] with a reusable per-thread scratch (same contract as
/// [`par_map_with_scratch`]): the per-column signature fan-out uses this so each worker
/// thread reuses one set of log-table and responsibility-row buffers across all the
/// columns of its block instead of hitting the allocator per column.
///
/// # Panics
/// Panics when `out.len() != items.len() * width`.
pub fn par_fill_rows_with_scratch<T, S, I, F>(
    items: &[T],
    out: &mut [f64],
    width: usize,
    parallel: bool,
    init: I,
    f: F,
) where
    T: Sync,
    I: Fn() -> S + Sync,
    F: Fn(&T, &mut [f64], &mut S) + Sync,
{
    let n = items.len();
    assert_eq!(
        out.len(),
        n * width,
        "output buffer must be items × width ({} != {} × {})",
        out.len(),
        n,
        width
    );
    if n == 0 || width == 0 {
        return;
    }
    let threads = max_threads().min(n);
    if !parallel || threads <= 1 || n < MIN_PARALLEL_ITEMS {
        let mut scratch = init();
        for (item, row) in items.iter().zip(out.chunks_exact_mut(width)) {
            f(item, row, &mut scratch);
        }
        return;
    }
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        for (item_block, out_block) in items.chunks(chunk).zip(out.chunks_mut(chunk * width)) {
            let f = &f;
            let init = &init;
            scope.spawn(move || {
                let mut scratch = init();
                for (item, row) in item_block.iter().zip(out_block.chunks_exact_mut(width)) {
                    f(item, row, &mut scratch);
                }
            });
        }
    });
}

/// Run two closures, in parallel when possible, and return both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if !parallelism_enabled() {
        return (a(), b());
    }
    std::thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        let rb = hb.join().expect("gem-parallel join worker panicked");
        (ra, rb)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_and_sequential_maps_agree() {
        let items: Vec<u64> = (0..1000).collect();
        let seq = par_map(&items, false, |&x| x * x + 1);
        let par = par_map(&items, true, |&x| x * x + 1);
        assert_eq!(seq, par);
        assert_eq!(seq[10], 101);
    }

    #[test]
    fn order_is_preserved_under_uneven_work() {
        let items: Vec<usize> = (0..200).collect();
        // Make early items slow so late chunks finish first.
        let out = par_map(&items, true, |&x| {
            if x < 10 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            x
        });
        assert_eq!(out, items);
    }

    #[test]
    fn tiny_inputs_run_sequentially_but_correctly() {
        let items: Vec<u64> = (0..(MIN_PARALLEL_ITEMS as u64 - 1)).collect();
        let out = par_map(&items, true, |&x| x + 1);
        assert_eq!(out, items.iter().map(|&x| x + 1).collect::<Vec<_>>());
    }

    #[test]
    fn indexed_map_passes_matching_indices() {
        let items = vec!["a"; 100];
        let out = par_map_indexed(&items, true, |i, _| i);
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let items: Vec<u8> = vec![];
        assert!(par_map(&items, true, |&x| x).is_empty());
    }

    #[test]
    fn fill_rows_parallel_and_sequential_agree() {
        let items: Vec<f64> = (0..97).map(|i| i as f64).collect();
        let width = 3;
        let mut seq = vec![0.0; items.len() * width];
        let mut par = vec![0.0; items.len() * width];
        let f = |x: &f64, row: &mut [f64]| {
            row[0] = x + 1.0;
            row[1] = x * 2.0;
            row[2] = -x;
        };
        par_fill_rows(&items, &mut seq, width, false, f);
        par_fill_rows(&items, &mut par, width, true, f);
        assert_eq!(seq, par);
        assert_eq!(&seq[0..3], &[1.0, 0.0, -0.0]);
        assert_eq!(&seq[3..6], &[2.0, 2.0, -1.0]);
    }

    #[test]
    fn fill_rows_handles_degenerate_shapes() {
        let mut out: Vec<f64> = vec![];
        par_fill_rows::<f64, _>(&[], &mut out, 4, true, |_, _| unreachable!());
        par_fill_rows(&[1.0, 2.0], &mut out, 0, true, |_, _| unreachable!());
    }

    #[test]
    #[should_panic(expected = "items × width")]
    fn fill_rows_rejects_mismatched_buffer() {
        let mut out = vec![0.0; 5];
        par_fill_rows(&[1.0, 2.0], &mut out, 3, false, |_, _| {});
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 21 * 2, || "ok".to_string());
        assert_eq!(a, 42);
        assert_eq!(b, "ok");
    }

    #[test]
    fn max_threads_is_positive() {
        assert!(max_threads() >= 1);
    }

    #[test]
    fn thread_override_accepts_only_positive_integers() {
        assert_eq!(parse_thread_override("1"), Some(1));
        assert_eq!(parse_thread_override("8"), Some(8));
        // Everything else is malformed and falls back to available parallelism
        // (with a one-shot stderr warning from `max_threads`).
        for bad in ["0", "", "banana", "-2", " 4", "4 ", "3.5", "+8x"] {
            assert_eq!(parse_thread_override(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn scratch_map_parallel_and_sequential_agree() {
        let items: Vec<u64> = (0..500).collect();
        let work = |&x: &u64, scratch: &mut Vec<u64>| {
            // Fully overwrite the scratch before reading it, per the contract.
            scratch.clear();
            scratch.extend(0..=x % 7);
            scratch.iter().sum::<u64>() + x
        };
        let seq = par_map_with_scratch(&items, false, Vec::new, work);
        let par = par_map_with_scratch(&items, true, Vec::new, work);
        assert_eq!(seq, par);
        // Item 10: scratch holds 0..=10 % 7 = 0..=3, so the sum is 6.
        assert_eq!(seq[10], 10 + 6);
    }

    #[test]
    fn scratch_is_created_once_per_worker_not_per_item() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let items: Vec<u64> = (0..256).collect();
        let inits = AtomicUsize::new(0);
        let out = par_map_with_scratch(
            &items,
            true,
            || inits.fetch_add(1, Ordering::SeqCst),
            |&x, _| x,
        );
        assert_eq!(out, items);
        let created = inits.load(Ordering::SeqCst);
        assert!(created >= 1);
        assert!(
            created <= max_threads(),
            "expected at most one scratch per worker, got {created}"
        );

        inits.store(0, Ordering::SeqCst);
        par_map_with_scratch(
            &items,
            false,
            || inits.fetch_add(1, Ordering::SeqCst),
            |&x, _| x,
        );
        assert_eq!(inits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn scratch_fill_rows_parallel_and_sequential_agree() {
        let items: Vec<f64> = (0..131).map(|i| i as f64).collect();
        let width = 4;
        let f = |x: &f64, row: &mut [f64], scratch: &mut Vec<f64>| {
            scratch.clear();
            scratch.extend_from_slice(&[*x, x + 1.0]);
            row[0] = scratch[0];
            row[1] = scratch[1];
            row[2] = scratch.iter().sum();
            row[3] = -x;
        };
        let mut seq = vec![0.0; items.len() * width];
        let mut par = vec![0.0; items.len() * width];
        par_fill_rows_with_scratch(&items, &mut seq, width, false, Vec::new, f);
        par_fill_rows_with_scratch(&items, &mut par, width, true, Vec::new, f);
        assert_eq!(seq, par);
        assert_eq!(&seq[4..8], &[1.0, 2.0, 3.0, -1.0]);
    }
}
