//! The end-to-end Gem embedding pipeline (Algorithm 1 of the paper).

use crate::config::{FeatureSet, GemConfig};
use crate::model::GemModel;
use gem_gmm::{GmmError, UnivariateGmm};
use gem_numeric::Matrix;
use std::fmt;

/// One numeric column presented to the embedder: its raw values plus (optionally) its
/// header. This is deliberately independent of `gem-data`'s richer [`Column`] type so the
/// core library can be used on any source of columns.
#[derive(Debug, Clone, PartialEq)]
pub struct GemColumn {
    /// Numeric cell values.
    pub values: Vec<f64>,
    /// Column header (may be empty when no context is available).
    pub header: String,
}

impl GemColumn {
    /// Create a column with a header.
    pub fn new(values: Vec<f64>, header: impl Into<String>) -> Self {
        GemColumn {
            values,
            header: header.into(),
        }
    }

    /// Create a header-less column (numeric-only settings, e.g. GitTables).
    pub fn values_only(values: Vec<f64>) -> Self {
        GemColumn {
            values,
            header: String::new(),
        }
    }
}

/// Errors from the Gem pipeline and the unified method layer.
#[derive(Debug, Clone, PartialEq)]
pub enum GemError {
    /// No columns were provided.
    NoColumns,
    /// Every provided column was empty, so no GMM can be fitted.
    NoValues,
    /// The requested feature set selects nothing.
    EmptyFeatureSet,
    /// The underlying GMM fit failed.
    Gmm(GmmError),
    /// A supervised method was invoked without training labels (carries the method name).
    MissingLabels(String),
    /// A supervised method received a label slice whose length differs from the column
    /// count.
    LabelCountMismatch {
        /// Method name.
        method: String,
        /// Number of columns passed.
        columns: usize,
        /// Number of labels passed.
        labels: usize,
    },
    /// A method name was not found in the registry.
    UnknownMethod(String),
}

impl fmt::Display for GemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GemError::NoColumns => write!(f, "no columns to embed"),
            GemError::NoValues => write!(f, "all columns are empty; cannot fit a GMM"),
            GemError::EmptyFeatureSet => write!(f, "feature set selects no evidence type"),
            GemError::Gmm(e) => write!(f, "GMM fit failed: {e}"),
            GemError::MissingLabels(method) => {
                write!(f, "supervised method `{method}` needs training labels")
            }
            GemError::LabelCountMismatch {
                method,
                columns,
                labels,
            } => {
                write!(
                    f,
                    "supervised method `{method}` needs one label per column \
                     (got {labels} labels for {columns} columns)"
                )
            }
            GemError::UnknownMethod(name) => {
                write!(f, "no method named `{name}` is registered")
            }
        }
    }
}

impl std::error::Error for GemError {}

impl From<GmmError> for GemError {
    fn from(e: GmmError) -> Self {
        GemError::Gmm(e)
    }
}

/// Bit-exact JSON encoding of a column: the header as a string, every value as an
/// IEEE-754 bit pattern ([`gem_json::bits`]). Serving fingerprints hash value *bits*, so
/// a column shipped over a wire or reloaded from disk must reproduce every value exactly
/// — NaN payloads and signed zeros included — for the remote corpus to key the same
/// model as the local one.
impl gem_json::ToJson for GemColumn {
    fn to_json(&self) -> gem_json::Json {
        gem_json::object(vec![
            ("header", gem_json::string(self.header.clone())),
            ("values", gem_json::bits_array(&self.values)),
        ])
    }
}

impl gem_json::FromJson for GemColumn {
    fn from_json(value: &gem_json::Json) -> Result<Self, gem_json::JsonError> {
        Ok(GemColumn {
            header: value.str_field("header")?,
            values: gem_json::as_bits_array(value.field("values")?)?,
        })
    }
}

/// The output of the Gem pipeline: the composed embedding matrix plus the individual blocks
/// (useful for ablations and for downstream systems that want the raw signature).
#[derive(Debug, Clone, PartialEq)]
pub struct GemEmbedding {
    /// Final per-column embedding (one row per column), composed according to the
    /// configuration's [`crate::Composition`].
    pub matrix: Matrix,
    /// The L1-normalised distributional + statistical block (the paper's `P_i`), or the
    /// relevant subset when one of the two was disabled. Empty (0-column) when neither was
    /// requested.
    pub value_block: Matrix,
    /// The L1-normalised header block (`S_i`). Empty (0-column) when contextual features
    /// were not requested.
    pub header_block: Matrix,
    /// The raw (un-normalised) GMM signature, one row per column, rows summing to 1.
    pub signature: Matrix,
    /// The fitted GMM, exposed so callers can inspect components or assign clusters
    /// (Equation 12).
    pub gmm: Option<UnivariateGmm>,
}

impl GemEmbedding {
    /// Hard cluster assignment per column: the index of the Gaussian component with the
    /// highest mean responsibility (Equation 12 applied at column granularity).
    pub fn component_assignments(&self) -> Vec<usize> {
        (0..self.signature.rows())
            .map(|r| {
                self.signature
                    .row(r)
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect()
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.matrix.cols()
    }

    /// Number of embedded columns.
    pub fn n_columns(&self) -> usize {
        self.matrix.rows()
    }
}

/// The Gem embedder. Construct one with a [`GemConfig`], then call
/// [`GemEmbedder::embed`] on a set of columns — or [`GemEmbedder::fit`] once and
/// [`GemModel::transform`] many times when the same corpus backs repeated requests.
#[derive(Debug, Clone)]
pub struct GemEmbedder {
    config: GemConfig,
}

impl Default for GemEmbedder {
    fn default() -> Self {
        GemEmbedder::new(GemConfig::default())
    }
}

impl GemEmbedder {
    /// Create an embedder from a configuration.
    pub fn new(config: GemConfig) -> Self {
        GemEmbedder { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &GemConfig {
        &self.config
    }

    /// Embed the full Gem feature set (D+S+C) — Algorithm 1 as published.
    ///
    /// # Errors
    /// See [`GemEmbedder::embed`].
    pub fn embed_full(&self, columns: &[GemColumn]) -> Result<GemEmbedding, GemError> {
        self.embed(columns, FeatureSet::dsc())
    }

    /// Embed the numeric-only feature set (D+S) used in Table 2.
    ///
    /// # Errors
    /// See [`GemEmbedder::embed`].
    pub fn embed_numeric(&self, columns: &[GemColumn]) -> Result<GemEmbedding, GemError> {
        self.embed(columns, FeatureSet::ds())
    }

    /// Run the Gem pipeline on `columns`, using only the evidence types selected by
    /// `features` (the ablation axis of Figure 3).
    ///
    /// Steps (Algorithm 1):
    /// 1. stack all values and fit the shared GMM (skipped when D is not selected),
    /// 2. per column, compute mean responsibilities (the signature),
    /// 3. compute and standardise the statistical features (Equation 7),
    /// 4. concatenate signature and statistics and L1-normalise (Equations 8–9),
    /// 5. embed headers and L1-normalise (Equation 10),
    /// 6. compose the blocks (Equations 11/13 for concatenation, or the configured
    ///    alternative).
    ///
    /// # Errors
    /// * [`GemError::NoColumns`] when `columns` is empty,
    /// * [`GemError::EmptyFeatureSet`] when `features` selects nothing,
    /// * [`GemError::NoValues`] when D or S is selected but every column is empty,
    /// * [`GemError::Gmm`] when the EM fit fails.
    pub fn embed(
        &self,
        columns: &[GemColumn],
        features: FeatureSet,
    ) -> Result<GemEmbedding, GemError> {
        // The one-shot path is fit + transform fused over shared per-column blocks, so
        // the input is borrowed throughout (no corpus-sized clone) and the output is
        // bit-identical to fitting a model and transforming the same columns.
        GemModel::fit_transform(columns, &self.config, features).map(|(_, embedding)| embedding)
    }

    /// Fit a reusable [`GemModel`] on `columns`: the expensive corpus-level state (EM fit,
    /// Equation 7 parameters, autoencoder weights) is estimated once, after which
    /// [`GemModel::transform`] embeds any batch of columns — seen or unseen — against the
    /// frozen model.
    ///
    /// # Errors
    /// See [`GemEmbedder::embed`].
    pub fn fit(&self, columns: &[GemColumn], features: FeatureSet) -> Result<GemModel, GemError> {
        GemModel::fit(columns, &self.config, features)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compose::Composition;
    use gem_numeric::distance::cosine_similarity;

    fn corpus() -> Vec<GemColumn> {
        // Three "age-like" columns, three "price-like" columns (log-normal-ish large
        // values), two "year" columns.
        let mut cols = Vec::new();
        for s in 0..3 {
            let values: Vec<f64> = (0..80)
                .map(|i| 25.0 + ((i * 7 + s * 3) % 40) as f64 * 0.5)
                .collect();
            cols.push(GemColumn::new(values, format!("age_{s}")));
        }
        for s in 0..3 {
            let values: Vec<f64> = (0..80)
                .map(|i| 1000.0 + ((i * 13 + s * 11) % 100) as f64 * 45.0)
                .collect();
            cols.push(GemColumn::new(values, format!("price_{s}")));
        }
        for s in 0..2 {
            let values: Vec<f64> = (0..60).map(|i| 1980.0 + ((i + s) % 32) as f64).collect();
            cols.push(GemColumn::new(values, format!("year_{s}")));
        }
        cols
    }

    fn fast_embedder() -> GemEmbedder {
        GemEmbedder::new(GemConfig::fast())
    }

    #[test]
    fn rejects_degenerate_inputs() {
        let e = fast_embedder();
        assert_eq!(
            e.embed(&[], FeatureSet::ds()).unwrap_err(),
            GemError::NoColumns
        );
        let empty_fs = FeatureSet {
            distributional: false,
            statistical: false,
            contextual: false,
        };
        assert_eq!(
            e.embed(&corpus(), empty_fs).unwrap_err(),
            GemError::EmptyFeatureSet
        );
        let empty_cols = vec![
            GemColumn::values_only(vec![]),
            GemColumn::values_only(vec![]),
        ];
        assert_eq!(
            e.embed(&empty_cols, FeatureSet::ds()).unwrap_err(),
            GemError::NoValues
        );
    }

    #[test]
    fn error_display() {
        assert!(GemError::NoColumns.to_string().contains("no columns"));
        assert!(GemError::NoValues.to_string().contains("empty"));
        assert!(GemError::EmptyFeatureSet
            .to_string()
            .contains("feature set"));
    }

    #[test]
    fn full_embedding_shapes_are_consistent() {
        let e = fast_embedder();
        let cols = corpus();
        let emb = e.embed_full(&cols).unwrap();
        assert_eq!(emb.n_columns(), cols.len());
        // D block: k components; S block: 7 features; C block: text_dim.
        let k = e.config().gmm.n_components;
        assert_eq!(emb.signature.cols(), k);
        assert_eq!(emb.value_block.cols(), k + 7);
        assert_eq!(emb.header_block.cols(), e.config().text_dim);
        assert_eq!(emb.dim(), k + 7 + e.config().text_dim);
        assert!(emb.matrix.all_finite());
        assert!(emb.gmm.is_some());
    }

    #[test]
    fn numeric_only_embedding_excludes_headers() {
        let e = fast_embedder();
        let emb = e.embed_numeric(&corpus()).unwrap();
        assert_eq!(emb.header_block.cols(), 0);
        assert_eq!(emb.dim(), e.config().gmm.n_components + 7);
    }

    #[test]
    fn value_block_rows_are_l1_normalized() {
        let e = fast_embedder();
        let emb = e.embed_numeric(&corpus()).unwrap();
        for r in 0..emb.value_block.rows() {
            let l1: f64 = emb.value_block.row(r).iter().map(|v| v.abs()).sum();
            assert!((l1 - 1.0).abs() < 1e-9, "row {r} has L1 {l1}");
        }
    }

    #[test]
    fn same_type_columns_are_more_similar_than_cross_type() {
        let e = fast_embedder();
        let emb = e.embed_numeric(&corpus()).unwrap();
        let sim =
            |a: usize, b: usize| cosine_similarity(emb.matrix.row(a), emb.matrix.row(b)).unwrap();
        // Age columns (0,1,2) should be closer to each other than to price columns (3,4,5).
        let within = (sim(0, 1) + sim(0, 2) + sim(1, 2)) / 3.0;
        let across = (sim(0, 3) + sim(1, 4) + sim(2, 5)) / 3.0;
        assert!(
            within > across,
            "within-type similarity {within} should exceed cross-type {across}"
        );
    }

    #[test]
    fn contextual_only_embedding_ignores_values() {
        let e = fast_embedder();
        let cols = vec![
            GemColumn::new(vec![1.0, 2.0], "engine_power"),
            GemColumn::new(vec![9999.0, 12345.0], "engine_power"),
            GemColumn::new(vec![1.0, 2.0], "bird_species_count"),
        ];
        let emb = e.embed(&cols, FeatureSet::c()).unwrap();
        // Identical headers give identical rows even though the values differ wildly.
        let s01 = cosine_similarity(emb.matrix.row(0), emb.matrix.row(1)).unwrap();
        let s02 = cosine_similarity(emb.matrix.row(0), emb.matrix.row(2)).unwrap();
        assert!((s01 - 1.0).abs() < 1e-9);
        assert!(s02 < 0.9);
        assert_eq!(emb.value_block.cols(), 0);
        assert!(emb.gmm.is_none());
    }

    #[test]
    fn feature_set_controls_dimensionality() {
        let e = fast_embedder();
        let cols = corpus();
        let k = e.config().gmm.n_components;
        let d = e.embed(&cols, FeatureSet::d()).unwrap();
        assert_eq!(d.dim(), k);
        let s = e.embed(&cols, FeatureSet::s()).unwrap();
        assert_eq!(s.dim(), 7);
        let c = e.embed(&cols, FeatureSet::c()).unwrap();
        assert_eq!(c.dim(), e.config().text_dim);
        let dc = e.embed(&cols, FeatureSet::dc()).unwrap();
        assert_eq!(dc.dim(), k + e.config().text_dim);
    }

    #[test]
    fn component_assignments_are_valid_indices() {
        let e = fast_embedder();
        let emb = e.embed_numeric(&corpus()).unwrap();
        let assignments = emb.component_assignments();
        assert_eq!(assignments.len(), corpus().len());
        let k = e.config().gmm.n_components;
        assert!(assignments.iter().all(|&a| a < k));
    }

    #[test]
    fn aggregation_and_autoencoder_compositions_produce_finite_embeddings() {
        let cols = corpus();
        let agg = GemEmbedder::new(GemConfig::fast().with_composition(Composition::Aggregation))
            .embed_full(&cols)
            .unwrap();
        assert!(agg.matrix.all_finite());
        assert_eq!(agg.n_columns(), cols.len());
        let ae_cfg = GemConfig::fast().with_composition(Composition::Autoencoder {
            latent_dim: 8,
            epochs: 60,
        });
        let ae = GemEmbedder::new(ae_cfg).embed_full(&cols).unwrap();
        assert_eq!(ae.dim(), 8);
        assert!(ae.matrix.all_finite());
    }

    #[test]
    fn deterministic_given_the_same_configuration() {
        let cols = corpus();
        let a = fast_embedder().embed_numeric(&cols).unwrap();
        let b = fast_embedder().embed_numeric(&cols).unwrap();
        assert_eq!(a.matrix, b.matrix);
    }

    #[test]
    fn default_embedder_uses_paper_configuration() {
        let e = GemEmbedder::default();
        assert_eq!(e.config().gmm.n_components, 50);
    }

    #[test]
    fn gem_column_json_round_trip_is_bit_exact() {
        use gem_json::{FromJson, Json, ToJson};
        let column = GemColumn::new(
            vec![1.5, -0.0, 0.0, f64::NAN, f64::INFINITY, 1e-308],
            "wei\"rd\nheader",
        );
        let text = column.to_json().to_compact_string();
        let back = GemColumn::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.header, column.header);
        let bits = |c: &GemColumn| c.values.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&back), bits(&column));
        assert!(GemColumn::from_json(&Json::Null).is_err());
    }
}
