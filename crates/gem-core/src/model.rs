//! The fitted Gem model: the fit/transform split of Algorithm 1.
//!
//! [`crate::GemEmbedder::embed`] runs the whole pipeline in one shot, which re-fits the
//! shared GMM on every call — fine for experiments, fatal for serving, where the same
//! corpus is embedded against over and over. [`GemModel`] splits the pipeline at the
//! natural seam of the paper:
//!
//! * [`GemModel::fit`] runs the expensive, corpus-level estimation once: the EM fit of
//!   the shared GMM (§3.1), the cross-column standardisation parameters of Equation 7,
//!   and (for the autoencoder composition) the trained compression network.
//! * [`GemModel::transform`] applies the frozen model to any set of columns — the fit
//!   corpus, a single new column, or a batch of unseen queries — borrowing its input and
//!   allocating nothing proportional to the fit corpus.
//!
//! [`GemModel::fit_transform`] fuses both for the one-shot path and is **bit-identical**
//! to the pre-split `GemEmbedder::embed` (asserted by the workspace property tests).

use crate::compose::{compose, concat_blocks, fit_autoencoder, Composition};
use crate::config::{FeatureSet, GemConfig};
use crate::embedding::{GemColumn, GemEmbedding, GemError};
use crate::features::{statistical_feature_matrix, STATISTICAL_FEATURE_NAMES};
use crate::signature::{signature_matrix, stack_values};
use gem_gmm::UnivariateGmm;
use gem_json::{number, object, FromJson, Json, JsonError, ToJson};
use gem_nn::Autoencoder;
use gem_numeric::standardize::l1_normalize_rows;
use gem_numeric::Matrix;
use gem_text::{HashEmbedder, TextEmbedder};

/// Schema version written into every serialised [`GemModel`]. Bump when the envelope's
/// shape changes incompatibly; loaders reject snapshots whose version they do not
/// understand instead of misinterpreting them.
pub const GEM_MODEL_SCHEMA_VERSION: u64 = 1;

/// Frozen per-feature standardisation parameters (Equation 7), estimated on the fit
/// corpus and applied unchanged to every transformed column so new columns land in the
/// same standardised space as the corpus they are compared against.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureScaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl FeatureScaler {
    /// Estimate per-feature mean and standard deviation over the rows of `features`
    /// (one row per column, one matrix-column per statistical feature).
    pub fn fit(features: &Matrix) -> Self {
        let cols = features.cols();
        let mut means = Vec::with_capacity(cols);
        let mut stds = Vec::with_capacity(cols);
        for c in 0..cols {
            let col = features.column(c);
            if col.is_empty() {
                means.push(0.0);
                stds.push(0.0);
                continue;
            }
            let n = col.len() as f64;
            let mean = col.iter().sum::<f64>() / n;
            let var = col.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
            means.push(mean);
            stds.push(var.sqrt());
        }
        FeatureScaler { means, stds }
    }

    /// Standardise `features` with the frozen parameters. Features whose fit-corpus
    /// standard deviation is (near) zero map to zero, mirroring
    /// [`gem_numeric::standardize::standardize_columns`] — on the fit corpus itself the
    /// output is bit-identical to that function.
    ///
    /// # Panics
    /// Panics when the feature width differs from the fitted width.
    pub fn transform(&self, features: &Matrix) -> Matrix {
        assert_eq!(
            features.cols(),
            self.means.len(),
            "feature width differs from the fitted width"
        );
        let mut out = Matrix::zeros(features.rows(), features.cols());
        for r in 0..features.rows() {
            for c in 0..features.cols() {
                if self.stds[c] >= 1e-12 {
                    out.set(r, c, (features.get(r, c) - self.means[c]) / self.stds[c]);
                }
            }
        }
        out
    }

    /// Per-feature means over the fit corpus.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Per-feature standard deviations over the fit corpus.
    pub fn stds(&self) -> &[f64] {
        &self.stds
    }
}

/// The per-query feature blocks computed by a frozen model, before composition.
struct Blocks {
    signature: Matrix,
    value_block: Matrix,
    header_block: Matrix,
}

/// A fitted Gem pipeline: the shared [`UnivariateGmm`], the Equation 7 standardisation
/// parameters, the header embedder and (for the autoencoder composition) the trained
/// compression network. Fit once per corpus with [`GemModel::fit`], then call
/// [`GemModel::transform`] for every batch of columns — including columns the model has
/// never seen.
#[derive(Debug, Clone)]
pub struct GemModel {
    config: GemConfig,
    features: FeatureSet,
    gmm: Option<UnivariateGmm>,
    scaler: Option<FeatureScaler>,
    text: HashEmbedder,
    autoencoder: Option<Autoencoder>,
    n_fit_columns: usize,
}

impl GemModel {
    /// Fit the corpus-level model state: stack the values and fit the shared GMM (when
    /// distributional features are selected), estimate the Equation 7 standardisation
    /// parameters (when statistical features are selected), and train the composition
    /// autoencoder (when that composition is configured).
    ///
    /// # Errors
    /// * [`GemError::NoColumns`] when `columns` is empty,
    /// * [`GemError::EmptyFeatureSet`] when `features` selects nothing,
    /// * [`GemError::NoValues`] when D or S is selected but every column is empty,
    /// * [`GemError::Gmm`] when the EM fit fails.
    pub fn fit(
        columns: &[GemColumn],
        config: &GemConfig,
        features: FeatureSet,
    ) -> Result<Self, GemError> {
        Self::fit_impl(columns, config, features, false).map(|(model, _)| model)
    }

    /// Fit on `columns` and embed them in one pass, sharing the per-column blocks between
    /// the two phases. This is what [`crate::GemEmbedder::embed`] runs; its output is
    /// bit-identical to fitting and then transforming the same columns.
    ///
    /// # Errors
    /// See [`GemModel::fit`].
    pub fn fit_transform(
        columns: &[GemColumn],
        config: &GemConfig,
        features: FeatureSet,
    ) -> Result<(Self, GemEmbedding), GemError> {
        Self::fit_impl(columns, config, features, true)
            .map(|(model, embedding)| (model, embedding.expect("embedding requested")))
    }

    fn fit_impl(
        columns: &[GemColumn],
        config: &GemConfig,
        features: FeatureSet,
        want_embedding: bool,
    ) -> Result<(Self, Option<GemEmbedding>), GemError> {
        if columns.is_empty() {
            return Err(GemError::NoColumns);
        }
        if !features.is_non_empty() {
            return Err(GemError::EmptyFeatureSet);
        }
        let values: Vec<&[f64]> = columns.iter().map(|c| c.values.as_slice()).collect();

        // 1. The shared GMM over the stacked corpus (Algorithm 1, step 1).
        let gmm = if features.distributional {
            let stacked = stack_values(&values);
            if stacked.is_empty() {
                return Err(GemError::NoValues);
            }
            Some(UnivariateGmm::fit(&stacked, &config.gmm)?)
        } else {
            None
        };

        // Equation 7 parameters, estimated across the fit corpus. The raw feature matrix
        // is kept so the fused fit_transform path does not compute it twice.
        let (scaler, raw_stats) = if features.statistical {
            if values.iter().all(|v| v.is_empty()) {
                return Err(GemError::NoValues);
            }
            let raw = statistical_feature_matrix(&values);
            (Some(FeatureScaler::fit(&raw)), Some(raw))
        } else {
            (None, None)
        };

        let mut model = GemModel {
            config: config.clone(),
            features,
            gmm,
            scaler,
            text: HashEmbedder::new(config.text_dim),
            autoencoder: None,
            n_fit_columns: columns.len(),
        };

        // The concatenation/aggregation compositions are stateless, so a pure fit can
        // stop here; the autoencoder must be trained on the fit corpus's blocks.
        let train_ae = matches!(config.composition, Composition::Autoencoder { .. });
        if !want_embedding && !train_ae {
            return Ok((model, None));
        }

        let blocks = model.compute_blocks(columns, &values, raw_stats);
        // The concatenated matrix trains the autoencoder and is handed on to the fused
        // embedding so it isn't rebuilt; degenerate all-zero-width blocks (unreachable
        // through the public constructors, which enforce k ≥ 1 / text_dim ≥ 2) skip the
        // training, mirroring the one-shot compose guard.
        let mut ae_input: Option<Matrix> = None;
        if let Composition::Autoencoder { latent_dim, epochs } = config.composition {
            let parts = present_blocks(&blocks);
            if !parts.is_empty() {
                let concatenated = concat_blocks(&parts);
                model.autoencoder = Some(fit_autoencoder(&concatenated, latent_dim, epochs));
                ae_input = Some(concatenated);
            }
        }
        let embedding = want_embedding.then(|| model.compose_embedding(blocks, ae_input));
        Ok((model, embedding))
    }

    /// Fold `new_columns` into this fitted model **incrementally**: the expensive
    /// corpus-level estimates — the EM-fitted GMM, the Equation 7 scaler, the trained
    /// autoencoder — are reused frozen, and only the new columns' signatures are
    /// computed (against the frozen GMM, which also validates that the new slice of the
    /// corpus is embeddable). The hash embedder needs no retraining for the new
    /// headers: its vocabulary is the feature-hash space itself, so unseen tokens
    /// already have well-defined coordinates.
    ///
    /// The updated model is the Rao-Blackwellised serving story for corpus growth: a
    /// replica absorbs `new_columns` in time proportional to the *new* columns instead
    /// of re-running EM over the grown stack. The price is that the update is an
    /// approximation — the GMM components and standardisation parameters still describe
    /// the parent corpus. By construction, embeds of columns the parent has seen are
    /// **bit-identical** between parent and updated model; callers that need the
    /// parameters re-estimated run a full [`GemModel::fit`] instead.
    ///
    /// Identity bookkeeping (the updated fingerprint and the recorded `parent` lineage)
    /// lives with the store/serving layer, which knows the model's key.
    ///
    /// # Errors
    /// [`GemError::NoColumns`] when `new_columns` is empty — an empty update is almost
    /// certainly a caller bug, and admitting it would mint a second key for the same
    /// model state.
    pub fn fit_update(&self, new_columns: &[GemColumn]) -> Result<Self, GemError> {
        if new_columns.is_empty() {
            return Err(GemError::NoColumns);
        }
        // The incremental work: the new columns' signatures under the frozen GMM (the
        // per-column quantity a fresh fit would have recomputed for the whole corpus).
        if let Some(gmm) = &self.gmm {
            let values: Vec<&[f64]> = new_columns.iter().map(|c| c.values.as_slice()).collect();
            let signature = signature_matrix(gmm, &values, self.config.parallel);
            debug_assert!(signature.all_finite());
        }
        let mut updated = self.clone();
        updated.n_fit_columns = self.n_fit_columns + new_columns.len();
        Ok(updated)
    }

    /// Embed `columns` against the frozen model — steps 2–6 of Algorithm 1 with every
    /// corpus-level estimate (GMM, Equation 7 parameters, autoencoder weights) reused
    /// rather than re-fitted. The input is borrowed; nothing proportional to the fit
    /// corpus is allocated or cloned.
    ///
    /// The columns need not be the fit corpus: unseen columns are projected into the
    /// corpus's signature and standardised-feature space, which is what a serving system
    /// needs to embed queries against a cached model. Columns with no finite values get
    /// the GMM's prior weights as their signature (and zero raw statistics), so degenerate
    /// queries degrade gracefully instead of erroring.
    ///
    /// # Errors
    /// [`GemError::NoColumns`] when `columns` is empty.
    pub fn transform(&self, columns: &[GemColumn]) -> Result<GemEmbedding, GemError> {
        if columns.is_empty() {
            return Err(GemError::NoColumns);
        }
        let values: Vec<&[f64]> = columns.iter().map(|c| c.values.as_slice()).collect();
        Ok(self.compose_embedding(self.compute_blocks(columns, &values, None), None))
    }

    /// Steps 2–5: signature, standardised statistics and header blocks for `columns`.
    fn compute_blocks(
        &self,
        columns: &[GemColumn],
        values: &[&[f64]],
        raw_stats: Option<Matrix>,
    ) -> Blocks {
        let n = columns.len();

        // 2. Per-column mean responsibilities under the frozen GMM.
        let signature = match &self.gmm {
            Some(gmm) => signature_matrix(gmm, values, self.config.parallel),
            None => Matrix::zeros(n, 0),
        };

        // 3. Statistical features, standardised with the frozen Equation 7 parameters.
        let statistical = match &self.scaler {
            Some(scaler) => {
                let raw = raw_stats.unwrap_or_else(|| statistical_feature_matrix(values));
                scaler.transform(&raw)
            }
            None => Matrix::zeros(n, 0),
        };

        // 4. Augmented value block, L1-normalised (Equations 8–9). The standardised
        // statistical block is first brought onto the same per-row mass as the signature
        // (whose rows are probability vectors summing to 1); without this balancing the
        // seven statistical z-scores carry several times the L1 mass of the signature and
        // drown out the distributional evidence in cosine space (DESIGN.md §6).
        let value_block = if self.features.distributional || self.features.statistical {
            let balanced_stats = if self.features.distributional && statistical.cols() > 0 {
                l1_normalize_rows(&statistical)
            } else {
                statistical.clone()
            };
            let augmented = signature
                .hconcat(&balanced_stats)
                .expect("same number of columns by construction");
            l1_normalize_rows(&augmented)
        } else {
            Matrix::zeros(n, 0)
        };

        // 5. Contextual block, L1-normalised (Equation 10).
        let header_block = if self.features.contextual {
            let rows: Vec<Vec<f64>> = columns.iter().map(|c| self.text.embed(&c.header)).collect();
            let m = Matrix::from_rows(&rows).expect("uniform embedder output width");
            l1_normalize_rows(&m)
        } else {
            Matrix::zeros(n, 0)
        };

        Blocks {
            signature,
            value_block,
            header_block,
        }
    }

    /// Step 6: merge the blocks (Equations 11/13 or the configured alternative), using
    /// the autoencoder trained at fit time instead of re-training per call.
    /// `precomputed_concat` lets the fused fit path reuse the concatenated matrix it
    /// just trained the autoencoder on instead of rebuilding it.
    fn compose_embedding(
        &self,
        blocks: Blocks,
        precomputed_concat: Option<Matrix>,
    ) -> GemEmbedding {
        let Blocks {
            signature,
            value_block,
            header_block,
        } = blocks;
        let mut parts: Vec<&Matrix> = Vec::new();
        if value_block.cols() > 0 {
            parts.push(&value_block);
        }
        if header_block.cols() > 0 {
            parts.push(&header_block);
        }
        let matrix = match self.config.composition {
            Composition::Autoencoder { latent_dim, .. } => match &self.autoencoder {
                Some(ae) => {
                    let concatenated = precomputed_concat.unwrap_or_else(|| concat_blocks(&parts));
                    ae.encode(&concatenated)
                }
                // Only reachable when every block had zero width (degenerate
                // configuration); mirror the one-shot compose guard's empty output.
                None => Matrix::zeros(value_block.rows(), latent_dim.max(1)),
            },
            composition => compose(&parts, composition),
        };
        GemEmbedding {
            matrix,
            value_block,
            header_block,
            signature,
            gmm: self.gmm.clone(),
        }
    }

    /// The configuration the model was fitted with.
    pub fn config(&self) -> &GemConfig {
        &self.config
    }

    /// The feature set the model embeds with.
    pub fn features(&self) -> FeatureSet {
        self.features
    }

    /// The fitted shared GMM (`None` when distributional features are not selected).
    pub fn gmm(&self) -> Option<&UnivariateGmm> {
        self.gmm.as_ref()
    }

    /// The frozen Equation 7 standardisation parameters (`None` when statistical features
    /// are not selected).
    pub fn scaler(&self) -> Option<&FeatureScaler> {
        self.scaler.as_ref()
    }

    /// Number of columns in the fit corpus.
    pub fn n_fit_columns(&self) -> usize {
        self.n_fit_columns
    }

    /// EM iterations the winning GMM restart ran at fit time (`0` when distributional
    /// features are not selected). A [`GemModel::fit_update`] inherits the parent's
    /// count — its whole point is that no new EM iterations run.
    pub fn em_iterations(&self) -> usize {
        self.gmm.as_ref().map_or(0, UnivariateGmm::n_iterations)
    }

    /// Dimensionality of the embeddings [`GemModel::transform`] produces.
    pub fn dim(&self) -> usize {
        let k = self.gmm.as_ref().map_or(0, UnivariateGmm::n_components);
        let s = if self.features.statistical {
            STATISTICAL_FEATURE_NAMES.len()
        } else {
            0
        };
        let value = k + s;
        let header = if self.features.contextual {
            self.config.text_dim
        } else {
            0
        };
        match self.config.composition {
            Composition::Concatenation => value + header,
            Composition::Aggregation => {
                // Aggregation zero-pads the present blocks to a common width.
                match (value, header) {
                    (0, h) => h,
                    (v, 0) => v,
                    (v, h) => v.max(h),
                }
            }
            Composition::Autoencoder { latent_dim, .. } => self.autoencoder.as_ref().map_or_else(
                || latent_dim.max(1).min(value + header),
                Autoencoder::latent_dim,
            ),
        }
    }
}

impl GemModel {
    /// Approximate resident memory of the fitted state, in bytes: GMM parameters,
    /// standardisation parameters and autoencoder weights (each 8 bytes per `f64`) plus
    /// the struct overhead. Used by memory-bounded caches to decide when to evict; the
    /// estimate deliberately ignores allocator overhead and small container headers.
    pub fn approx_mem_bytes(&self) -> u64 {
        let mut bytes = std::mem::size_of::<GemModel>() as u64;
        if let Some(gmm) = &self.gmm {
            // weights + means + variances.
            bytes += 3 * 8 * gmm.n_components() as u64;
        }
        if let Some(scaler) = &self.scaler {
            bytes += 8 * (scaler.means.len() + scaler.stds.len()) as u64;
        }
        if let Some(ae) = &self.autoencoder {
            bytes += 8 * ae.n_parameters() as u64;
        }
        // Per-header scratch vector of the hash embedder.
        bytes += 8 * self.config.text_dim as u64;
        bytes
    }
}

/// Bit-exact JSON persistence of the frozen standardisation parameters: the arrays use
/// the IEEE-754 bit encoding, so a reloaded scaler standardises bit-identically.
impl ToJson for FeatureScaler {
    fn to_json(&self) -> Json {
        object(vec![
            ("means", gem_json::bits_array(&self.means)),
            ("stds", gem_json::bits_array(&self.stds)),
        ])
    }
}

impl FromJson for FeatureScaler {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let means = gem_json::as_bits_array(value.field("means")?)?;
        let stds = gem_json::as_bits_array(value.field("stds")?)?;
        if means.len() != stds.len() {
            return Err(JsonError::conversion(
                "scaler means and stds must be equal-length",
            ));
        }
        Ok(FeatureScaler { means, stds })
    }
}

/// JSON persistence of the **entire** fitted model — the envelope the `gem-store`
/// crate's `ModelStore` writes to disk. Every fitted component
/// round-trips exactly (the GMM via shortest-round-trip decimals, the scaler and
/// autoencoder weights via IEEE-754 bit patterns), so a model reloaded in a fresh
/// process produces **bit-identical** [`GemModel::transform`] output — no EM re-fit, no
/// autoencoder re-training. The envelope carries [`GEM_MODEL_SCHEMA_VERSION`] and the
/// full fit configuration, and the loader cross-validates the component set against the
/// feature set so a corrupted or hand-edited snapshot fails at load time rather than at
/// serve time.
impl ToJson for GemModel {
    fn to_json(&self) -> Json {
        let opt = |component: Option<Json>| component.unwrap_or(Json::Null);
        object(vec![
            ("schema_version", number(GEM_MODEL_SCHEMA_VERSION as f64)),
            ("config", self.config.to_json()),
            ("features", self.features.to_json()),
            ("gmm", opt(self.gmm.as_ref().map(ToJson::to_json))),
            ("scaler", opt(self.scaler.as_ref().map(ToJson::to_json))),
            ("text", self.text.to_json()),
            (
                "autoencoder",
                opt(self.autoencoder.as_ref().map(ToJson::to_json)),
            ),
            ("n_fit_columns", number(self.n_fit_columns as f64)),
        ])
    }
}

impl FromJson for GemModel {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let schema_version = value.num_field("schema_version")? as u64;
        if schema_version != GEM_MODEL_SCHEMA_VERSION {
            return Err(JsonError::conversion(format!(
                "unsupported GemModel schema version {schema_version} \
                 (this build reads version {GEM_MODEL_SCHEMA_VERSION})"
            )));
        }
        let config = GemConfig::from_json(value.field("config")?)?;
        let features = FeatureSet::from_json(value.field("features")?)?;
        if !features.is_non_empty() {
            return Err(JsonError::conversion(
                "persisted model selects no evidence type",
            ));
        }
        let optional = |key: &str| -> Result<Option<&Json>, JsonError> {
            let field = value.field(key)?;
            Ok(if field.is_null() { None } else { Some(field) })
        };
        let gmm = optional("gmm")?.map(UnivariateGmm::from_json).transpose()?;
        let scaler = optional("scaler")?
            .map(FeatureScaler::from_json)
            .transpose()?;
        let text = HashEmbedder::from_json(value.field("text")?)?;
        let autoencoder = optional("autoencoder")?
            .map(Autoencoder::from_json)
            .transpose()?;

        // Cross-field validation: the component set must match what a fit with this
        // feature set would have produced.
        if features.distributional != gmm.is_some() {
            return Err(JsonError::conversion(
                "distributional feature flag disagrees with GMM presence",
            ));
        }
        if features.statistical != scaler.is_some() {
            return Err(JsonError::conversion(
                "statistical feature flag disagrees with scaler presence",
            ));
        }
        // A scaler of the wrong width would pass its own (internally consistent)
        // round-trip but panic at transform time; reject it while we can still name the
        // file, not the request.
        if let Some(scaler) = &scaler {
            if scaler.means.len() != STATISTICAL_FEATURE_NAMES.len() {
                return Err(JsonError::conversion(format!(
                    "scaler has {} features, the statistical block computes {}",
                    scaler.means.len(),
                    STATISTICAL_FEATURE_NAMES.len()
                )));
            }
        }
        if text.dim() != config.text_dim {
            return Err(JsonError::conversion(
                "text embedder dimension disagrees with the configuration",
            ));
        }
        let ae_composition = matches!(config.composition, Composition::Autoencoder { .. });
        if autoencoder.is_some() && !ae_composition {
            return Err(JsonError::conversion(
                "autoencoder present but the composition is not autoencoder",
            ));
        }
        Ok(GemModel {
            config,
            features,
            gmm,
            scaler,
            text,
            autoencoder,
            n_fit_columns: value.num_field("n_fit_columns")? as usize,
        })
    }
}

fn present_blocks(blocks: &Blocks) -> Vec<&Matrix> {
    let mut parts = Vec::new();
    if blocks.value_block.cols() > 0 {
        parts.push(&blocks.value_block);
    }
    if blocks.header_block.cols() > 0 {
        parts.push(&blocks.header_block);
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<GemColumn> {
        let mut cols = Vec::new();
        for s in 0..3 {
            let values: Vec<f64> = (0..70)
                .map(|i| 20.0 + ((i * 5 + s * 7) % 50) as f64 * 0.4)
                .collect();
            cols.push(GemColumn::new(values, format!("age_{s}")));
        }
        for s in 0..3 {
            let values: Vec<f64> = (0..70)
                .map(|i| 2000.0 + ((i * 11 + s * 3) % 90) as f64 * 55.0)
                .collect();
            cols.push(GemColumn::new(values, format!("price_{s}")));
        }
        cols
    }

    #[test]
    fn fit_transform_matches_fit_then_transform_exactly() {
        let cols = corpus();
        let config = GemConfig::fast();
        for features in [
            FeatureSet::d(),
            FeatureSet::s(),
            FeatureSet::c(),
            FeatureSet::ds(),
            FeatureSet::dsc(),
        ] {
            let (model, fused) = GemModel::fit_transform(&cols, &config, features).unwrap();
            let separate = model.transform(&cols).unwrap();
            assert_eq!(fused.matrix, separate.matrix, "{}", features.label());
            assert_eq!(fused.signature, separate.signature);
            assert_eq!(fused.value_block, separate.value_block);
            assert_eq!(fused.header_block, separate.header_block);
        }
    }

    #[test]
    fn transform_embeds_columns_unseen_at_fit_time() {
        let cols = corpus();
        let model = GemModel::fit(&cols, &GemConfig::fast(), FeatureSet::ds()).unwrap();
        let unseen = vec![
            GemColumn::new(
                (0..40).map(|i| 25.0 + (i % 30) as f64 * 0.6).collect(),
                "age_new",
            ),
            GemColumn::new(
                (0..40).map(|i| 2500.0 + (i % 40) as f64 * 60.0).collect(),
                "price_new",
            ),
        ];
        let emb = model.transform(&unseen).unwrap();
        assert_eq!(emb.n_columns(), 2);
        assert_eq!(emb.dim(), model.dim());
        assert!(emb.matrix.all_finite());
        // The unseen age-like column should be closer to the corpus age columns than the
        // unseen price-like column is.
        let corpus_emb = model.transform(&cols).unwrap();
        let sim = |a: &[f64], b: &[f64]| gem_numeric::distance::cosine_similarity(a, b).unwrap();
        assert!(
            sim(emb.matrix.row(0), corpus_emb.matrix.row(0))
                > sim(emb.matrix.row(1), corpus_emb.matrix.row(0))
        );
    }

    #[test]
    fn transform_of_empty_valued_column_falls_back_to_the_prior() {
        let cols = corpus();
        let model = GemModel::fit(&cols, &GemConfig::fast(), FeatureSet::d()).unwrap();
        let emb = model.transform(&[GemColumn::values_only(vec![])]).unwrap();
        let weights = model.gmm().unwrap().weights();
        for (a, b) in emb.signature.row(0).iter().zip(weights) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn fit_rejects_degenerate_inputs() {
        let config = GemConfig::fast();
        assert_eq!(
            GemModel::fit(&[], &config, FeatureSet::ds()).unwrap_err(),
            GemError::NoColumns
        );
        let empty_fs = FeatureSet {
            distributional: false,
            statistical: false,
            contextual: false,
        };
        assert_eq!(
            GemModel::fit(&corpus(), &config, empty_fs).unwrap_err(),
            GemError::EmptyFeatureSet
        );
        let empty_cols = vec![GemColumn::values_only(vec![])];
        assert_eq!(
            GemModel::fit(&empty_cols, &config, FeatureSet::ds()).unwrap_err(),
            GemError::NoValues
        );
        let model = GemModel::fit(&corpus(), &config, FeatureSet::ds()).unwrap();
        assert_eq!(model.transform(&[]).unwrap_err(), GemError::NoColumns);
    }

    #[test]
    fn autoencoder_composition_is_frozen_at_fit_time() {
        let cols = corpus();
        let config = GemConfig::fast().with_composition(Composition::Autoencoder {
            latent_dim: 6,
            epochs: 40,
        });
        let (model, fused) = GemModel::fit_transform(&cols, &config, FeatureSet::ds()).unwrap();
        assert_eq!(fused.dim(), 6);
        assert_eq!(model.dim(), 6);
        // Transforming twice gives identical output: the autoencoder is not re-trained.
        let a = model.transform(&cols).unwrap();
        let b = model.transform(&cols).unwrap();
        assert_eq!(a.matrix, b.matrix);
        assert_eq!(a.matrix, fused.matrix);
    }

    #[test]
    fn scaler_matches_corpus_standardisation_and_reports_parameters() {
        let features =
            Matrix::from_rows(&[vec![1.0, 5.0], vec![3.0, 5.0], vec![5.0, 5.0]]).unwrap();
        let scaler = FeatureScaler::fit(&features);
        assert_eq!(scaler.means(), &[3.0, 5.0]);
        // Constant feature: std 0 → transformed to zero.
        let out = scaler.transform(&features);
        assert_eq!(
            out,
            gem_numeric::standardize::standardize_columns(&features)
        );
        assert_eq!(out.column(1), vec![0.0, 0.0, 0.0]);
        assert_eq!(scaler.stds().len(), 2);
    }

    fn reparse(json: &Json) -> Json {
        Json::parse(&json.to_pretty_string()).unwrap()
    }

    #[test]
    fn model_round_trips_through_json_with_bit_identical_transform() {
        let cols = corpus();
        for (config, features) in [
            (GemConfig::fast(), FeatureSet::dsc()),
            (GemConfig::fast(), FeatureSet::d()),
            (
                GemConfig::fast().with_composition(Composition::Autoencoder {
                    latent_dim: 5,
                    epochs: 25,
                }),
                FeatureSet::ds(),
            ),
        ] {
            let model = GemModel::fit(&cols, &config, features).unwrap();
            let restored = GemModel::from_json(&reparse(&model.to_json())).unwrap();
            assert_eq!(restored.features(), model.features());
            assert_eq!(restored.config(), model.config());
            assert_eq!(restored.n_fit_columns(), model.n_fit_columns());
            assert_eq!(restored.dim(), model.dim());
            let a = model.transform(&cols).unwrap();
            let b = restored.transform(&cols).unwrap();
            assert_eq!(a.matrix, b.matrix);
            assert_eq!(a.signature, b.signature);
            assert_eq!(a.value_block, b.value_block);
            assert_eq!(a.header_block, b.header_block);
        }
    }

    #[test]
    fn model_decoding_rejects_version_and_consistency_violations() {
        let model = GemModel::fit(&corpus(), &GemConfig::fast(), FeatureSet::ds()).unwrap();
        let tamper = |key: &str, new_value: Json| {
            let mut pairs = match model.to_json() {
                Json::Object(pairs) => pairs,
                _ => unreachable!(),
            };
            for pair in pairs.iter_mut() {
                if pair.0 == key {
                    pair.1 = new_value.clone();
                }
            }
            Json::Object(pairs)
        };
        // Future schema version.
        let err = GemModel::from_json(&tamper("schema_version", number(99.0))).unwrap_err();
        assert!(err.message.contains("schema version"), "{err}");
        // GMM missing although distributional features are selected.
        assert!(GemModel::from_json(&tamper("gmm", Json::Null)).is_err());
        // Scaler missing although statistical features are selected.
        assert!(GemModel::from_json(&tamper("scaler", Json::Null)).is_err());
        // Scaler present but of the wrong width (internally consistent, so only the
        // cross-field check can catch it before transform panics).
        let narrow = FeatureScaler {
            means: vec![0.0; 6],
            stds: vec![1.0; 6],
        };
        let err = GemModel::from_json(&tamper("scaler", narrow.to_json())).unwrap_err();
        assert!(err.message.contains("6"), "{err}");
        // Unsolicited autoencoder.
        let ae_cfg = GemConfig::fast().with_composition(Composition::Autoencoder {
            latent_dim: 4,
            epochs: 10,
        });
        let ae_model = GemModel::fit(&corpus(), &ae_cfg, FeatureSet::ds()).unwrap();
        let mut pairs = match ae_model.to_json() {
            Json::Object(pairs) => pairs,
            _ => unreachable!(),
        };
        for pair in pairs.iter_mut() {
            if pair.0 == "config" {
                pair.1 = GemConfig::fast().to_json();
            }
        }
        assert!(GemModel::from_json(&Json::Object(pairs)).is_err());
        // The untampered envelope still loads.
        assert!(GemModel::from_json(&model.to_json()).is_ok());
    }

    #[test]
    fn approx_mem_bytes_tracks_fitted_components() {
        let cols = corpus();
        let small = GemModel::fit(&cols, &GemConfig::fast(), FeatureSet::d()).unwrap();
        let larger = GemModel::fit(&cols, &GemConfig::fast(), FeatureSet::dsc()).unwrap();
        assert!(small.approx_mem_bytes() > 0);
        assert!(larger.approx_mem_bytes() > small.approx_mem_bytes());
        let ae_cfg = GemConfig::fast().with_composition(Composition::Autoencoder {
            latent_dim: 6,
            epochs: 10,
        });
        let with_ae = GemModel::fit(&cols, &ae_cfg, FeatureSet::dsc()).unwrap();
        assert!(with_ae.approx_mem_bytes() > larger.approx_mem_bytes());
    }

    #[test]
    fn model_exposes_fit_metadata() {
        let cols = corpus();
        let model = GemModel::fit(&cols, &GemConfig::fast(), FeatureSet::dsc()).unwrap();
        assert_eq!(model.n_fit_columns(), cols.len());
        assert_eq!(model.features(), FeatureSet::dsc());
        assert!(model.gmm().is_some());
        assert!(model.scaler().is_some());
        assert_eq!(
            model.config().gmm.n_components,
            GemConfig::fast().gmm.n_components
        );
        let k = model.gmm().unwrap().n_components();
        assert_eq!(model.dim(), k + 7 + model.config().text_dim);
    }

    fn growth_columns() -> Vec<GemColumn> {
        vec![
            GemColumn::new(
                (0..60).map(|i| 22.0 + (i % 25) as f64 * 0.8).collect(),
                "age_new",
            ),
            GemColumn::new(
                (0..60).map(|i| 1800.0 + (i % 35) as f64 * 45.0).collect(),
                "price_new",
            ),
        ]
    }

    #[test]
    fn fit_update_keeps_old_column_embeddings_bit_identical() {
        let cols = corpus();
        let parent = GemModel::fit(&cols, &GemConfig::fast(), FeatureSet::dsc()).unwrap();
        let updated = parent.fit_update(&growth_columns()).unwrap();
        // Frozen components → every column the parent has seen embeds to the same bits.
        let before = parent.transform(&cols).unwrap();
        let after = updated.transform(&cols).unwrap();
        assert_eq!(before.matrix, after.matrix);
        assert_eq!(before.signature, after.signature);
        // The update only grows the corpus accounting; dimensionality and the EM
        // iteration count are inherited.
        assert_eq!(updated.n_fit_columns(), cols.len() + 2);
        assert_eq!(updated.dim(), parent.dim());
        assert_eq!(updated.em_iterations(), parent.em_iterations());
        assert!(parent.em_iterations() > 0);
        // And the new columns are embeddable against the updated model.
        let grown = updated.transform(&growth_columns()).unwrap();
        assert_eq!(grown.n_columns(), 2);
        assert!(grown.matrix.all_finite());
    }

    #[test]
    fn fit_update_chains_accumulate_corpus_accounting() {
        let cols = corpus();
        let parent = GemModel::fit(&cols, &GemConfig::fast(), FeatureSet::ds()).unwrap();
        let step1 = parent.fit_update(&growth_columns()).unwrap();
        let step2 = step1.fit_update(&growth_columns()[..1]).unwrap();
        assert_eq!(step2.n_fit_columns(), cols.len() + 3);
        let before = parent.transform(&cols).unwrap();
        let after = step2.transform(&cols).unwrap();
        assert_eq!(before.matrix, after.matrix);
    }

    #[test]
    fn fit_update_rejects_empty_updates() {
        let model = GemModel::fit(&corpus(), &GemConfig::fast(), FeatureSet::ds()).unwrap();
        assert_eq!(model.fit_update(&[]).unwrap_err(), GemError::NoColumns);
    }

    #[test]
    fn serial_and_parallel_model_fits_are_bit_identical() {
        let cols = corpus();
        let serial_cfg = GemConfig::fast().with_parallel(false);
        let parallel_cfg = GemConfig::fast().with_parallel(true);
        let (serial, serial_emb) =
            GemModel::fit_transform(&cols, &serial_cfg, FeatureSet::dsc()).unwrap();
        let (parallel, parallel_emb) =
            GemModel::fit_transform(&cols, &parallel_cfg, FeatureSet::dsc()).unwrap();
        assert_eq!(serial_emb.matrix, parallel_emb.matrix);
        let (sg, pg) = (serial.gmm().unwrap(), parallel.gmm().unwrap());
        for (a, b) in sg.weights().iter().zip(pg.weights()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in sg.means().iter().zip(pg.means()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in sg.variances().iter().zip(pg.variances()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
