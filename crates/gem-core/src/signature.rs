//! The Gem signature mechanism (§3.2): per-column mean responsibilities under a GMM fitted
//! to the stacked values of the whole corpus.

use gem_gmm::UnivariateGmm;
use gem_numeric::Matrix;

/// Stack all values of all columns into one flat array — the paper treats the corpus as a
/// single one-dimensional sample when fitting the GMM ("Gem treats all numerical values from
/// the columns as a single stack", §3.2). Non-finite values are dropped; the output is
/// allocated at exactly the surviving size in a single allocation.
///
/// Generic over the column representation (`Vec<f64>`, `&[f64]`, ...) so callers can pass
/// borrowed slices without cloning the corpus.
pub fn stack_values<S: AsRef<[f64]>>(columns: &[S]) -> Vec<f64> {
    let total: usize = columns
        .iter()
        .map(|c| c.as_ref().iter().filter(|v| v.is_finite()).count())
        .sum();
    let mut out = Vec::with_capacity(total);
    for c in columns {
        out.extend(c.as_ref().iter().copied().filter(|v| v.is_finite()));
    }
    debug_assert_eq!(out.len(), total);
    out
}

/// Compute the signature matrix: one row per column, one column per Gaussian component,
/// entry `(i, j)` the mean responsibility of component `j` for the values of column `i`.
/// Rows sum to one (they are averages of probability vectors).
///
/// When `parallel` is true the columns are fanned out across threads with
/// [`gem_parallel::par_fill_rows_with_scratch`]; the GMM is immutable during this phase
/// so sharing it by reference is free. Each worker writes its rows straight into the
/// output matrix (no intermediate row vectors) and reuses one scratch buffer (hoisted
/// log tables plus a responsibility row) for every column of its block, so the fan-out
/// never touches the allocator per column. Rows are assigned by column index and the
/// kernel is scratch-state-free, so the parallel and serial paths produce bit-identical
/// matrices.
pub fn signature_matrix<S: AsRef<[f64]> + Sync>(
    gmm: &UnivariateGmm,
    columns: &[S],
    parallel: bool,
) -> Matrix {
    let k = gmm.n_components();
    let n = columns.len();
    let mut out = Matrix::zeros(n, k);
    gem_parallel::par_fill_rows_with_scratch(
        columns,
        out.as_mut_slice(),
        k,
        parallel,
        Vec::new,
        |col, row, scratch| {
            gmm.mean_responsibilities_scratch(col.as_ref(), row, scratch);
        },
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gem_gmm::GmmConfig;

    fn columns() -> Vec<Vec<f64>> {
        let low: Vec<f64> = (0..50).map(|i| (i % 10) as f64 * 0.1).collect();
        let high: Vec<f64> = (0..50).map(|i| 100.0 + (i % 10) as f64 * 0.1).collect();
        let mixed: Vec<f64> = low.iter().chain(high.iter()).cloned().collect();
        vec![low, high, mixed]
    }

    fn fitted_gmm(cols: &[Vec<f64>]) -> UnivariateGmm {
        let stacked = stack_values(cols);
        UnivariateGmm::fit(
            &stacked,
            &GmmConfig::with_components(2).restarts(3).with_seed(1),
        )
        .unwrap()
    }

    #[test]
    fn stack_concatenates_and_drops_non_finite() {
        let cols = vec![vec![1.0, f64::NAN, 2.0], vec![3.0, f64::INFINITY]];
        let stacked = stack_values(&cols);
        assert_eq!(stacked, vec![1.0, 2.0, 3.0]);
        assert!(stack_values::<Vec<f64>>(&[]).is_empty());
        // Borrowed slices work without cloning.
        let slices: Vec<&[f64]> = cols.iter().map(Vec::as_slice).collect();
        assert_eq!(stack_values(&slices), stacked);
    }

    #[test]
    fn signature_rows_are_probability_vectors() {
        let cols = columns();
        let gmm = fitted_gmm(&cols);
        let sig = signature_matrix(&gmm, &cols, false);
        assert_eq!(sig.shape(), (3, 2));
        for r in 0..3 {
            let s: f64 = sig.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
            assert!(sig.row(r).iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn signatures_separate_low_and_high_columns() {
        let cols = columns();
        let gmm = fitted_gmm(&cols);
        let sig = signature_matrix(&gmm, &cols, false);
        // The low column and the high column should put their mass on different components,
        // while the mixed column sits in between.
        let low = sig.row(0);
        let high = sig.row(1);
        let mixed = sig.row(2);
        let low_argmax = if low[0] > low[1] { 0 } else { 1 };
        let high_argmax = if high[0] > high[1] { 0 } else { 1 };
        assert_ne!(low_argmax, high_argmax);
        assert!(low[low_argmax] > 0.9);
        assert!(high[high_argmax] > 0.9);
        assert!((mixed[0] - 0.5).abs() < 0.1);
    }

    #[test]
    fn parallel_and_serial_signatures_agree() {
        // Enough columns to trigger the parallel path.
        let base = columns();
        let mut cols = Vec::new();
        for i in 0..40 {
            let mut c = base[i % 3].clone();
            c.push(i as f64);
            cols.push(c);
        }
        let gmm = fitted_gmm(&cols);
        let serial = signature_matrix(&gmm, &cols, false);
        let parallel = signature_matrix(&gmm, &cols, true);
        assert_eq!(serial.shape(), parallel.shape());
        for r in 0..serial.rows() {
            for c in 0..serial.cols() {
                assert!((serial.get(r, c) - parallel.get(r, c)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn empty_column_list_gives_empty_matrix() {
        let cols = columns();
        let gmm = fitted_gmm(&cols);
        let sig = signature_matrix::<Vec<f64>>(&gmm, &[], false);
        assert_eq!(sig.rows(), 0);
    }

    #[test]
    fn empty_column_signature_is_the_prior() {
        let cols = columns();
        let gmm = fitted_gmm(&cols);
        let with_empty = vec![vec![], cols[0].clone()];
        let sig = signature_matrix(&gmm, &with_empty, false);
        for (a, b) in sig.row(0).iter().zip(gmm.weights()) {
            assert!((a - b).abs() < 1e-12);
        }
    }
}
