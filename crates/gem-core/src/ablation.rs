//! The feature-combination ablation of Figure 3.

use crate::config::FeatureSet;

/// The seven feature combinations evaluated in Figure 3, in the figure's order:
/// D, S, C, D+S, C+S, D+C, D+C+S.
pub fn ablation_feature_sets() -> Vec<FeatureSet> {
    vec![
        FeatureSet::d(),
        FeatureSet::s(),
        FeatureSet::c(),
        FeatureSet::ds(),
        FeatureSet::cs(),
        FeatureSet::dc(),
        FeatureSet::dsc(),
    ]
}

/// One row of the Figure 3 ablation: a feature combination and the average precision it
/// achieved on a dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationResult {
    /// Label of the feature combination ("D", "D+S", ...).
    pub features: String,
    /// Dataset the combination was evaluated on.
    pub dataset: String,
    /// Average precision at k.
    pub average_precision: f64,
}

impl gem_json::ToJson for AblationResult {
    fn to_json(&self) -> gem_json::Json {
        gem_json::object(vec![
            ("features", gem_json::string(&self.features)),
            ("dataset", gem_json::string(&self.dataset)),
            (
                "average_precision",
                gem_json::number(self.average_precision),
            ),
        ])
    }
}

impl gem_json::FromJson for AblationResult {
    fn from_json(value: &gem_json::Json) -> Result<Self, gem_json::JsonError> {
        Ok(AblationResult {
            features: value.str_field("features")?,
            dataset: value.str_field("dataset")?,
            average_precision: value.num_field("average_precision")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_covers_all_seven_combinations_in_figure_order() {
        let sets = ablation_feature_sets();
        assert_eq!(sets.len(), 7);
        let labels: Vec<String> = sets.iter().map(|s| s.label()).collect();
        assert_eq!(labels, vec!["D", "S", "C", "D+S", "C+S", "D+C", "D+C+S"]);
        // All are non-empty and distinct.
        let unique: std::collections::BTreeSet<_> = labels.iter().collect();
        assert_eq!(unique.len(), 7);
        assert!(sets.iter().all(|s| s.is_non_empty()));
    }

    #[test]
    fn ablation_result_is_serializable() {
        use gem_json::{FromJson, Json, ToJson};
        let r = AblationResult {
            features: "D+S".into(),
            dataset: "GDS".into(),
            average_precision: 0.45,
        };
        let json = r.to_json().to_compact_string();
        let back = AblationResult::from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(r, back);
    }
}
