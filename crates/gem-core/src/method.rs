//! The unified method layer: every embedding method in the workspace — Gem itself, its
//! ablation variants and all eight baselines — is exposed behind the [`ColumnEmbedder`] /
//! [`SupervisedColumnEmbedder`] traits and enumerated by a [`MethodRegistry`].
//!
//! The traits used to live in `gem-baselines`, which made Gem itself a special case that
//! every experiment binary had to wire up by hand. Hoisting them into `gem-core` turns
//! "run method X on corpus Y" into a registry lookup, lets the bench harness fan methods
//! out across threads with `gem-parallel`, and gives future subsystems (serving, caching,
//! sharding) a single seam to plug into.

use crate::config::{FeatureSet, GemConfig};
use crate::embedding::{GemColumn, GemEmbedder, GemError};
use gem_numeric::Matrix;

/// An unsupervised embedding method that maps a set of columns to an embedding matrix
/// (one row per input column).
pub trait ColumnEmbedder: Send + Sync {
    /// Short method name used in result tables and for registry lookup.
    fn name(&self) -> &str;

    /// Embed the columns. Implementations must return one row per input column.
    ///
    /// # Errors
    /// Returns a [`GemError`] when the input is degenerate (no columns, no values) or an
    /// internal fit fails.
    fn embed_columns(&self, columns: &[GemColumn]) -> Result<Matrix, GemError>;
}

/// A supervised method that is first trained against semantic-type labels (one label per
/// column) and then produces embeddings from its hidden representation — the protocol the
/// paper uses for Sherlock_SC, Sato_SC and Pythagoras_SC.
pub trait SupervisedColumnEmbedder: Send + Sync {
    /// Short method name used in result tables and for registry lookup.
    fn name(&self) -> &str;

    /// Train on the given columns and labels, then return one embedding row per column.
    ///
    /// Implementations may assume `labels.len() == columns.len()`: [`Method::embed`] — the
    /// seam every registry consumer goes through — rejects mismatched label counts with
    /// [`GemError::LabelCountMismatch`] before dispatching, so per-method re-validation is
    /// unnecessary. Callers invoking an implementation directly must uphold the invariant
    /// themselves.
    ///
    /// # Errors
    /// Returns a [`GemError`] when the input is degenerate or training fails.
    fn fit_embed(&self, columns: &[GemColumn], labels: &[String]) -> Result<Matrix, GemError>;
}

/// A registry entry: an unsupervised or supervised method behind one uniform interface.
pub enum Method {
    /// An unsupervised method.
    Unsupervised(Box<dyn ColumnEmbedder>),
    /// A supervised method (requires labels at embedding time).
    Supervised(Box<dyn SupervisedColumnEmbedder>),
}

impl Method {
    /// The method's name.
    pub fn name(&self) -> &str {
        match self {
            Method::Unsupervised(m) => m.name(),
            Method::Supervised(m) => m.name(),
        }
    }

    /// Whether the method needs training labels.
    pub fn is_supervised(&self) -> bool {
        matches!(self, Method::Supervised(_))
    }

    /// Embed `columns`, passing `labels` to supervised methods. Unsupervised methods
    /// ignore `labels`.
    ///
    /// # Errors
    /// [`GemError::MissingLabels`] when a supervised method is invoked without labels,
    /// [`GemError::LabelCountMismatch`] when the label count differs from the column
    /// count (validated here once, so supervised implementations don't re-check);
    /// otherwise whatever the underlying method reports.
    pub fn embed(
        &self,
        columns: &[GemColumn],
        labels: Option<&[String]>,
    ) -> Result<Matrix, GemError> {
        match self {
            Method::Unsupervised(m) => m.embed_columns(columns),
            Method::Supervised(m) => match labels {
                Some(labels) if labels.len() != columns.len() => {
                    Err(GemError::LabelCountMismatch {
                        method: m.name().to_string(),
                        columns: columns.len(),
                        labels: labels.len(),
                    })
                }
                Some(labels) => m.fit_embed(columns, labels),
                None => Err(GemError::MissingLabels(m.name().to_string())),
            },
        }
    }
}

impl std::fmt::Debug for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Method({:?}, supervised: {})",
            self.name(),
            self.is_supervised()
        )
    }
}

/// A registered method plus its tags (free-form labels like `"numeric-only"` or
/// `"table2"` that experiment harnesses filter on).
pub struct RegisteredMethod {
    method: Method,
    tags: Vec<String>,
}

impl RegisteredMethod {
    /// The underlying method.
    pub fn method(&self) -> &Method {
        &self.method
    }

    /// The method's name.
    pub fn name(&self) -> &str {
        self.method.name()
    }

    /// The method's tags, in registration order.
    pub fn tags(&self) -> &[String] {
        &self.tags
    }

    /// Whether the method carries `tag`.
    pub fn has_tag(&self, tag: &str) -> bool {
        self.tags.iter().any(|t| t == tag)
    }
}

/// An ordered, name-unique collection of embedding methods.
///
/// Iteration yields methods in registration order, so harnesses that register methods in
/// a table's row order can render results without re-sorting. Registering a name twice
/// replaces the earlier entry in place (useful for overriding a default configuration).
#[derive(Default)]
pub struct MethodRegistry {
    entries: Vec<RegisteredMethod>,
}

impl MethodRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MethodRegistry::default()
    }

    /// A registry pre-populated with the Gem method family derived from `config`:
    ///
    /// * `"Gem"` — the full D+S+C pipeline with the configured composition,
    /// * `"Gem (D+S)"` — the numeric-only variant of Table 2 (tag `"numeric-only"`),
    /// * `"SBERT (headers only)"` — the headers-only reference of Table 3,
    /// * `"Gem D+S+C (aggregation)"`, `"Gem D+S+C (AE)"`, `"Gem D+S+C (concatenation)"`
    ///   — the composition comparison of Table 3,
    /// * one variant per Figure 3 feature combination, named by its label (`"D"`,
    ///   `"D+S"`, ... — tag `"ablation"`).
    pub fn with_gem(config: &GemConfig) -> Self {
        let mut registry = MethodRegistry::new();
        registry.register_gem_family(config);
        registry
    }

    /// Register the Gem method family (see [`MethodRegistry::with_gem`]) into an existing
    /// registry. The name → pipeline mapping comes from [`gem_family_variants`], the same
    /// table serving layers consume, so the two can never drift apart.
    pub fn register_gem_family(&mut self, config: &GemConfig) {
        for variant in gem_family_variants(config) {
            let tags: Vec<&str> = variant.tags.to_vec();
            self.register_tagged(
                Method::Unsupervised(Box::new(GemMethod::new(
                    variant.name,
                    variant.config,
                    variant.features,
                ))),
                &tags,
            );
        }
    }

    /// Register a method with no tags. Replaces any earlier entry with the same name.
    pub fn register(&mut self, method: Method) {
        self.register_tagged(method, &[]);
    }

    /// Register a method with tags. Replaces any earlier entry with the same name,
    /// keeping the original position.
    pub fn register_tagged(&mut self, method: Method, tags: &[&str]) {
        let tags: Vec<String> = tags.iter().map(|t| t.to_string()).collect();
        let entry = RegisteredMethod { method, tags };
        match self.entries.iter_mut().find(|e| e.name() == entry.name()) {
            Some(existing) => *existing = entry,
            None => self.entries.push(entry),
        }
    }

    /// Convenience: register an unsupervised method.
    pub fn register_unsupervised(
        &mut self,
        embedder: impl ColumnEmbedder + 'static,
        tags: &[&str],
    ) {
        self.register_tagged(Method::Unsupervised(Box::new(embedder)), tags);
    }

    /// Convenience: register a supervised method.
    pub fn register_supervised(
        &mut self,
        embedder: impl SupervisedColumnEmbedder + 'static,
        tags: &[&str],
    ) {
        self.register_tagged(Method::Supervised(Box::new(embedder)), tags);
    }

    /// Add a tag to an already registered method. Returns `false` when the name is
    /// unknown.
    pub fn add_tag(&mut self, name: &str, tag: &str) -> bool {
        match self.entries.iter_mut().find(|e| e.name() == name) {
            Some(entry) => {
                if !entry.has_tag(tag) {
                    entry.tags.push(tag.to_string());
                }
                true
            }
            None => false,
        }
    }

    /// Look up a method by name.
    pub fn get(&self, name: &str) -> Option<&Method> {
        self.entries
            .iter()
            .find(|e| e.name() == name)
            .map(RegisteredMethod::method)
    }

    /// Look up a method by name, reporting unknown names as a [`GemError`].
    ///
    /// # Errors
    /// [`GemError::UnknownMethod`] when no method carries the name.
    pub fn require(&self, name: &str) -> Result<&Method, GemError> {
        self.get(name)
            .ok_or_else(|| GemError::UnknownMethod(name.to_string()))
    }

    /// All method names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(RegisteredMethod::name).collect()
    }

    /// Iterate over all registered methods.
    pub fn iter(&self) -> impl Iterator<Item = &RegisteredMethod> {
        self.entries.iter()
    }

    /// Iterate over the methods carrying `tag`, in registration order.
    pub fn tagged<'a>(&'a self, tag: &'a str) -> impl Iterator<Item = &'a RegisteredMethod> {
        self.entries.iter().filter(move |e| e.has_tag(tag))
    }

    /// Number of registered methods.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Run every method carrying `tag` on `columns`, fanning the methods out across
    /// threads when `parallel` is true (identical results either way; see
    /// `gem-parallel`). Returns `(name, result)` pairs in registration order.
    pub fn embed_all_tagged(
        &self,
        tag: &str,
        columns: &[GemColumn],
        labels: Option<&[String]>,
        parallel: bool,
    ) -> Vec<(String, Result<Matrix, GemError>)> {
        let selected: Vec<&RegisteredMethod> = self.tagged(tag).collect();
        gem_parallel::par_map(&selected, parallel, |entry| {
            (
                entry.name().to_string(),
                entry.method().embed(columns, labels),
            )
        })
    }
}

impl std::fmt::Debug for MethodRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list()
            .entries(self.entries.iter().map(|e| e.name()))
            .finish()
    }
}

/// One member of the Gem method family: its registry name, the full pipeline
/// configuration and feature set it runs with, and its method-property tags.
#[derive(Debug, Clone)]
pub struct GemVariant {
    /// Registry name (`"Gem"`, `"Gem (D+S)"`, `"D+C+S"`, ...).
    pub name: String,
    /// Pipeline configuration (composition already applied for the Table 3 variants).
    pub config: GemConfig,
    /// Feature set the variant embeds with.
    pub features: FeatureSet,
    /// Method-property tags set at registration.
    pub tags: &'static [&'static str],
}

/// The canonical Gem method family derived from `config`, in the order
/// [`MethodRegistry::register_gem_family`] registers it:
///
/// * `"SBERT (headers only)"` — the headers-only reference of Table 3,
/// * `"Gem (D+S)"` — the numeric-only variant of Table 2,
/// * the three Table 3 composition variants,
/// * one variant per Figure 3 feature combination, named by its label,
/// * `"Gem"` — the full D+S+C pipeline.
///
/// This is the **single source of truth** for the name → pipeline mapping: the registry
/// and the serving layer (`gem-serve`) both build from it, so a renamed method or a
/// changed variant configuration propagates to every consumer.
pub fn gem_family_variants(config: &GemConfig) -> Vec<GemVariant> {
    use crate::compose::Composition;
    let mut variants = vec![
        GemVariant {
            name: "SBERT (headers only)".to_string(),
            config: config.clone(),
            features: FeatureSet::c(),
            tags: &["gem", "headers-only"],
        },
        GemVariant {
            name: "Gem (D+S)".to_string(),
            config: config.clone(),
            features: FeatureSet::ds(),
            tags: &["gem", "numeric-only"],
        },
    ];
    for (name, composition) in [
        ("Gem D+S+C (aggregation)", Composition::Aggregation),
        ("Gem D+S+C (AE)", Composition::autoencoder()),
        ("Gem D+S+C (concatenation)", Composition::Concatenation),
    ] {
        variants.push(GemVariant {
            name: name.to_string(),
            config: config.clone().with_composition(composition),
            features: FeatureSet::dsc(),
            tags: &["gem", "composition"],
        });
    }
    for features in crate::ablation::ablation_feature_sets() {
        variants.push(GemVariant {
            name: features.label(),
            config: config.clone(),
            features,
            tags: &["gem", "ablation"],
        });
    }
    variants.push(GemVariant {
        name: "Gem".to_string(),
        config: config.clone(),
        features: FeatureSet::dsc(),
        tags: &["gem"],
    });
    variants
}

/// A named Gem pipeline configuration (feature set + composition) exposed as a
/// [`ColumnEmbedder`], so ablation variants and baselines share one interface.
#[derive(Debug, Clone)]
pub struct GemMethod {
    name: String,
    embedder: GemEmbedder,
    features: FeatureSet,
}

impl GemMethod {
    /// Create a named Gem variant.
    pub fn new(name: impl Into<String>, config: GemConfig, features: FeatureSet) -> Self {
        GemMethod {
            name: name.into(),
            embedder: GemEmbedder::new(config),
            features,
        }
    }

    /// The feature set this variant embeds with.
    pub fn features(&self) -> FeatureSet {
        self.features
    }
}

impl ColumnEmbedder for GemMethod {
    fn name(&self) -> &str {
        &self.name
    }

    fn embed_columns(&self, columns: &[GemColumn]) -> Result<Matrix, GemError> {
        Ok(self.embedder.embed(columns, self.features)?.matrix)
    }
}

impl ColumnEmbedder for GemEmbedder {
    fn name(&self) -> &str {
        "Gem"
    }

    /// The full Gem pipeline (D+S+C), Algorithm 1 as published.
    fn embed_columns(&self, columns: &[GemColumn]) -> Result<Matrix, GemError> {
        Ok(self.embed_full(columns)?.matrix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn columns() -> Vec<GemColumn> {
        (0..6)
            .map(|c| {
                GemColumn::new(
                    (0..60)
                        .map(|i| (c * 100) as f64 + (i % 17) as f64)
                        .collect(),
                    format!("col_{c}"),
                )
            })
            .collect()
    }

    struct Dummy;

    impl ColumnEmbedder for Dummy {
        fn name(&self) -> &str {
            "Dummy"
        }

        fn embed_columns(&self, columns: &[GemColumn]) -> Result<Matrix, GemError> {
            Ok(Matrix::zeros(columns.len(), 2))
        }
    }

    struct DummySupervised;

    impl SupervisedColumnEmbedder for DummySupervised {
        fn name(&self) -> &str {
            "DummySupervised"
        }

        fn fit_embed(&self, columns: &[GemColumn], labels: &[String]) -> Result<Matrix, GemError> {
            assert_eq!(columns.len(), labels.len());
            Ok(Matrix::zeros(columns.len(), 1))
        }
    }

    #[test]
    fn gem_family_registry_contains_the_expected_names() {
        let registry = MethodRegistry::with_gem(&GemConfig::fast());
        let names = registry.names();
        for expected in [
            "Gem",
            "Gem (D+S)",
            "SBERT (headers only)",
            "Gem D+S+C (aggregation)",
            "Gem D+S+C (AE)",
            "Gem D+S+C (concatenation)",
            "D",
            "D+S",
            "D+C+S",
        ] {
            assert!(names.contains(&expected), "missing {expected}: {names:?}");
        }
        assert_eq!(registry.tagged("ablation").count(), 7);
        assert!(!registry.is_empty());
    }

    #[test]
    fn gem_family_variants_is_the_registry_registration_table() {
        // The registry registers exactly the canonical variant table, in order — this is
        // the single source of truth serving layers also build from.
        let config = GemConfig::fast();
        let registry = MethodRegistry::with_gem(&config);
        let table: Vec<String> = gem_family_variants(&config)
            .into_iter()
            .map(|v| v.name)
            .collect();
        let names: Vec<String> = registry.names().iter().map(|n| n.to_string()).collect();
        assert_eq!(names, table);
        for variant in gem_family_variants(&config) {
            let entry = registry
                .iter()
                .find(|e| e.name() == variant.name)
                .unwrap_or_else(|| panic!("{} missing", variant.name));
            for tag in variant.tags {
                assert!(entry.has_tag(tag), "{} missing tag {tag}", variant.name);
            }
        }
    }

    #[test]
    fn registry_lookup_and_replacement() {
        let mut registry = MethodRegistry::new();
        registry.register_unsupervised(Dummy, &["a"]);
        assert_eq!(registry.len(), 1);
        assert!(registry.get("Dummy").is_some());
        assert!(registry.get("nope").is_none());
        assert!(matches!(
            registry.require("nope"),
            Err(GemError::UnknownMethod(_))
        ));
        // Re-registering the same name replaces in place.
        registry.register_unsupervised(Dummy, &["b"]);
        assert_eq!(registry.len(), 1);
        assert!(registry.iter().next().unwrap().has_tag("b"));
        assert!(!registry.iter().next().unwrap().has_tag("a"));
    }

    #[test]
    fn tags_filter_methods() {
        let mut registry = MethodRegistry::new();
        registry.register_unsupervised(Dummy, &["x"]);
        registry.register_supervised(DummySupervised, &[]);
        assert!(registry.add_tag("DummySupervised", "x"));
        assert!(!registry.add_tag("missing", "x"));
        let tagged: Vec<&str> = registry.tagged("x").map(|e| e.name()).collect();
        assert_eq!(tagged, vec!["Dummy", "DummySupervised"]);
    }

    #[test]
    fn supervised_methods_demand_labels() {
        let mut registry = MethodRegistry::new();
        registry.register_supervised(DummySupervised, &[]);
        let method = registry.get("DummySupervised").unwrap();
        assert!(method.is_supervised());
        let cols = columns();
        assert!(matches!(
            method.embed(&cols, None),
            Err(GemError::MissingLabels(_))
        ));
        let labels: Vec<String> = (0..cols.len()).map(|i| format!("t{i}")).collect();
        let emb = method.embed(&cols, Some(&labels)).unwrap();
        assert_eq!(emb.rows(), cols.len());
    }

    #[test]
    fn label_count_mismatch_is_rejected_before_dispatch() {
        // The check lives in `Method::embed`, so every supervised method gets it without
        // re-validating internally (DummySupervised would panic on its assert otherwise).
        let mut registry = MethodRegistry::new();
        registry.register_supervised(DummySupervised, &[]);
        let method = registry.get("DummySupervised").unwrap();
        let cols = columns();
        let short: Vec<String> = vec!["t".to_string()];
        match method.embed(&cols, Some(&short)) {
            Err(GemError::LabelCountMismatch {
                method,
                columns,
                labels,
            }) => {
                assert_eq!(method, "DummySupervised");
                assert_eq!(columns, cols.len());
                assert_eq!(labels, 1);
            }
            other => panic!("expected LabelCountMismatch, got {other:?}"),
        }
    }

    #[test]
    fn gem_variants_embed_through_the_trait() {
        let registry = MethodRegistry::with_gem(&GemConfig::fast());
        let cols = columns();
        for name in ["Gem", "Gem (D+S)", "D+S", "SBERT (headers only)"] {
            let m = registry.get(name).unwrap();
            assert!(!m.is_supervised());
            let emb = m.embed(&cols, None).unwrap();
            assert_eq!(emb.rows(), cols.len(), "{name}");
            assert!(emb.all_finite(), "{name}");
        }
        // The D+S variant matches the plain embedder output.
        let direct = GemEmbedder::new(GemConfig::fast())
            .embed(&cols, FeatureSet::ds())
            .unwrap()
            .matrix;
        let via_registry = registry
            .get("Gem (D+S)")
            .unwrap()
            .embed(&cols, None)
            .unwrap();
        assert_eq!(direct, via_registry);
    }

    #[test]
    fn embed_all_tagged_parallel_and_serial_agree() {
        let registry = MethodRegistry::with_gem(&GemConfig::fast());
        let cols = columns();
        let serial = registry.embed_all_tagged("ablation", &cols, None, false);
        let parallel = registry.embed_all_tagged("ablation", &cols, None, true);
        assert_eq!(serial.len(), 7);
        assert_eq!(serial.len(), parallel.len());
        for ((n1, r1), (n2, r2)) in serial.iter().zip(parallel.iter()) {
            assert_eq!(n1, n2);
            assert_eq!(r1.as_ref().unwrap(), r2.as_ref().unwrap());
        }
    }

    #[test]
    fn registry_debug_lists_names() {
        let mut registry = MethodRegistry::new();
        registry.register_unsupervised(Dummy, &[]);
        assert!(format!("{registry:?}").contains("Dummy"));
        let m = registry.get("Dummy").unwrap();
        assert!(format!("{m:?}").contains("Dummy"));
    }
}
