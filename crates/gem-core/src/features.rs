//! Statistical feature extraction (§3.2).

use gem_numeric::stats::ColumnStats;
use gem_numeric::Matrix;

/// The names of the seven Gem statistical features, in matrix-column order.
pub const STATISTICAL_FEATURE_NAMES: [&str; 7] = [
    "unique_count",
    "mean",
    "coefficient_of_variation",
    "entropy",
    "range",
    "percentile_10",
    "percentile_90",
];

/// Compute the raw (un-standardised) statistical feature matrix: one row per column, one
/// column per feature in [`STATISTICAL_FEATURE_NAMES`] order.
///
/// Scale-carrying features (mean, range, percentiles, unique count) are passed through a
/// signed `ln(1 + |x|)` squash before the cross-column standardisation of Equation 7.
/// Data-lake corpora mix columns whose scales differ by many orders of magnitude
/// (populations and prices next to ages and ratings); without the squash the z-scores of the
/// few huge-scale columns dominate the feature distribution and every other column collapses
/// onto nearly identical standardised values, which destroys the discriminative power the
/// statistical block is supposed to add (see DESIGN.md §6).
///
/// Empty columns produce an all-zero feature row rather than an error, so a corpus with a
/// degenerate column can still be embedded (the paper's corpora contain short columns, and a
/// pipeline that aborts on one bad column would be unusable on a data lake).
pub fn statistical_feature_matrix<S: AsRef<[f64]>>(columns: &[S]) -> Matrix {
    let n_features = STATISTICAL_FEATURE_NAMES.len();
    let mut out = Matrix::zeros(columns.len(), n_features);
    for (i, values) in columns.iter().enumerate() {
        let values = values.as_ref();
        if values.is_empty() {
            continue;
        }
        if let Ok(stats) = ColumnStats::compute(values) {
            let f = stats.gem_features();
            for (j, v) in f.into_iter().enumerate() {
                // Guard against pathological inputs (e.g. a column of identical ±inf): any
                // non-finite feature is zeroed instead of poisoning the standardisation.
                let v = if v.is_finite() { v } else { 0.0 };
                out.set(i, j, v.signum() * (1.0 + v.abs()).ln());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn squash(x: f64) -> f64 {
        x.signum() * (1.0 + x.abs()).ln()
    }

    #[test]
    fn feature_matrix_shape_and_order() {
        let columns = vec![vec![1.0, 2.0, 3.0, 4.0], vec![10.0, 10.0, 10.0]];
        let m = statistical_feature_matrix(&columns);
        assert_eq!(m.shape(), (2, 7));
        // Column 0: unique count 4, mean 2.5, range 3 — stored log-squashed.
        assert!((m.get(0, 0) - squash(4.0)).abs() < 1e-12);
        assert!((m.get(0, 1) - squash(2.5)).abs() < 1e-12);
        assert!((m.get(0, 4) - squash(3.0)).abs() < 1e-12);
        // Column 1 is constant: unique count 1, range 0, entropy 0, cv 0.
        assert!((m.get(1, 0) - squash(1.0)).abs() < 1e-12);
        assert_eq!(m.get(1, 2), 0.0);
        assert_eq!(m.get(1, 3), 0.0);
        assert_eq!(m.get(1, 4), 0.0);
    }

    #[test]
    fn squash_keeps_feature_ordering_but_compresses_scale() {
        let columns = vec![vec![1.0, 2.0], vec![1.0e6, 2.0e6]];
        let m = statistical_feature_matrix(&columns);
        // The huge-scale column still has the larger mean feature, but the gap is
        // logarithmic rather than six orders of magnitude.
        assert!(m.get(1, 1) > m.get(0, 1));
        assert!(m.get(1, 1) < 20.0);
    }

    #[test]
    fn empty_column_yields_zero_row() {
        let columns = vec![vec![], vec![5.0, 6.0]];
        let m = statistical_feature_matrix(&columns);
        assert!(m.row(0).iter().all(|&v| v == 0.0));
        assert!(m.row(1).iter().any(|&v| v != 0.0));
    }

    #[test]
    fn non_finite_values_do_not_poison_features() {
        let columns = vec![vec![f64::INFINITY, f64::INFINITY]];
        let m = statistical_feature_matrix(&columns);
        assert!(m.all_finite());
    }

    #[test]
    fn feature_names_match_width() {
        assert_eq!(STATISTICAL_FEATURE_NAMES.len(), 7);
        let m = statistical_feature_matrix(&[vec![1.0]]);
        assert_eq!(m.cols(), STATISTICAL_FEATURE_NAMES.len());
    }
}
