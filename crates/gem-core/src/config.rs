//! Configuration of the Gem pipeline.

use crate::compose::Composition;
use gem_gmm::GmmConfig;
use gem_json::{number, object, FromJson, Json, JsonError, ToJson};

/// Which of Gem's three evidence types participate in an embedding.
///
/// Figure 3 of the paper ablates all seven non-empty combinations of
/// distributional (D), statistical (S) and contextual (C) features.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeatureSet {
    /// Include the GMM signature (distributional) block.
    pub distributional: bool,
    /// Include the statistical feature block.
    pub statistical: bool,
    /// Include the header (contextual) block.
    pub contextual: bool,
}

impl FeatureSet {
    /// Distributional only (D).
    pub fn d() -> Self {
        FeatureSet {
            distributional: true,
            statistical: false,
            contextual: false,
        }
    }

    /// Statistical only (S).
    pub fn s() -> Self {
        FeatureSet {
            distributional: false,
            statistical: true,
            contextual: false,
        }
    }

    /// Contextual only (C).
    pub fn c() -> Self {
        FeatureSet {
            distributional: false,
            statistical: false,
            contextual: true,
        }
    }

    /// Distributional + statistical (D+S) — the numeric-only Gem of Table 2.
    pub fn ds() -> Self {
        FeatureSet {
            distributional: true,
            statistical: true,
            contextual: false,
        }
    }

    /// Contextual + statistical (C+S).
    pub fn cs() -> Self {
        FeatureSet {
            distributional: false,
            statistical: true,
            contextual: true,
        }
    }

    /// Distributional + contextual (D+C).
    pub fn dc() -> Self {
        FeatureSet {
            distributional: true,
            statistical: false,
            contextual: true,
        }
    }

    /// All three (D+S+C) — the full Gem of Table 3.
    pub fn dsc() -> Self {
        FeatureSet {
            distributional: true,
            statistical: true,
            contextual: true,
        }
    }

    /// Short label used in tables and figures ("D", "D+S", "D+C+S", ...). The ordering of
    /// the letters follows Figure 3 of the paper.
    pub fn label(&self) -> String {
        let mut parts = Vec::new();
        if self.distributional {
            parts.push("D");
        }
        if self.contextual && !self.statistical {
            // Figure 3 writes the two-way contextual combinations as C+S and D+C.
            parts.push("C");
        }
        if self.statistical {
            parts.push("S");
        }
        if self.contextual && self.statistical {
            if self.distributional {
                return "D+C+S".to_string();
            }
            return "C+S".to_string();
        }
        if parts.is_empty() {
            return "none".to_string();
        }
        parts.join("+")
    }

    /// Whether at least one evidence type is selected.
    pub fn is_non_empty(&self) -> bool {
        self.distributional || self.statistical || self.contextual
    }
}

/// Full configuration of the Gem pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct GemConfig {
    /// Configuration of the shared GMM fitted over the stacked values (paper default:
    /// 50 components, tolerance 1e-3, 10 restarts).
    pub gmm: GmmConfig,
    /// Dimensionality of the header (contextual) embeddings.
    pub text_dim: usize,
    /// How the selected feature blocks are merged into the final embedding.
    pub composition: Composition,
    /// Compute per-column signatures on multiple threads. The signature step is
    /// embarrassingly parallel over columns; this is what keeps Gem's runtime growth
    /// sub-linear in practice (Figure 5).
    pub parallel: bool,
}

impl Default for GemConfig {
    fn default() -> Self {
        GemConfig {
            gmm: GmmConfig::default(),
            text_dim: gem_text::DEFAULT_TEXT_DIM,
            composition: Composition::Concatenation,
            parallel: true,
        }
    }
}

impl GemConfig {
    /// Default configuration with a custom number of Gaussian components.
    pub fn with_components(n_components: usize) -> Self {
        GemConfig {
            gmm: GmmConfig::with_components(n_components),
            ..GemConfig::default()
        }
    }

    /// A light configuration for tests: few components, few restarts.
    pub fn fast() -> Self {
        GemConfig {
            gmm: GmmConfig::with_components(8).restarts(2),
            text_dim: 64,
            composition: Composition::Concatenation,
            parallel: false,
        }
    }

    /// Builder-style composition override.
    pub fn with_composition(mut self, composition: Composition) -> Self {
        self.composition = composition;
        self
    }

    /// Builder-style parallelism override.
    pub fn with_parallel(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }
}

impl ToJson for FeatureSet {
    fn to_json(&self) -> Json {
        object(vec![
            ("distributional", Json::Bool(self.distributional)),
            ("statistical", Json::Bool(self.statistical)),
            ("contextual", Json::Bool(self.contextual)),
        ])
    }
}

impl FromJson for FeatureSet {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let flag = |key: &str| -> Result<bool, JsonError> {
            value
                .field(key)?
                .as_bool()
                .ok_or_else(|| JsonError::conversion(format!("field `{key}` is not a bool")))
        };
        Ok(FeatureSet {
            distributional: flag("distributional")?,
            statistical: flag("statistical")?,
            contextual: flag("contextual")?,
        })
    }
}

/// Persistence of the full pipeline configuration — stored inside every saved
/// [`crate::GemModel`] so a reloaded model carries exactly the configuration it was
/// fitted with (and therefore fingerprints to the same cache key).
impl ToJson for GemConfig {
    fn to_json(&self) -> Json {
        object(vec![
            ("gmm", self.gmm.to_json()),
            ("text_dim", number(self.text_dim as f64)),
            ("composition", self.composition.to_json()),
            ("parallel", Json::Bool(self.parallel)),
        ])
    }
}

impl FromJson for GemConfig {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(GemConfig {
            gmm: GmmConfig::from_json(value.field("gmm")?)?,
            text_dim: value.num_field("text_dim")? as usize,
            composition: Composition::from_json(value.field("composition")?)?,
            parallel: value
                .field("parallel")?
                .as_bool()
                .ok_or_else(|| JsonError::conversion("field `parallel` is not a bool"))?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_parameters() {
        let c = GemConfig::default();
        assert_eq!(c.gmm.n_components, 50);
        assert_eq!(c.gmm.n_restarts, 10);
        assert_eq!(c.gmm.tolerance, 1e-3);
        assert_eq!(c.composition, Composition::Concatenation);
    }

    #[test]
    fn feature_set_constructors_and_labels() {
        assert_eq!(FeatureSet::d().label(), "D");
        assert_eq!(FeatureSet::s().label(), "S");
        assert_eq!(FeatureSet::c().label(), "C");
        assert_eq!(FeatureSet::ds().label(), "D+S");
        assert_eq!(FeatureSet::cs().label(), "C+S");
        assert_eq!(FeatureSet::dc().label(), "D+C");
        assert_eq!(FeatureSet::dsc().label(), "D+C+S");
        assert!(FeatureSet::d().is_non_empty());
        let empty = FeatureSet {
            distributional: false,
            statistical: false,
            contextual: false,
        };
        assert!(!empty.is_non_empty());
        assert_eq!(empty.label(), "none");
    }

    #[test]
    fn builders() {
        let c = GemConfig::with_components(10)
            .with_composition(Composition::Aggregation)
            .with_parallel(false);
        assert_eq!(c.gmm.n_components, 10);
        assert_eq!(c.composition, Composition::Aggregation);
        assert!(!c.parallel);
        assert!(GemConfig::fast().gmm.n_components < 20);
    }

    #[test]
    fn feature_set_and_config_round_trip_through_json() {
        for features in crate::ablation_feature_sets() {
            let text = features.to_json().to_compact_string();
            let back = FeatureSet::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, features);
        }
        for config in [
            GemConfig::default(),
            GemConfig::fast(),
            GemConfig::with_components(12)
                .with_composition(Composition::autoencoder())
                .with_parallel(false),
        ] {
            let text = config.to_json().to_pretty_string();
            let back = GemConfig::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, config);
        }
    }

    #[test]
    fn config_decoding_reports_missing_and_mistyped_fields() {
        let mut pairs = match GemConfig::fast().to_json() {
            Json::Object(pairs) => pairs,
            _ => unreachable!(),
        };
        pairs.retain(|(k, _)| k != "parallel");
        assert!(GemConfig::from_json(&Json::Object(pairs.clone())).is_err());
        pairs.push(("parallel".into(), number(1.0)));
        assert!(GemConfig::from_json(&Json::Object(pairs)).is_err());
    }
}
