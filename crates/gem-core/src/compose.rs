//! Composition of the distributional, statistical and contextual embedding blocks (§4.2.2).
//!
//! The paper evaluates three ways of merging the blocks into one vector per column:
//! concatenation (Equations 11/13), aggregation into a single summary representation, and an
//! autoencoder that learns a compressed latent representation of the concatenated vector.
//! Table 3 finds concatenation best, aggregation close behind and the autoencoder slightly
//! behind that — the bench binary for Table 3 reproduces that comparison.

use gem_json::{number, object, string, FromJson, Json, JsonError, ToJson};
use gem_nn::{Autoencoder, AutoencoderConfig, Optimizer};
use gem_numeric::Matrix;

/// How the selected feature blocks are merged into the final per-column embedding.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Composition {
    /// Side-by-side concatenation of the blocks (the paper's default and best performer).
    Concatenation,
    /// Element-wise mean of the blocks after zero-padding them to a common width. This
    /// mirrors the paper's "aggregation summarises the embeddings into a single
    /// representation" and deliberately loses the block identity, which is why it trails
    /// concatenation.
    Aggregation,
    /// Concatenate, then compress with a small autoencoder into `latent_dim` dimensions.
    Autoencoder {
        /// Latent dimensionality of the compressed embedding.
        latent_dim: usize,
        /// Training epochs for the autoencoder.
        epochs: usize,
    },
}

impl Composition {
    /// Autoencoder composition with the defaults used in the Table 3 reproduction.
    pub fn autoencoder() -> Self {
        Composition::Autoencoder {
            latent_dim: 32,
            epochs: 150,
        }
    }

    /// Short label used in result tables.
    pub fn label(&self) -> &'static str {
        match self {
            Composition::Concatenation => "concatenation",
            Composition::Aggregation => "aggregation",
            Composition::Autoencoder { .. } => "AE",
        }
    }
}

impl ToJson for Composition {
    fn to_json(&self) -> Json {
        match self {
            Composition::Concatenation => object(vec![("kind", string("concatenation"))]),
            Composition::Aggregation => object(vec![("kind", string("aggregation"))]),
            Composition::Autoencoder { latent_dim, epochs } => object(vec![
                ("kind", string("autoencoder")),
                ("latent_dim", number(*latent_dim as f64)),
                ("epochs", number(*epochs as f64)),
            ]),
        }
    }
}

impl FromJson for Composition {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value.str_field("kind")?.as_str() {
            "concatenation" => Ok(Composition::Concatenation),
            "aggregation" => Ok(Composition::Aggregation),
            "autoencoder" => Ok(Composition::Autoencoder {
                latent_dim: value.num_field("latent_dim")? as usize,
                epochs: value.num_field("epochs")? as usize,
            }),
            other => Err(JsonError::conversion(format!(
                "unknown composition kind `{other}`"
            ))),
        }
    }
}

/// Merge the given blocks (each: one row per column) according to the composition method.
/// Blocks must all have the same number of rows. An empty block list yields an empty matrix.
///
/// # Panics
/// Panics when the blocks disagree on the number of rows.
pub fn compose(blocks: &[&Matrix], method: Composition) -> Matrix {
    if blocks.is_empty() {
        return Matrix::zeros(0, 0);
    }
    let rows = blocks[0].rows();
    assert!(
        blocks.iter().all(|b| b.rows() == rows),
        "all embedding blocks must describe the same columns"
    );
    match method {
        Composition::Concatenation => concat_blocks(blocks),
        Composition::Aggregation => aggregate_blocks(blocks),
        Composition::Autoencoder { latent_dim, epochs } => {
            let concatenated = concat_blocks(blocks);
            autoencode(&concatenated, latent_dim, epochs)
        }
    }
}

pub(crate) fn concat_blocks(blocks: &[&Matrix]) -> Matrix {
    let mut out = blocks[0].clone();
    for b in &blocks[1..] {
        out = out.hconcat(b).expect("row counts checked by compose");
    }
    out
}

fn aggregate_blocks(blocks: &[&Matrix]) -> Matrix {
    let rows = blocks[0].rows();
    let width = blocks.iter().map(|b| b.cols()).max().unwrap_or(0);
    let mut out = Matrix::zeros(rows, width);
    for b in blocks {
        for r in 0..rows {
            for c in 0..b.cols() {
                out.set(r, c, out.get(r, c) + b.get(r, c));
            }
        }
    }
    out.scale(1.0 / blocks.len() as f64)
}

fn autoencode(concatenated: &Matrix, latent_dim: usize, epochs: usize) -> Matrix {
    if concatenated.rows() == 0 || concatenated.cols() == 0 {
        return Matrix::zeros(concatenated.rows(), latent_dim);
    }
    let ae = fit_autoencoder(concatenated, latent_dim, epochs);
    ae.encode(concatenated)
}

/// Train the composition autoencoder on a concatenated block matrix. Split out of
/// [`compose`] so a fitted [`crate::GemModel`] can train the autoencoder once at fit time
/// and reuse the frozen weights for every subsequent transform; encoding the training
/// matrix with the returned autoencoder is bit-identical to the one-shot
/// [`Composition::Autoencoder`] path.
pub(crate) fn fit_autoencoder(
    concatenated: &Matrix,
    latent_dim: usize,
    epochs: usize,
) -> Autoencoder {
    let latent_dim = latent_dim.max(1).min(concatenated.cols());
    let mut config = AutoencoderConfig::new(concatenated.cols(), latent_dim);
    config.epochs = epochs;
    config.optimizer = Optimizer::adam(5e-3);
    config.seed = 29;
    let mut ae = Autoencoder::new(config);
    ae.fit(concatenated);
    ae
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blocks() -> (Matrix, Matrix) {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![10.0], vec![20.0]]).unwrap();
        (a, b)
    }

    #[test]
    fn concatenation_preserves_all_information() {
        let (a, b) = blocks();
        let out = compose(&[&a, &b], Composition::Concatenation);
        assert_eq!(out.shape(), (2, 3));
        assert_eq!(out.row(0), &[1.0, 2.0, 10.0]);
        assert_eq!(out.row(1), &[3.0, 4.0, 20.0]);
    }

    #[test]
    fn aggregation_zero_pads_then_averages() {
        let (a, b) = blocks();
        let out = compose(&[&a, &b], Composition::Aggregation);
        assert_eq!(out.shape(), (2, 2));
        // First column: (1 + 10)/2; second: (2 + 0)/2.
        assert_eq!(out.get(0, 0), 5.5);
        assert_eq!(out.get(0, 1), 1.0);
    }

    #[test]
    fn autoencoder_compresses_to_latent_dim() {
        let rows: Vec<Vec<f64>> = (0..30)
            .map(|i| {
                let x = i as f64 / 10.0;
                vec![
                    x.sin(),
                    x.cos(),
                    x.sin() * 2.0,
                    1.0 - x.cos(),
                    x.sin() + x.cos(),
                    0.5 * x.sin(),
                ]
            })
            .collect();
        let m = Matrix::from_rows(&rows).unwrap();
        let out = compose(
            &[&m],
            Composition::Autoencoder {
                latent_dim: 2,
                epochs: 120,
            },
        );
        assert_eq!(out.shape(), (30, 2));
        assert!(out.all_finite());
    }

    #[test]
    fn empty_block_list_yields_empty_matrix() {
        let out = compose(&[], Composition::Concatenation);
        assert_eq!(out.shape(), (0, 0));
    }

    #[test]
    #[should_panic(expected = "same columns")]
    fn mismatched_row_counts_panic() {
        let a = Matrix::zeros(2, 2);
        let b = Matrix::zeros(3, 2);
        compose(&[&a, &b], Composition::Concatenation);
    }

    #[test]
    fn labels() {
        assert_eq!(Composition::Concatenation.label(), "concatenation");
        assert_eq!(Composition::Aggregation.label(), "aggregation");
        assert_eq!(Composition::autoencoder().label(), "AE");
    }

    #[test]
    fn single_block_concatenation_is_identity() {
        let (a, _) = blocks();
        assert_eq!(compose(&[&a], Composition::Concatenation), a);
        assert_eq!(compose(&[&a], Composition::Aggregation), a);
    }

    #[test]
    fn composition_round_trips_through_json() {
        for composition in [
            Composition::Concatenation,
            Composition::Aggregation,
            Composition::autoencoder(),
            Composition::Autoencoder {
                latent_dim: 5,
                epochs: 17,
            },
        ] {
            let text = composition.to_json().to_compact_string();
            let back = Composition::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, composition);
        }
        let bad = object(vec![("kind", string("pca"))]);
        assert!(Composition::from_json(&bad).is_err());
    }
}
