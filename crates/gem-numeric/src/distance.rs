//! Similarity and distance functions between embedding vectors.
//!
//! The paper's semantic-type-detection evaluation (§4.1.2) ranks columns by cosine
//! similarity between their embedding vectors and takes the top-k neighbours; this module
//! provides the cosine similarity, the full pairwise similarity matrix and the Euclidean
//! distance used by the clustering substrate.

use crate::error::{NumericError, NumericResult};
use crate::matrix::Matrix;

/// Cosine similarity between two vectors. Returns 0 when either vector has zero norm.
///
/// # Errors
/// Returns [`NumericError::DimensionMismatch`] when the lengths differ.
pub fn cosine_similarity(a: &[f64], b: &[f64]) -> NumericResult<f64> {
    if a.len() != b.len() {
        return Err(NumericError::DimensionMismatch {
            operation: "cosine_similarity",
            left: (1, a.len()),
            right: (1, b.len()),
        });
    }
    let mut dot = 0.0;
    let mut na = 0.0;
    let mut nb = 0.0;
    for (&x, &y) in a.iter().zip(b.iter()) {
        dot += x * y;
        na += x * x;
        nb += y * y;
    }
    if na < 1e-300 || nb < 1e-300 {
        return Ok(0.0);
    }
    Ok(dot / (na.sqrt() * nb.sqrt()))
}

/// Euclidean distance between two vectors.
///
/// # Errors
/// Returns [`NumericError::DimensionMismatch`] when the lengths differ.
pub fn euclidean_distance(a: &[f64], b: &[f64]) -> NumericResult<f64> {
    if a.len() != b.len() {
        return Err(NumericError::DimensionMismatch {
            operation: "euclidean_distance",
            left: (1, a.len()),
            right: (1, b.len()),
        });
    }
    Ok(a.iter()
        .zip(b.iter())
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt())
}

/// Squared Euclidean distance (avoids the square root in hot clustering loops).
///
/// # Errors
/// Returns [`NumericError::DimensionMismatch`] when the lengths differ.
pub fn squared_euclidean_distance(a: &[f64], b: &[f64]) -> NumericResult<f64> {
    if a.len() != b.len() {
        return Err(NumericError::DimensionMismatch {
            operation: "squared_euclidean_distance",
            left: (1, a.len()),
            right: (1, b.len()),
        });
    }
    Ok(a.iter()
        .zip(b.iter())
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>())
}

/// Full pairwise cosine-similarity matrix between the rows of an embedding matrix.
///
/// The result is symmetric with ones on the diagonal (for non-zero rows).
pub fn similarity_matrix(embeddings: &Matrix) -> Matrix {
    let n = embeddings.rows();
    let mut out = Matrix::zeros(n, n);
    // Pre-compute row norms once.
    let norms: Vec<f64> = embeddings
        .iter_rows()
        .map(|r| r.iter().map(|x| x * x).sum::<f64>().sqrt())
        .collect();
    for i in 0..n {
        out.set(i, i, if norms[i] > 1e-300 { 1.0 } else { 0.0 });
        for j in (i + 1)..n {
            let sim = if norms[i] < 1e-300 || norms[j] < 1e-300 {
                0.0
            } else {
                let dot: f64 = embeddings
                    .row(i)
                    .iter()
                    .zip(embeddings.row(j).iter())
                    .map(|(a, b)| a * b)
                    .sum();
                dot / (norms[i] * norms[j])
            };
            out.set(i, j, sim);
            out.set(j, i, sim);
        }
    }
    out
}

/// Indices of the `k` most similar rows to `query_row` in a precomputed similarity matrix,
/// excluding the query row itself, ordered by decreasing similarity.
pub fn top_k_neighbors(similarity: &Matrix, query_row: usize, k: usize) -> Vec<usize> {
    let n = similarity.rows();
    let mut indexed: Vec<(usize, f64)> = (0..n)
        .filter(|&j| j != query_row)
        .map(|j| (j, similarity.get(query_row, j)))
        .collect();
    indexed.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    indexed.into_iter().take(k).map(|(j, _)| j).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn cosine_identical_and_orthogonal() {
        assert!((cosine_similarity(&[1.0, 2.0], &[1.0, 2.0]).unwrap() - 1.0).abs() < EPS);
        assert!((cosine_similarity(&[1.0, 0.0], &[0.0, 1.0]).unwrap()).abs() < EPS);
        assert!((cosine_similarity(&[1.0, 0.0], &[-1.0, 0.0]).unwrap() + 1.0).abs() < EPS);
    }

    #[test]
    fn cosine_scale_invariant() {
        let a = [0.3, 0.7, 1.5];
        let b = [0.6, 1.4, 3.0];
        assert!((cosine_similarity(&a, &b).unwrap() - 1.0).abs() < EPS);
    }

    #[test]
    fn cosine_zero_vector_is_zero() {
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 2.0]).unwrap(), 0.0);
    }

    #[test]
    fn cosine_mismatch_errors() {
        assert!(cosine_similarity(&[1.0], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn euclidean_basics() {
        assert!((euclidean_distance(&[0.0, 0.0], &[3.0, 4.0]).unwrap() - 5.0).abs() < EPS);
        assert!((squared_euclidean_distance(&[0.0, 0.0], &[3.0, 4.0]).unwrap() - 25.0).abs() < EPS);
        assert!(euclidean_distance(&[1.0], &[1.0, 2.0]).is_err());
        assert!(squared_euclidean_distance(&[1.0], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn similarity_matrix_symmetric_with_unit_diagonal() {
        let m = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]]).unwrap();
        let s = similarity_matrix(&m);
        assert_eq!(s.shape(), (3, 3));
        for i in 0..3 {
            assert!((s.get(i, i) - 1.0).abs() < EPS);
            for j in 0..3 {
                assert!((s.get(i, j) - s.get(j, i)).abs() < EPS);
            }
        }
        assert!((s.get(0, 2) - 1.0 / 2.0f64.sqrt()).abs() < EPS);
    }

    #[test]
    fn similarity_matrix_zero_row() {
        let m = Matrix::from_rows(&[vec![0.0, 0.0], vec![1.0, 1.0]]).unwrap();
        let s = similarity_matrix(&m);
        assert_eq!(s.get(0, 0), 0.0);
        assert_eq!(s.get(0, 1), 0.0);
    }

    #[test]
    fn top_k_neighbors_excludes_self_and_orders_by_similarity() {
        let m = Matrix::from_rows(&[
            vec![1.0, 0.0],
            vec![0.9, 0.1],
            vec![0.0, 1.0],
            vec![0.7, 0.3],
        ])
        .unwrap();
        let s = similarity_matrix(&m);
        let nn = top_k_neighbors(&s, 0, 2);
        assert_eq!(nn.len(), 2);
        assert!(!nn.contains(&0));
        assert_eq!(nn[0], 1); // most similar to row 0
        assert_eq!(nn[1], 3);
    }

    #[test]
    fn top_k_larger_than_population_returns_all_others() {
        let m = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        let s = similarity_matrix(&m);
        let nn = top_k_neighbors(&s, 1, 10);
        assert_eq!(nn.len(), 2);
    }
}
