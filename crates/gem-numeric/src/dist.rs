//! The seven reference distributions of the Kolmogorov–Smirnov baseline (§4.1.3 of the
//! paper): normal, uniform, exponential, beta, gamma, log-normal and logistic, each with a
//! PDF, a CDF and a moment-based fit.
//!
//! [`fit_reference_distributions`] fits every *feasible* family to a sample; families whose
//! support cannot contain the data (e.g. a log-normal fitted to non-positive values) are
//! skipped, which the KS baseline translates into the maximal distance 1.0.

use crate::error::{NumericError, NumericResult};
use crate::special::{
    erf, incomplete_beta_regularized, ln_gamma, lower_incomplete_gamma_regularized,
};
use crate::stats;

/// A continuous distribution with a density and a cumulative distribution function.
pub trait ContinuousDistribution {
    /// Family name ("normal", "uniform", ...), matching [`reference_family_names`].
    fn name(&self) -> &'static str;

    /// Probability density at `x` (0 outside the support).
    fn pdf(&self, x: f64) -> f64;

    /// Cumulative probability `P(X <= x)`.
    fn cdf(&self, x: f64) -> f64;
}

/// The names of the seven reference families, in the order the KS feature vector uses.
pub fn reference_family_names() -> [&'static str; 7] {
    [
        "normal",
        "uniform",
        "exponential",
        "beta",
        "gamma",
        "lognormal",
        "logistic",
    ]
}

fn invalid(name: &'static str, reason: &str) -> NumericError {
    NumericError::InvalidParameter {
        name,
        reason: reason.to_string(),
    }
}

/// Gaussian distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NormalDist {
    /// Mean.
    pub mean: f64,
    /// Standard deviation (strictly positive).
    pub std: f64,
}

impl NormalDist {
    /// Create a normal distribution.
    ///
    /// # Errors
    /// Fails when `std` is not strictly positive and finite.
    pub fn new(mean: f64, std: f64) -> NumericResult<Self> {
        if !(std.is_finite() && std > 0.0 && mean.is_finite()) {
            return Err(invalid("std", "normal std must be finite and > 0"));
        }
        Ok(NormalDist { mean, std })
    }
}

impl ContinuousDistribution for NormalDist {
    fn name(&self) -> &'static str {
        "normal"
    }

    fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / self.std;
        (-0.5 * z * z).exp() / (self.std * (2.0 * std::f64::consts::PI).sqrt())
    }

    fn cdf(&self, x: f64) -> f64 {
        0.5 * (1.0 + erf((x - self.mean) / (self.std * std::f64::consts::SQRT_2)))
    }
}

/// Uniform distribution on `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformDist {
    /// Lower bound.
    pub lo: f64,
    /// Upper bound (strictly greater than `lo`).
    pub hi: f64,
}

impl UniformDist {
    /// Create a uniform distribution.
    ///
    /// # Errors
    /// Fails unless `lo < hi` and both are finite.
    pub fn new(lo: f64, hi: f64) -> NumericResult<Self> {
        if !(lo.is_finite() && hi.is_finite() && lo < hi) {
            return Err(invalid("bounds", "uniform requires finite lo < hi"));
        }
        Ok(UniformDist { lo, hi })
    }
}

impl ContinuousDistribution for UniformDist {
    fn name(&self) -> &'static str {
        "uniform"
    }

    fn pdf(&self, x: f64) -> f64 {
        if (self.lo..=self.hi).contains(&x) {
            1.0 / (self.hi - self.lo)
        } else {
            0.0
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        ((x - self.lo) / (self.hi - self.lo)).clamp(0.0, 1.0)
    }
}

/// Exponential distribution with rate `lambda` (support `x >= 0`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExponentialDist {
    /// Rate parameter (strictly positive).
    pub rate: f64,
}

impl ExponentialDist {
    /// Create an exponential distribution.
    ///
    /// # Errors
    /// Fails unless `rate` is strictly positive and finite.
    pub fn new(rate: f64) -> NumericResult<Self> {
        if !(rate.is_finite() && rate > 0.0) {
            return Err(invalid("rate", "exponential rate must be finite and > 0"));
        }
        Ok(ExponentialDist { rate })
    }
}

impl ContinuousDistribution for ExponentialDist {
    fn name(&self) -> &'static str {
        "exponential"
    }

    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            self.rate * (-self.rate * x).exp()
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            1.0 - (-self.rate * x).exp()
        }
    }
}

/// Beta distribution generalised to the support `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BetaDist {
    /// First shape parameter (strictly positive).
    pub alpha: f64,
    /// Second shape parameter (strictly positive).
    pub beta: f64,
    /// Lower support bound.
    pub lo: f64,
    /// Upper support bound (strictly greater than `lo`).
    pub hi: f64,
}

impl BetaDist {
    /// Create a beta distribution on `[0, 1]`.
    ///
    /// # Errors
    /// Fails unless both shapes are strictly positive and finite.
    pub fn new(alpha: f64, beta: f64) -> NumericResult<Self> {
        Self::scaled(alpha, beta, 0.0, 1.0)
    }

    /// Create a beta distribution rescaled to `[lo, hi]`.
    ///
    /// # Errors
    /// Fails unless both shapes are strictly positive and `lo < hi`.
    pub fn scaled(alpha: f64, beta: f64, lo: f64, hi: f64) -> NumericResult<Self> {
        if !(alpha.is_finite() && alpha > 0.0 && beta.is_finite() && beta > 0.0) {
            return Err(invalid("shape", "beta shapes must be finite and > 0"));
        }
        if !(lo.is_finite() && hi.is_finite() && lo < hi) {
            return Err(invalid("bounds", "beta support requires finite lo < hi"));
        }
        Ok(BetaDist {
            alpha,
            beta,
            lo,
            hi,
        })
    }

    fn unit_position(&self, x: f64) -> f64 {
        (x - self.lo) / (self.hi - self.lo)
    }
}

impl ContinuousDistribution for BetaDist {
    fn name(&self) -> &'static str {
        "beta"
    }

    fn pdf(&self, x: f64) -> f64 {
        let t = self.unit_position(x);
        if !(0.0..=1.0).contains(&t) {
            return 0.0;
        }
        let ln_b = ln_gamma(self.alpha) + ln_gamma(self.beta) - ln_gamma(self.alpha + self.beta);
        let ln_pdf = (self.alpha - 1.0) * t.max(1e-300).ln()
            + (self.beta - 1.0) * (1.0 - t).max(1e-300).ln()
            - ln_b;
        ln_pdf.exp() / (self.hi - self.lo)
    }

    fn cdf(&self, x: f64) -> f64 {
        let t = self.unit_position(x).clamp(0.0, 1.0);
        incomplete_beta_regularized(self.alpha, self.beta, t)
    }
}

/// Gamma distribution with shape `k` and scale `theta` (support `x >= 0`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GammaDist {
    /// Shape parameter (strictly positive).
    pub shape: f64,
    /// Scale parameter (strictly positive).
    pub scale: f64,
}

impl GammaDist {
    /// Create a gamma distribution.
    ///
    /// # Errors
    /// Fails unless shape and scale are strictly positive and finite.
    pub fn new(shape: f64, scale: f64) -> NumericResult<Self> {
        if !(shape.is_finite() && shape > 0.0 && scale.is_finite() && scale > 0.0) {
            return Err(invalid("shape", "gamma requires shape > 0 and scale > 0"));
        }
        Ok(GammaDist { shape, scale })
    }
}

impl ContinuousDistribution for GammaDist {
    fn name(&self) -> &'static str {
        "gamma"
    }

    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let ln_pdf = (self.shape - 1.0) * x.ln()
            - x / self.scale
            - ln_gamma(self.shape)
            - self.shape * self.scale.ln();
        ln_pdf.exp()
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            lower_incomplete_gamma_regularized(self.shape, x / self.scale)
        }
    }
}

/// Log-normal distribution (support `x > 0`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormalDist {
    /// Mean of `ln X`.
    pub mu: f64,
    /// Standard deviation of `ln X` (strictly positive).
    pub sigma: f64,
}

impl LogNormalDist {
    /// Create a log-normal distribution.
    ///
    /// # Errors
    /// Fails unless `sigma` is strictly positive and finite.
    pub fn new(mu: f64, sigma: f64) -> NumericResult<Self> {
        if !(sigma.is_finite() && sigma > 0.0 && mu.is_finite()) {
            return Err(invalid("sigma", "lognormal sigma must be finite and > 0"));
        }
        Ok(LogNormalDist { mu, sigma })
    }
}

impl ContinuousDistribution for LogNormalDist {
    fn name(&self) -> &'static str {
        "lognormal"
    }

    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let z = (x.ln() - self.mu) / self.sigma;
        (-0.5 * z * z).exp() / (x * self.sigma * (2.0 * std::f64::consts::PI).sqrt())
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            0.5 * (1.0 + erf((x.ln() - self.mu) / (self.sigma * std::f64::consts::SQRT_2)))
        }
    }
}

/// Logistic distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogisticDist {
    /// Location (the mean).
    pub location: f64,
    /// Scale parameter (strictly positive).
    pub scale: f64,
}

impl LogisticDist {
    /// Create a logistic distribution.
    ///
    /// # Errors
    /// Fails unless `scale` is strictly positive and finite.
    pub fn new(location: f64, scale: f64) -> NumericResult<Self> {
        if !(scale.is_finite() && scale > 0.0 && location.is_finite()) {
            return Err(invalid("scale", "logistic scale must be finite and > 0"));
        }
        Ok(LogisticDist { location, scale })
    }
}

impl ContinuousDistribution for LogisticDist {
    fn name(&self) -> &'static str {
        "logistic"
    }

    fn pdf(&self, x: f64) -> f64 {
        // The pdf is symmetric in z, so evaluate with exp(-|z|): the naive form overflows
        // to inf/inf = NaN for z below about -709.
        let e = (-((x - self.location) / self.scale).abs()).exp();
        e / (self.scale * (1.0 + e) * (1.0 + e))
    }

    fn cdf(&self, x: f64) -> f64 {
        1.0 / (1.0 + (-(x - self.location) / self.scale).exp())
    }
}

/// Fit every feasible reference family to `values` by the method of moments.
///
/// Families whose support cannot contain the data are skipped:
/// * exponential — needs non-negative values,
/// * gamma and log-normal — need strictly positive values,
/// * uniform and beta — need a non-degenerate range,
/// * normal and logistic — need a non-zero standard deviation.
///
/// # Errors
/// Returns [`NumericError::EmptyInput`] when `values` has no finite entries.
pub fn fit_reference_distributions(
    values: &[f64],
) -> NumericResult<Vec<Box<dyn ContinuousDistribution>>> {
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() {
        return Err(NumericError::EmptyInput {
            operation: "fit_reference_distributions",
        });
    }
    let mean = stats::mean(&finite)?;
    let var = stats::variance(&finite)?;
    let std = var.sqrt();
    let min = stats::min(&finite)?;
    let max = stats::max(&finite)?;

    let mut out: Vec<Box<dyn ContinuousDistribution>> = Vec::with_capacity(7);

    if std > 0.0 {
        if let Ok(d) = NormalDist::new(mean, std) {
            out.push(Box::new(d));
        }
        if let Ok(d) = LogisticDist::new(mean, std * 3f64.sqrt() / std::f64::consts::PI) {
            out.push(Box::new(d));
        }
    }
    if max > min {
        if let Ok(d) = UniformDist::new(min, max) {
            out.push(Box::new(d));
        }
        // Beta on the observed range, shapes by the method of moments on min-max scaled
        // data. Guard the common-formula precondition var_scaled < mean_scaled (1 - mean).
        let width = max - min;
        let m = (mean - min) / width;
        let v = (var / (width * width)).max(1e-12);
        if v < m * (1.0 - m) {
            let factor = m * (1.0 - m) / v - 1.0;
            if let Ok(d) = BetaDist::scaled(m * factor, (1.0 - m) * factor, min, max) {
                out.push(Box::new(d));
            }
        }
    }
    if min >= 0.0 && mean > 0.0 {
        if let Ok(d) = ExponentialDist::new(1.0 / mean) {
            out.push(Box::new(d));
        }
    }
    if min > 0.0 {
        if var > 0.0 && mean > 0.0 {
            if let Ok(d) = GammaDist::new(mean * mean / var, var / mean) {
                out.push(Box::new(d));
            }
        }
        let logs: Vec<f64> = finite.iter().map(|v| v.ln()).collect();
        let mu = stats::mean(&logs)?;
        let sigma = stats::variance(&logs)?.sqrt();
        if sigma > 0.0 {
            if let Ok(d) = LogNormalDist::new(mu, sigma) {
                out.push(Box::new(d));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-7;

    #[test]
    fn normal_cdf_matches_known_values() {
        let d = NormalDist::new(0.0, 1.0).unwrap();
        assert!((d.cdf(0.0) - 0.5).abs() < EPS);
        assert!((d.cdf(1.959_963_985) - 0.975).abs() < 1e-6);
        assert!((d.cdf(-1.959_963_985) - 0.025).abs() < 1e-6);
        assert!(d.pdf(0.0) > d.pdf(1.0));
        assert_eq!(d.name(), "normal");
    }

    #[test]
    fn uniform_cdf_is_linear_and_clamped() {
        let d = UniformDist::new(2.0, 4.0).unwrap();
        assert_eq!(d.cdf(1.0), 0.0);
        assert_eq!(d.cdf(5.0), 1.0);
        assert!((d.cdf(3.0) - 0.5).abs() < EPS);
        assert_eq!(d.pdf(1.0), 0.0);
        assert!((d.pdf(3.0) - 0.5).abs() < EPS);
    }

    #[test]
    fn exponential_cdf_matches_closed_form() {
        let d = ExponentialDist::new(2.0).unwrap();
        assert_eq!(d.cdf(-1.0), 0.0);
        assert!((d.cdf(0.5) - (1.0 - (-1.0f64).exp())).abs() < EPS);
    }

    #[test]
    fn gamma_cdf_reduces_to_exponential_for_shape_one() {
        let g = GammaDist::new(1.0, 0.5).unwrap();
        let e = ExponentialDist::new(2.0).unwrap();
        for x in [0.1, 0.5, 1.0, 3.0] {
            assert!((g.cdf(x) - e.cdf(x)).abs() < 1e-9, "x = {x}");
        }
    }

    #[test]
    fn beta_cdf_is_symmetric_for_equal_shapes() {
        let d = BetaDist::new(2.0, 2.0).unwrap();
        assert!((d.cdf(0.5) - 0.5).abs() < EPS);
        assert!((d.cdf(0.25) + d.cdf(0.75) - 1.0).abs() < 1e-9);
        let scaled = BetaDist::scaled(2.0, 2.0, 10.0, 20.0).unwrap();
        assert!((scaled.cdf(15.0) - 0.5).abs() < EPS);
    }

    #[test]
    fn lognormal_cdf_median_is_exp_mu() {
        let d = LogNormalDist::new(1.0, 0.5).unwrap();
        assert!((d.cdf(1.0f64.exp()) - 0.5).abs() < EPS);
        assert_eq!(d.cdf(0.0), 0.0);
        assert_eq!(d.pdf(-1.0), 0.0);
    }

    #[test]
    fn logistic_cdf_midpoint_and_monotonicity() {
        let d = LogisticDist::new(3.0, 1.5).unwrap();
        assert!((d.cdf(3.0) - 0.5).abs() < EPS);
        assert!(d.cdf(4.0) > d.cdf(3.0));
        assert!(d.pdf(3.0) > d.pdf(6.0));
        // Far tails must underflow to 0, not overflow to NaN.
        assert_eq!(d.pdf(-5000.0), 0.0);
        assert_eq!(d.pdf(5000.0), 0.0);
    }

    #[test]
    fn constructors_reject_invalid_parameters() {
        assert!(NormalDist::new(0.0, 0.0).is_err());
        assert!(UniformDist::new(1.0, 1.0).is_err());
        assert!(ExponentialDist::new(-1.0).is_err());
        assert!(BetaDist::new(0.0, 1.0).is_err());
        assert!(GammaDist::new(1.0, f64::NAN).is_err());
        assert!(LogNormalDist::new(0.0, -0.1).is_err());
        assert!(LogisticDist::new(0.0, 0.0).is_err());
    }

    #[test]
    fn cdfs_are_monotone_and_bounded() {
        let dists: Vec<Box<dyn ContinuousDistribution>> = vec![
            Box::new(NormalDist::new(1.0, 2.0).unwrap()),
            Box::new(UniformDist::new(-1.0, 3.0).unwrap()),
            Box::new(ExponentialDist::new(0.7).unwrap()),
            Box::new(BetaDist::scaled(2.0, 5.0, 0.0, 10.0).unwrap()),
            Box::new(GammaDist::new(2.5, 1.3).unwrap()),
            Box::new(LogNormalDist::new(0.0, 1.0).unwrap()),
            Box::new(LogisticDist::new(0.0, 1.0).unwrap()),
        ];
        for d in &dists {
            let mut prev = 0.0;
            for i in -40..=40 {
                let x = i as f64 * 0.5;
                let c = d.cdf(x);
                assert!((0.0..=1.0).contains(&c), "{} cdf({x}) = {c}", d.name());
                assert!(c + 1e-12 >= prev, "{} not monotone at {x}", d.name());
                prev = c;
            }
        }
    }

    #[test]
    fn fitting_positive_data_yields_all_seven_families() {
        let values: Vec<f64> = (1..200).map(|i| 1.0 + (i % 37) as f64 * 0.7).collect();
        let fitted = fit_reference_distributions(&values).unwrap();
        let names: Vec<&str> = fitted.iter().map(|d| d.name()).collect();
        for family in reference_family_names() {
            assert!(names.contains(&family), "missing {family}");
        }
    }

    #[test]
    fn fitting_skips_infeasible_families() {
        let values: Vec<f64> = (-50..50).map(|i| i as f64).collect();
        let fitted = fit_reference_distributions(&values).unwrap();
        let names: Vec<&str> = fitted.iter().map(|d| d.name()).collect();
        assert!(names.contains(&"normal"));
        assert!(names.contains(&"uniform"));
        assert!(!names.contains(&"exponential"));
        assert!(!names.contains(&"gamma"));
        assert!(!names.contains(&"lognormal"));
    }

    #[test]
    fn fitting_rejects_empty_or_non_finite_input() {
        assert!(fit_reference_distributions(&[]).is_err());
        assert!(fit_reference_distributions(&[f64::NAN, f64::INFINITY]).is_err());
        // A constant column only supports the degenerate-free families.
        let fitted = fit_reference_distributions(&[5.0; 20]).unwrap();
        assert!(!fitted.iter().any(|d| d.name() == "normal"));
    }

    #[test]
    fn fitted_normal_matches_sample_moments() {
        let values: Vec<f64> = (0..1000)
            .map(|i| 10.0 + ((i * 17) % 100) as f64 * 0.1)
            .collect();
        let fitted = fit_reference_distributions(&values).unwrap();
        let normal = fitted.iter().find(|d| d.name() == "normal").unwrap();
        let m = stats::mean(&values).unwrap();
        // The CDF at the sample mean of a fitted normal is exactly one half.
        assert!((normal.cdf(m) - 0.5).abs() < 1e-9);
    }
}
