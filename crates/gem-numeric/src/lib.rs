//! # gem-numeric
//!
//! Numerical substrate for the Gem reproduction (EDBT 2025, "Gem: Gaussian Mixture Model
//! Embeddings for Numerical Feature Distributions").
//!
//! Everything in this crate is implemented from scratch on `f64` slices and a small dense
//! row-major [`Matrix`] type. The crate provides:
//!
//! * [`vector`] — element-wise vector arithmetic, norms and normalisation (the paper's
//!   Equations 7, 9 and 10 are built on these primitives).
//! * [`matrix`] — a dense row-major matrix used for embedding matrices, responsibilities
//!   and the neural-network substrate.
//! * [`stats`] — descriptive statistics of a numeric column: mean, variance, coefficient
//!   of variation, entropy, range, percentiles, unique count (the statistical features of
//!   §3.2 of the paper).
//! * [`special`] — special functions (`erf`, `ln_gamma`, regularised incomplete gamma and
//!   beta) needed by the reference CDFs.
//! * [`dist`] — the seven reference distributions used by the Kolmogorov–Smirnov baseline
//!   (normal, uniform, exponential, beta, gamma, log-normal, logistic) with PDF/CDF.
//! * [`histogram`] / [`kde`] — histogram and Gaussian kernel density estimation (Figure 1).
//! * [`distance`] — cosine similarity and similarity matrices used by the top-k retrieval
//!   evaluation.
//! * [`standardize`] — feature standardisation (z-score) and L1/L2 normalisation.
//!
//! The crate is deliberately dependency-light so that the higher layers (GMM, neural nets,
//! baselines) are built on a single, well-tested numeric foundation.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod dist;
pub mod distance;
pub mod error;
pub mod histogram;
pub mod kde;
pub mod matrix;
pub mod special;
pub mod standardize;
pub mod stats;
pub mod vector;

pub use dist::{
    BetaDist, ContinuousDistribution, ExponentialDist, GammaDist, LogNormalDist, LogisticDist,
    NormalDist, UniformDist,
};
pub use distance::{cosine_similarity, euclidean_distance, similarity_matrix};
pub use error::NumericError;
pub use histogram::Histogram;
pub use kde::KernelDensityEstimate;
pub use matrix::Matrix;
pub use standardize::{l1_normalize, l2_normalize, standardize_columns, standardize_vector};
pub use stats::ColumnStats;
