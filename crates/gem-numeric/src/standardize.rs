//! Feature standardisation and vector normalisation.
//!
//! Implements the three normalisation steps of §3.2 / §3.3 of the paper:
//!
//! * Equation 7 — z-score standardisation of the statistical feature vectors (computed
//!   *across columns*, so each feature has zero mean and unit variance over the corpus),
//! * Equation 9 — L1 normalisation of the augmented per-column vector,
//! * Equation 10 — L1 normalisation of header embeddings.

use crate::error::{NumericError, NumericResult};
use crate::matrix::Matrix;
use crate::vector::{norm_l1, norm_l2};

/// Standardise a single vector to zero mean / unit variance (Equation 7 applied to one
/// feature vector). Constant vectors are returned as all zeros.
pub fn standardize_vector(values: &[f64]) -> Vec<f64> {
    if values.is_empty() {
        return Vec::new();
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    let std = var.sqrt();
    if std < 1e-12 {
        return vec![0.0; values.len()];
    }
    values.iter().map(|x| (x - mean) / std).collect()
}

/// Standardise every column of a feature matrix (rows = table columns, cols = features) to
/// zero mean / unit variance across rows. Constant feature columns become zero.
///
/// This is how Gem applies Equation 7 in practice: the statistical features of all table
/// columns are standardised jointly so the features are comparable across columns.
pub fn standardize_columns(features: &Matrix) -> Matrix {
    let (rows, cols) = features.shape();
    if rows == 0 || cols == 0 {
        return features.clone();
    }
    let mut out = Matrix::zeros(rows, cols);
    for c in 0..cols {
        let col = features.column(c);
        let std_col = standardize_vector(&col);
        for (r, v) in std_col.into_iter().enumerate() {
            out.set(r, c, v);
        }
    }
    out
}

/// L1-normalise a vector (Equations 9 and 10). Vectors with zero L1 norm are returned
/// unchanged (all zeros stay all zeros).
pub fn l1_normalize(values: &[f64]) -> Vec<f64> {
    let norm = norm_l1(values);
    if norm < 1e-300 {
        return values.to_vec();
    }
    values.iter().map(|x| x / norm).collect()
}

/// L2-normalise a vector. Vectors with zero norm are returned unchanged.
pub fn l2_normalize(values: &[f64]) -> Vec<f64> {
    let norm = norm_l2(values);
    if norm < 1e-300 {
        return values.to_vec();
    }
    values.iter().map(|x| x / norm).collect()
}

/// Min–max scale a vector into `[0, 1]`. Constant vectors map to all `0.5`.
pub fn min_max_scale(values: &[f64]) -> Vec<f64> {
    if values.is_empty() {
        return Vec::new();
    }
    let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if (hi - lo).abs() < 1e-300 {
        return vec![0.5; values.len()];
    }
    values.iter().map(|x| (x - lo) / (hi - lo)).collect()
}

/// L1-normalise every row of a matrix (used for embedding matrices).
pub fn l1_normalize_rows(matrix: &Matrix) -> Matrix {
    let rows: Vec<Vec<f64>> = matrix.iter_rows().map(l1_normalize).collect();
    Matrix::from_rows(&rows).unwrap_or_else(|_| matrix.clone())
}

/// L2-normalise every row of a matrix.
pub fn l2_normalize_rows(matrix: &Matrix) -> Matrix {
    let rows: Vec<Vec<f64>> = matrix.iter_rows().map(l2_normalize).collect();
    Matrix::from_rows(&rows).unwrap_or_else(|_| matrix.clone())
}

/// Standardise rows of a feature matrix using per-feature statistics fitted on a reference
/// matrix (used when applying a trained pipeline to new columns).
///
/// # Errors
/// Returns [`NumericError::DimensionMismatch`] when the column counts differ.
pub fn standardize_with_reference(target: &Matrix, reference: &Matrix) -> NumericResult<Matrix> {
    if target.cols() != reference.cols() {
        return Err(NumericError::DimensionMismatch {
            operation: "standardize_with_reference",
            left: target.shape(),
            right: reference.shape(),
        });
    }
    let cols = target.cols();
    let mut means = vec![0.0; cols];
    let mut stds = vec![0.0; cols];
    for c in 0..cols {
        let col = reference.column(c);
        let n = col.len() as f64;
        let mean = col.iter().sum::<f64>() / n;
        let var = col.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        means[c] = mean;
        stds[c] = var.sqrt();
    }
    let mut out = Matrix::zeros(target.rows(), cols);
    for r in 0..target.rows() {
        for c in 0..cols {
            let v = if stds[c] < 1e-12 {
                0.0
            } else {
                (target.get(r, c) - means[c]) / stds[c]
            };
            out.set(r, c, v);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-9;

    #[test]
    fn standardize_vector_zero_mean_unit_var() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        let s = standardize_vector(&v);
        let mean: f64 = s.iter().sum::<f64>() / s.len() as f64;
        let var: f64 = s.iter().map(|x| x * x).sum::<f64>() / s.len() as f64;
        assert!(mean.abs() < EPS);
        assert!((var - 1.0).abs() < EPS);
    }

    #[test]
    fn standardize_constant_vector_is_zero() {
        assert_eq!(standardize_vector(&[7.0, 7.0, 7.0]), vec![0.0, 0.0, 0.0]);
        assert!(standardize_vector(&[]).is_empty());
    }

    #[test]
    fn standardize_columns_per_feature() {
        let m = Matrix::from_rows(&[vec![1.0, 100.0], vec![2.0, 200.0], vec![3.0, 300.0]]).unwrap();
        let s = standardize_columns(&m);
        for c in 0..2 {
            let col = s.column(c);
            let mean: f64 = col.iter().sum::<f64>() / 3.0;
            assert!(mean.abs() < EPS);
        }
        // both features end up on the same scale
        assert!((s.get(0, 0) - s.get(0, 1)).abs() < EPS);
    }

    #[test]
    fn l1_normalize_sums_to_one() {
        let v = [1.0, 2.0, 3.0, 4.0];
        let n = l1_normalize(&v);
        assert!((n.iter().sum::<f64>() - 1.0).abs() < EPS);
        // zero vector stays zero
        assert_eq!(l1_normalize(&[0.0, 0.0]), vec![0.0, 0.0]);
    }

    #[test]
    fn l1_normalize_with_negative_entries() {
        let v = [-1.0, 1.0, 2.0];
        let n = l1_normalize(&v);
        let abs_sum: f64 = n.iter().map(|x| x.abs()).sum();
        assert!((abs_sum - 1.0).abs() < EPS);
    }

    #[test]
    fn l2_normalize_unit_norm() {
        let v = [3.0, 4.0];
        let n = l2_normalize(&v);
        assert!((n[0] - 0.6).abs() < EPS);
        assert!((n[1] - 0.8).abs() < EPS);
        assert_eq!(l2_normalize(&[0.0]), vec![0.0]);
    }

    #[test]
    fn min_max_scale_bounds() {
        let v = [10.0, 20.0, 15.0];
        let s = min_max_scale(&v);
        assert_eq!(s, vec![0.0, 1.0, 0.5]);
        assert_eq!(min_max_scale(&[4.0, 4.0]), vec![0.5, 0.5]);
        assert!(min_max_scale(&[]).is_empty());
    }

    #[test]
    fn normalize_rows_of_matrix() {
        let m = Matrix::from_rows(&[vec![1.0, 3.0], vec![2.0, 2.0]]).unwrap();
        let l1 = l1_normalize_rows(&m);
        for r in 0..2 {
            assert!((l1.row(r).iter().sum::<f64>() - 1.0).abs() < EPS);
        }
        let l2 = l2_normalize_rows(&m);
        for r in 0..2 {
            let n: f64 = l2.row(r).iter().map(|x| x * x).sum::<f64>().sqrt();
            assert!((n - 1.0).abs() < EPS);
        }
    }

    #[test]
    fn standardize_with_reference_uses_reference_statistics() {
        let reference = Matrix::from_rows(&[vec![0.0], vec![10.0]]).unwrap(); // mean 5, std 5
        let target = Matrix::from_rows(&[vec![5.0], vec![15.0]]).unwrap();
        let s = standardize_with_reference(&target, &reference).unwrap();
        assert!((s.get(0, 0)).abs() < EPS);
        assert!((s.get(1, 0) - 2.0).abs() < EPS);
        let bad = Matrix::zeros(2, 3);
        assert!(standardize_with_reference(&bad, &reference).is_err());
    }
}
