//! Special functions used by the reference distributions.
//!
//! The Kolmogorov–Smirnov baseline (§4.1.3 of the paper) compares each column's empirical
//! CDF with seven theoretical distributions. Their CDFs need the error function, the
//! log-gamma function and the regularised incomplete gamma/beta functions, all of which are
//! implemented here from scratch with accuracy sufficient for goodness-of-fit statistics
//! (absolute error well below 1e-8 over the tested domain).

/// Error function `erf(x)`, computed from the regularised lower incomplete gamma function
/// `P(1/2, x²)` for accuracy better than the classic Abramowitz–Stegun polynomial.
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    let v = lower_incomplete_gamma_regularized(0.5, x * x);
    if x > 0.0 {
        v
    } else {
        -v
    }
}

/// Complementary error function `erfc(x) = 1 - erf(x)`.
pub fn erfc(x: f64) -> f64 {
    1.0 - erf(x)
}

/// Natural log of the gamma function, Lanczos approximation (g = 7, n = 9).
///
/// Accurate to ~1e-13 for positive arguments; negative non-integer arguments are handled via
/// the reflection formula.
pub fn ln_gamma(x: f64) -> f64 {
    const G: f64 = 7.0;
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1−x) = π / sin(πx)
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEFFS[0];
    let t = x + G + 0.5;
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularised lower incomplete gamma function `P(a, x) = γ(a, x) / Γ(a)`.
///
/// Uses the series expansion for `x < a + 1` and the continued fraction for the upper tail
/// otherwise (Numerical Recipes `gammp`/`gammq` structure).
pub fn lower_incomplete_gamma_regularized(a: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if a <= 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        gamma_series(a, x)
    } else {
        1.0 - gamma_continued_fraction(a, x)
    }
}

/// Regularised upper incomplete gamma function `Q(a, x) = 1 - P(a, x)`.
pub fn upper_incomplete_gamma_regularized(a: f64, x: f64) -> f64 {
    1.0 - lower_incomplete_gamma_regularized(a, x)
}

fn gamma_series(a: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 500;
    const EPS: f64 = 1e-15;
    let gln = ln_gamma(a);
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * EPS {
            break;
        }
    }
    sum * (-x + a * x.ln() - gln).exp()
}

fn gamma_continued_fraction(a: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 500;
    const EPS: f64 = 1e-15;
    const FPMIN: f64 = 1e-300;
    let gln = ln_gamma(a);
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    (-x + a * x.ln() - gln).exp() * h
}

/// Regularised incomplete beta function `I_x(a, b)`, via the continued-fraction expansion
/// (Numerical Recipes `betai`).
pub fn incomplete_beta_regularized(a: f64, b: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_beta = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b);
    let front = (ln_beta + a * x.ln() + b * (1.0 - x).ln()).exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_continued_fraction(a, b, x) / a
    } else {
        1.0 - front * beta_continued_fraction(b, a, 1.0 - x) / b
    }
}

fn beta_continued_fraction(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 500;
    const EPS: f64 = 1e-15;
    const FPMIN: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_known_values() {
        // Reference values from standard tables.
        assert!((erf(0.0)).abs() < 1e-12);
        assert!((erf(0.5) - 0.520_499_877_8).abs() < 1e-8);
        assert!((erf(1.0) - 0.842_700_792_9).abs() < 1e-8);
        assert!((erf(2.0) - 0.995_322_265_0).abs() < 1e-8);
        assert!((erf(-1.0) + 0.842_700_792_9).abs() < 1e-8);
    }

    #[test]
    fn erfc_complements_erf() {
        for x in [-2.0, -0.3, 0.0, 0.7, 1.5, 3.0] {
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn ln_gamma_factorials() {
        // Γ(n) = (n-1)!
        assert!((ln_gamma(1.0)).abs() < 1e-10);
        assert!((ln_gamma(2.0)).abs() < 1e-10);
        assert!((ln_gamma(5.0) - (24.0f64).ln()).abs() < 1e-10);
        assert!((ln_gamma(10.0) - (362_880.0f64).ln()).abs() < 1e-9);
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = sqrt(pi)
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn incomplete_gamma_boundaries() {
        assert_eq!(lower_incomplete_gamma_regularized(2.0, 0.0), 0.0);
        assert!((lower_incomplete_gamma_regularized(2.0, 1e8) - 1.0).abs() < 1e-10);
        // P(1, x) = 1 - e^{-x}
        for x in [0.1f64, 0.5, 1.0, 2.5, 7.0] {
            let expected = 1.0 - (-x).exp();
            assert!((lower_incomplete_gamma_regularized(1.0, x) - expected).abs() < 1e-10);
        }
    }

    #[test]
    fn upper_gamma_complements_lower() {
        for (a, x) in [(0.5, 0.2), (2.0, 3.0), (5.0, 1.0)] {
            let p = lower_incomplete_gamma_regularized(a, x);
            let q = upper_incomplete_gamma_regularized(a, x);
            assert!((p + q - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn incomplete_beta_boundaries_and_symmetry() {
        assert_eq!(incomplete_beta_regularized(2.0, 3.0, 0.0), 0.0);
        assert_eq!(incomplete_beta_regularized(2.0, 3.0, 1.0), 1.0);
        // I_x(a, b) = 1 - I_{1-x}(b, a)
        for (a, b, x) in [(2.0, 3.0, 0.4), (0.5, 0.5, 0.7), (5.0, 1.5, 0.2)] {
            let lhs = incomplete_beta_regularized(a, b, x);
            let rhs = 1.0 - incomplete_beta_regularized(b, a, 1.0 - x);
            assert!((lhs - rhs).abs() < 1e-10);
        }
    }

    #[test]
    fn incomplete_beta_uniform_case() {
        // I_x(1, 1) = x
        for x in [0.1, 0.25, 0.5, 0.9] {
            assert!((incomplete_beta_regularized(1.0, 1.0, x) - x).abs() < 1e-10);
        }
    }

    #[test]
    fn incomplete_beta_known_value() {
        // I_{0.5}(2, 2) = 0.5 by symmetry
        assert!((incomplete_beta_regularized(2.0, 2.0, 0.5) - 0.5).abs() < 1e-10);
        // I_{0.25}(2, 2) = 3x^2 - 2x^3 evaluated CDF of Beta(2,2): 0.15625
        assert!((incomplete_beta_regularized(2.0, 2.0, 0.25) - 0.15625).abs() < 1e-10);
    }

    #[test]
    fn erf_is_monotone() {
        let mut prev = erf(-3.0);
        let mut x = -3.0;
        while x <= 3.0 {
            let v = erf(x);
            assert!(v + 1e-14 >= prev);
            prev = v;
            x += 0.05;
        }
    }
}
