//! Element-wise vector arithmetic, norms and normalisation on `&[f64]` slices.
//!
//! These primitives underlie the paper's normalisation equations:
//!
//! * Equation 7 — standardisation of statistical feature vectors (see [`crate::standardize`]),
//! * Equation 9 — L1 normalisation of the augmented feature vector,
//! * Equation 10 — L1 normalisation of the header embedding,
//! * Equation 11/13 — concatenation of the component embeddings.

use crate::error::{NumericError, NumericResult};

/// Dot product of two equal-length vectors.
///
/// # Errors
/// Returns [`NumericError::DimensionMismatch`] when the lengths differ.
pub fn dot(a: &[f64], b: &[f64]) -> NumericResult<f64> {
    if a.len() != b.len() {
        return Err(NumericError::DimensionMismatch {
            operation: "dot",
            left: (1, a.len()),
            right: (1, b.len()),
        });
    }
    Ok(a.iter().zip(b.iter()).map(|(x, y)| x * y).sum())
}

/// L1 norm (sum of absolute values).
pub fn norm_l1(a: &[f64]) -> f64 {
    a.iter().map(|x| x.abs()).sum()
}

/// L2 (Euclidean) norm.
pub fn norm_l2(a: &[f64]) -> f64 {
    a.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// Element-wise sum of two vectors.
///
/// # Errors
/// Returns [`NumericError::DimensionMismatch`] when the lengths differ.
pub fn add(a: &[f64], b: &[f64]) -> NumericResult<Vec<f64>> {
    if a.len() != b.len() {
        return Err(NumericError::DimensionMismatch {
            operation: "add",
            left: (1, a.len()),
            right: (1, b.len()),
        });
    }
    Ok(a.iter().zip(b.iter()).map(|(x, y)| x + y).collect())
}

/// Element-wise difference `a - b`.
///
/// # Errors
/// Returns [`NumericError::DimensionMismatch`] when the lengths differ.
pub fn sub(a: &[f64], b: &[f64]) -> NumericResult<Vec<f64>> {
    if a.len() != b.len() {
        return Err(NumericError::DimensionMismatch {
            operation: "sub",
            left: (1, a.len()),
            right: (1, b.len()),
        });
    }
    Ok(a.iter().zip(b.iter()).map(|(x, y)| x - y).collect())
}

/// Scale every element by `factor`.
pub fn scale(a: &[f64], factor: f64) -> Vec<f64> {
    a.iter().map(|x| x * factor).collect()
}

/// Element-wise (Hadamard) product.
///
/// # Errors
/// Returns [`NumericError::DimensionMismatch`] when the lengths differ.
pub fn hadamard(a: &[f64], b: &[f64]) -> NumericResult<Vec<f64>> {
    if a.len() != b.len() {
        return Err(NumericError::DimensionMismatch {
            operation: "hadamard",
            left: (1, a.len()),
            right: (1, b.len()),
        });
    }
    Ok(a.iter().zip(b.iter()).map(|(x, y)| x * y).collect())
}

/// Concatenate any number of vectors into a single owned vector.
///
/// This is the `[a ∥ b ∥ ...]` operation of Equations 8, 11 and 13 of the paper.
pub fn concat(parts: &[&[f64]]) -> Vec<f64> {
    let total: usize = parts.iter().map(|p| p.len()).sum();
    let mut out = Vec::with_capacity(total);
    for p in parts {
        out.extend_from_slice(p);
    }
    out
}

/// Element-wise mean of several equal-length vectors (used by the *aggregation* composition
/// method of §4.2.2).
///
/// # Errors
/// Returns [`NumericError::EmptyInput`] for an empty collection and
/// [`NumericError::DimensionMismatch`] when lengths differ.
pub fn mean_of(parts: &[&[f64]]) -> NumericResult<Vec<f64>> {
    if parts.is_empty() {
        return Err(NumericError::EmptyInput {
            operation: "mean_of",
        });
    }
    let len = parts[0].len();
    let mut acc = vec![0.0; len];
    for p in parts {
        if p.len() != len {
            return Err(NumericError::DimensionMismatch {
                operation: "mean_of",
                left: (1, len),
                right: (1, p.len()),
            });
        }
        for (a, x) in acc.iter_mut().zip(p.iter()) {
            *a += x;
        }
    }
    let n = parts.len() as f64;
    for a in acc.iter_mut() {
        *a /= n;
    }
    Ok(acc)
}

/// Sum of all elements.
pub fn sum(a: &[f64]) -> f64 {
    a.iter().sum()
}

/// Index of the maximum element. Returns `None` for an empty slice; NaNs are ignored unless
/// every element is NaN, in which case index 0 is returned.
pub fn argmax(a: &[f64]) -> Option<usize> {
    if a.is_empty() {
        return None;
    }
    let mut best = 0usize;
    let mut best_val = f64::NEG_INFINITY;
    for (i, &v) in a.iter().enumerate() {
        if v > best_val {
            best_val = v;
            best = i;
        }
    }
    Some(best)
}

/// Index of the minimum element. Returns `None` for an empty slice.
pub fn argmin(a: &[f64]) -> Option<usize> {
    if a.is_empty() {
        return None;
    }
    let mut best = 0usize;
    let mut best_val = f64::INFINITY;
    for (i, &v) in a.iter().enumerate() {
        if v < best_val {
            best_val = v;
            best = i;
        }
    }
    Some(best)
}

/// Numerically stable log-sum-exp: `ln(Σ exp(a_i))`.
///
/// Used by the EM implementation to normalise responsibilities in log space without
/// underflow when component densities are tiny.
pub fn log_sum_exp(a: &[f64]) -> f64 {
    if a.is_empty() {
        return f64::NEG_INFINITY;
    }
    let m = a.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if !m.is_finite() {
        return m;
    }
    let s: f64 = a.iter().map(|x| (x - m).exp()).sum();
    m + s.ln()
}

/// Returns `true` when every element is finite.
pub fn all_finite(a: &[f64]) -> bool {
    a.iter().all(|x| x.is_finite())
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn dot_basic() {
        assert!((dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]).unwrap() - 32.0).abs() < EPS);
    }

    #[test]
    fn dot_mismatch_errors() {
        assert!(dot(&[1.0], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn norms() {
        assert!((norm_l1(&[-1.0, 2.0, -3.0]) - 6.0).abs() < EPS);
        assert!((norm_l2(&[3.0, 4.0]) - 5.0).abs() < EPS);
        assert_eq!(norm_l1(&[]), 0.0);
        assert_eq!(norm_l2(&[]), 0.0);
    }

    #[test]
    fn add_sub_scale() {
        assert_eq!(add(&[1.0, 2.0], &[3.0, 4.0]).unwrap(), vec![4.0, 6.0]);
        assert_eq!(sub(&[1.0, 2.0], &[3.0, 4.0]).unwrap(), vec![-2.0, -2.0]);
        assert_eq!(scale(&[1.0, 2.0], 2.5), vec![2.5, 5.0]);
        assert!(add(&[1.0], &[1.0, 2.0]).is_err());
        assert!(sub(&[1.0], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn hadamard_basic() {
        assert_eq!(
            hadamard(&[1.0, 2.0, 3.0], &[2.0, 0.5, -1.0]).unwrap(),
            vec![2.0, 1.0, -3.0]
        );
    }

    #[test]
    fn concat_preserves_order() {
        let a = [1.0, 2.0];
        let b = [3.0];
        let c = [4.0, 5.0];
        assert_eq!(concat(&[&a, &b, &c]), vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        assert!(concat(&[]).is_empty());
    }

    #[test]
    fn mean_of_vectors() {
        let a = [1.0, 2.0];
        let b = [3.0, 4.0];
        assert_eq!(mean_of(&[&a, &b]).unwrap(), vec![2.0, 3.0]);
        assert!(mean_of(&[]).is_err());
        let short = [1.0];
        assert!(mean_of(&[&a, &short]).is_err());
    }

    #[test]
    fn argmax_argmin() {
        assert_eq!(argmax(&[1.0, 5.0, 3.0]), Some(1));
        assert_eq!(argmin(&[1.0, 5.0, -3.0]), Some(2));
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmin(&[]), None);
    }

    #[test]
    fn log_sum_exp_matches_direct_computation() {
        let a = [0.1f64, 0.5, -0.3];
        let direct: f64 = a.iter().map(|x| x.exp()).sum::<f64>().ln();
        assert!((log_sum_exp(&a) - direct).abs() < 1e-10);
    }

    #[test]
    fn log_sum_exp_handles_large_negatives_without_underflow() {
        let a = [-1000.0, -1000.0];
        // direct computation underflows to ln(0) = -inf; the stable version keeps precision.
        let v = log_sum_exp(&a);
        assert!((v - (-1000.0 + (2.0f64).ln())).abs() < 1e-9);
    }

    #[test]
    fn log_sum_exp_empty_is_neg_infinity() {
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
    }

    #[test]
    fn all_finite_detects_nan_and_inf() {
        assert!(all_finite(&[1.0, 2.0]));
        assert!(!all_finite(&[1.0, f64::NAN]));
        assert!(!all_finite(&[f64::INFINITY]));
    }
}
