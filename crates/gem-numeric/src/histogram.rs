//! Equal-width histograms.
//!
//! Figure 1 of the paper shows histogram + KDE overlays for four numeric columns whose
//! shapes overlap but whose semantics differ; the `figure1` bench binary regenerates those
//! series with this type. Histograms are also used internally for the entropy feature and
//! for summarising synthetic columns in tests.

use crate::error::{NumericError, NumericResult};

/// An equal-width histogram over a closed interval.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Lower edge of the first bin.
    pub min: f64,
    /// Upper edge of the last bin.
    pub max: f64,
    /// Width of each bin.
    pub bin_width: f64,
    /// Raw counts per bin.
    pub counts: Vec<usize>,
    /// Total number of observations.
    pub total: usize,
}

impl Histogram {
    /// Build a histogram with `bins` equal-width bins covering `[min(values), max(values)]`.
    /// Values equal to the maximum fall into the last bin.
    ///
    /// # Errors
    /// Returns [`NumericError::EmptyInput`] for empty data and
    /// [`NumericError::InvalidParameter`] for `bins == 0`.
    pub fn new(values: &[f64], bins: usize) -> NumericResult<Self> {
        if values.is_empty() {
            return Err(NumericError::EmptyInput {
                operation: "Histogram::new",
            });
        }
        if bins == 0 {
            return Err(NumericError::InvalidParameter {
                name: "bins",
                reason: "a histogram needs at least one bin".into(),
            });
        }
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let (lo, hi) = if (hi - lo).abs() < f64::EPSILON {
            (lo - 0.5, hi + 0.5)
        } else {
            (lo, hi)
        };
        let width = (hi - lo) / bins as f64;
        let mut counts = vec![0usize; bins];
        for &v in values {
            let mut idx = ((v - lo) / width) as usize;
            if idx >= bins {
                idx = bins - 1;
            }
            counts[idx] += 1;
        }
        Ok(Histogram {
            min: lo,
            max: hi,
            bin_width: width,
            counts,
            total: values.len(),
        })
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Bin centres, in order.
    pub fn centers(&self) -> Vec<f64> {
        (0..self.counts.len())
            .map(|i| self.min + (i as f64 + 0.5) * self.bin_width)
            .collect()
    }

    /// Relative frequencies (counts divided by total). Sums to 1.
    pub fn frequencies(&self) -> Vec<f64> {
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }

    /// Density estimate per bin (frequency divided by bin width) so the histogram integrates
    /// to 1 and can be overlaid with a KDE curve.
    pub fn densities(&self) -> Vec<f64> {
        self.frequencies()
            .into_iter()
            .map(|f| f / self.bin_width)
            .collect()
    }

    /// Index of the most populated bin.
    pub fn mode_bin(&self) -> usize {
        self.counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty_or_zero_bins() {
        assert!(Histogram::new(&[], 10).is_err());
        assert!(Histogram::new(&[1.0], 0).is_err());
    }

    #[test]
    fn counts_sum_to_total() {
        let values: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let h = Histogram::new(&values, 10).unwrap();
        assert_eq!(h.counts.iter().sum::<usize>(), 100);
        assert_eq!(h.total, 100);
        assert_eq!(h.bins(), 10);
        assert_eq!(h.counts, vec![10; 10]);
    }

    #[test]
    fn maximum_value_lands_in_last_bin() {
        let h = Histogram::new(&[0.0, 1.0, 2.0, 3.0, 4.0], 5).unwrap();
        assert_eq!(*h.counts.last().unwrap(), 1);
    }

    #[test]
    fn constant_column_widens_range() {
        let h = Histogram::new(&[3.0; 20], 4).unwrap();
        assert_eq!(h.counts.iter().sum::<usize>(), 20);
        assert!(h.min < 3.0 && h.max > 3.0);
    }

    #[test]
    fn frequencies_sum_to_one_and_density_integrates_to_one() {
        let values: Vec<f64> = (0..57).map(|i| (i as f64).sin() * 10.0).collect();
        let h = Histogram::new(&values, 8).unwrap();
        let fsum: f64 = h.frequencies().iter().sum();
        assert!((fsum - 1.0).abs() < 1e-12);
        let integral: f64 = h.densities().iter().map(|d| d * h.bin_width).sum();
        assert!((integral - 1.0).abs() < 1e-12);
    }

    #[test]
    fn centers_are_equally_spaced_and_inside_range() {
        let values: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let h = Histogram::new(&values, 4).unwrap();
        let centers = h.centers();
        assert_eq!(centers.len(), 4);
        for w in centers.windows(2) {
            assert!((w[1] - w[0] - h.bin_width).abs() < 1e-12);
        }
        assert!(centers[0] > h.min && centers[3] < h.max);
    }

    #[test]
    fn mode_bin_finds_peak() {
        let mut values = vec![5.0; 50];
        values.extend((0..10).map(|i| i as f64));
        let h = Histogram::new(&values, 10).unwrap();
        let mode_center = h.centers()[h.mode_bin()];
        assert!((mode_center - 5.0).abs() < h.bin_width);
    }
}
