//! Gaussian kernel density estimation.
//!
//! Used to regenerate the KDE overlays of Figure 1 and to characterise synthetic columns in
//! the dataset simulators' self-tests. Bandwidth defaults to Silverman's rule of thumb.

use crate::error::{NumericError, NumericResult};
use crate::stats;

/// A Gaussian kernel density estimate over a sample.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelDensityEstimate {
    sample: Vec<f64>,
    bandwidth: f64,
}

impl KernelDensityEstimate {
    /// Build a KDE with Silverman's rule-of-thumb bandwidth
    /// `h = 0.9 · min(σ, IQR/1.34) · n^(-1/5)`.
    ///
    /// # Errors
    /// Returns [`NumericError::EmptyInput`] for empty data.
    pub fn new(values: &[f64]) -> NumericResult<Self> {
        if values.is_empty() {
            return Err(NumericError::EmptyInput {
                operation: "KernelDensityEstimate::new",
            });
        }
        let sigma = stats::std_dev(values)?;
        let iqr = stats::percentile(values, 75.0)? - stats::percentile(values, 25.0)?;
        let spread = if iqr > 1e-12 {
            sigma.min(iqr / 1.34)
        } else {
            sigma
        };
        let n = values.len() as f64;
        let bandwidth = (0.9 * spread * n.powf(-0.2)).max(1e-6);
        Ok(KernelDensityEstimate {
            sample: values.to_vec(),
            bandwidth,
        })
    }

    /// Build a KDE with an explicit bandwidth.
    ///
    /// # Errors
    /// Returns an error for empty data or a non-positive bandwidth.
    pub fn with_bandwidth(values: &[f64], bandwidth: f64) -> NumericResult<Self> {
        if values.is_empty() {
            return Err(NumericError::EmptyInput {
                operation: "KernelDensityEstimate::with_bandwidth",
            });
        }
        if bandwidth <= 0.0 || !bandwidth.is_finite() {
            return Err(NumericError::InvalidParameter {
                name: "bandwidth",
                reason: format!("bandwidth must be positive and finite, got {bandwidth}"),
            });
        }
        Ok(KernelDensityEstimate {
            sample: values.to_vec(),
            bandwidth,
        })
    }

    /// The bandwidth in use.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Evaluate the density estimate at `x`.
    pub fn density(&self, x: f64) -> f64 {
        let h = self.bandwidth;
        let norm = 1.0 / (self.sample.len() as f64 * h * (2.0 * std::f64::consts::PI).sqrt());
        self.sample
            .iter()
            .map(|&xi| {
                let z = (x - xi) / h;
                (-0.5 * z * z).exp()
            })
            .sum::<f64>()
            * norm
    }

    /// Evaluate the density on an evenly spaced grid of `points` values spanning the sample
    /// range padded by three bandwidths on each side. Returns `(grid, densities)`.
    pub fn evaluate_grid(&self, points: usize) -> (Vec<f64>, Vec<f64>) {
        let lo = self.sample.iter().cloned().fold(f64::INFINITY, f64::min) - 3.0 * self.bandwidth;
        let hi = self
            .sample
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max)
            + 3.0 * self.bandwidth;
        let n = points.max(2);
        let step = (hi - lo) / (n - 1) as f64;
        let grid: Vec<f64> = (0..n).map(|i| lo + i as f64 * step).collect();
        let densities = grid.iter().map(|&x| self.density(x)).collect();
        (grid, densities)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty_and_bad_bandwidth() {
        assert!(KernelDensityEstimate::new(&[]).is_err());
        assert!(KernelDensityEstimate::with_bandwidth(&[1.0], 0.0).is_err());
        assert!(KernelDensityEstimate::with_bandwidth(&[1.0], -1.0).is_err());
        assert!(KernelDensityEstimate::with_bandwidth(&[], 1.0).is_err());
    }

    #[test]
    fn density_is_nonnegative_and_peaks_near_data() {
        let values: Vec<f64> = (0..200).map(|i| 10.0 + (i % 20) as f64 / 10.0).collect();
        let kde = KernelDensityEstimate::new(&values).unwrap();
        assert!(kde.density(11.0) > kde.density(50.0));
        assert!(kde.density(50.0) >= 0.0);
    }

    #[test]
    fn density_integrates_to_approximately_one() {
        let values: Vec<f64> = (0..100).map(|i| (i as f64 / 10.0).sin() * 3.0).collect();
        let kde = KernelDensityEstimate::new(&values).unwrap();
        let (grid, dens) = kde.evaluate_grid(2000);
        let step = grid[1] - grid[0];
        let integral: f64 = dens.iter().map(|d| d * step).sum();
        assert!((integral - 1.0).abs() < 0.02, "integral was {integral}");
    }

    #[test]
    fn explicit_bandwidth_is_respected() {
        let kde = KernelDensityEstimate::with_bandwidth(&[0.0, 1.0], 2.0).unwrap();
        assert_eq!(kde.bandwidth(), 2.0);
    }

    #[test]
    fn grid_covers_sample_range() {
        let values = [0.0, 10.0];
        let kde = KernelDensityEstimate::new(&values).unwrap();
        let (grid, _) = kde.evaluate_grid(50);
        assert!(grid[0] < 0.0);
        assert!(*grid.last().unwrap() > 10.0);
        assert_eq!(grid.len(), 50);
    }

    #[test]
    fn constant_sample_has_positive_bandwidth() {
        let kde = KernelDensityEstimate::new(&[5.0; 30]).unwrap();
        assert!(kde.bandwidth() > 0.0);
        assert!(kde.density(5.0).is_finite());
    }
}
