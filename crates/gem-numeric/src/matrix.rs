//! A dense, row-major `f64` matrix.
//!
//! The matrix type is intentionally small: the Gem pipeline manipulates embedding matrices
//! whose rows are columns of a table (a few thousand rows × a few hundred features), and the
//! neural-network substrate needs matrix products, transposes and element-wise maps. A
//! hand-rolled dense type keeps the workspace free of heavyweight linear-algebra
//! dependencies while remaining easy to audit.

use crate::error::{NumericError, NumericResult};

/// Dense row-major matrix of `f64` values.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Create a matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create a matrix filled with a constant value.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Create an identity matrix of size `n × n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Create a matrix from a flat row-major buffer.
    ///
    /// # Errors
    /// Returns [`NumericError::DimensionMismatch`] when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> NumericResult<Self> {
        if data.len() != rows * cols {
            return Err(NumericError::DimensionMismatch {
                operation: "Matrix::from_vec",
                left: (rows, cols),
                right: (1, data.len()),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Create a matrix from a slice of rows.
    ///
    /// # Errors
    /// Returns [`NumericError::EmptyInput`] for an empty slice and
    /// [`NumericError::DimensionMismatch`] for ragged rows.
    pub fn from_rows(rows: &[Vec<f64>]) -> NumericResult<Self> {
        if rows.is_empty() {
            return Err(NumericError::EmptyInput {
                operation: "Matrix::from_rows",
            });
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            if r.len() != cols {
                return Err(NumericError::DimensionMismatch {
                    operation: "Matrix::from_rows",
                    left: (1, cols),
                    right: (1, r.len()),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrow the underlying row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the underlying row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Get the element at `(row, col)`.
    ///
    /// # Panics
    /// Panics when the indices are out of bounds (bounds are asserted in debug and release).
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(
            row < self.rows && col < self.cols,
            "matrix index out of bounds"
        );
        self.data[row * self.cols + col]
    }

    /// Set the element at `(row, col)`.
    ///
    /// # Panics
    /// Panics when the indices are out of bounds.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        assert!(
            row < self.rows && col < self.cols,
            "matrix index out of bounds"
        );
        self.data[row * self.cols + col] = value;
    }

    /// Borrow row `r` as a slice.
    ///
    /// # Panics
    /// Panics when `r >= rows`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row index out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r` as a slice.
    ///
    /// # Panics
    /// Panics when `r >= rows`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row index out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy column `c` into an owned vector.
    ///
    /// # Panics
    /// Panics when `c >= cols`.
    pub fn column(&self, c: usize) -> Vec<f64> {
        assert!(c < self.cols, "column index out of bounds");
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Iterator over the rows of the matrix.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks(self.cols.max(1))
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Matrix product `self * other`.
    ///
    /// Uses the classic i-k-j loop order so that the innermost loop walks both operands
    /// contiguously (see the perf-book guidance on cache-friendly traversal).
    ///
    /// # Errors
    /// Returns [`NumericError::DimensionMismatch`] when `self.cols != other.rows`.
    pub fn matmul(&self, other: &Matrix) -> NumericResult<Matrix> {
        if self.cols != other.rows {
            return Err(NumericError::DimensionMismatch {
                operation: "matmul",
                left: (self.rows, self.cols),
                right: (other.rows, other.cols),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                let other_row = other.row(k);
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(other_row.iter()) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Errors
    /// Returns [`NumericError::DimensionMismatch`] when `self.cols != v.len()`.
    pub fn matvec(&self, v: &[f64]) -> NumericResult<Vec<f64>> {
        if self.cols != v.len() {
            return Err(NumericError::DimensionMismatch {
                operation: "matvec",
                left: (self.rows, self.cols),
                right: (v.len(), 1),
            });
        }
        Ok(self
            .iter_rows()
            .map(|row| row.iter().zip(v.iter()).map(|(a, b)| a * b).sum())
            .collect())
    }

    /// Element-wise sum `self + other`.
    ///
    /// # Errors
    /// Returns [`NumericError::DimensionMismatch`] when the shapes differ.
    pub fn add(&self, other: &Matrix) -> NumericResult<Matrix> {
        self.zip_with(other, "Matrix::add", |a, b| a + b)
    }

    /// Element-wise difference `self - other`.
    ///
    /// # Errors
    /// Returns [`NumericError::DimensionMismatch`] when the shapes differ.
    pub fn sub(&self, other: &Matrix) -> NumericResult<Matrix> {
        self.zip_with(other, "Matrix::sub", |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Errors
    /// Returns [`NumericError::DimensionMismatch`] when the shapes differ.
    pub fn hadamard(&self, other: &Matrix) -> NumericResult<Matrix> {
        self.zip_with(other, "Matrix::hadamard", |a, b| a * b)
    }

    fn zip_with(
        &self,
        other: &Matrix,
        operation: &'static str,
        f: impl Fn(f64, f64) -> f64,
    ) -> NumericResult<Matrix> {
        if self.shape() != other.shape() {
            return Err(NumericError::DimensionMismatch {
                operation,
                left: self.shape(),
                right: other.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Apply a function to every element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Apply a function to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for x in self.data.iter_mut() {
            *x = f(*x);
        }
    }

    /// Scale all elements by a scalar.
    pub fn scale(&self, factor: f64) -> Matrix {
        self.map(|x| x * factor)
    }

    /// Broadcast-add a row vector to every row.
    ///
    /// # Errors
    /// Returns [`NumericError::DimensionMismatch`] when `bias.len() != cols`.
    pub fn add_row_broadcast(&self, bias: &[f64]) -> NumericResult<Matrix> {
        if bias.len() != self.cols {
            return Err(NumericError::DimensionMismatch {
                operation: "add_row_broadcast",
                left: (self.rows, self.cols),
                right: (1, bias.len()),
            });
        }
        let mut out = self.clone();
        for r in 0..out.rows {
            for (o, &b) in out.row_mut(r).iter_mut().zip(bias.iter()) {
                *o += b;
            }
        }
        Ok(out)
    }

    /// Sum of each column (returns a vector of length `cols`).
    pub fn column_sums(&self) -> Vec<f64> {
        let mut sums = vec![0.0; self.cols];
        for row in self.iter_rows() {
            for (s, &x) in sums.iter_mut().zip(row.iter()) {
                *s += x;
            }
        }
        sums
    }

    /// Mean of each column.
    pub fn column_means(&self) -> Vec<f64> {
        if self.rows == 0 {
            return vec![0.0; self.cols];
        }
        let n = self.rows as f64;
        self.column_sums().into_iter().map(|s| s / n).collect()
    }

    /// Sum of each row (returns a vector of length `rows`).
    pub fn row_sums(&self) -> Vec<f64> {
        self.iter_rows().map(|r| r.iter().sum()).collect()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// `true` when every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Horizontally concatenate two matrices with the same number of rows.
    ///
    /// # Errors
    /// Returns [`NumericError::DimensionMismatch`] when row counts differ.
    pub fn hconcat(&self, other: &Matrix) -> NumericResult<Matrix> {
        if self.rows != other.rows {
            return Err(NumericError::DimensionMismatch {
                operation: "hconcat",
                left: self.shape(),
                right: other.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(other.row(r));
        }
        Ok(out)
    }

    /// Vertically concatenate two matrices with the same number of columns.
    ///
    /// # Errors
    /// Returns [`NumericError::DimensionMismatch`] when column counts differ.
    pub fn vconcat(&self, other: &Matrix) -> NumericResult<Matrix> {
        if self.cols != other.cols {
            return Err(NumericError::DimensionMismatch {
                operation: "vconcat",
                left: self.shape(),
                right: other.shape(),
            });
        }
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Ok(Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        })
    }

    /// Consume the matrix and return its rows as owned vectors.
    pub fn into_rows(self) -> Vec<Vec<f64>> {
        self.data
            .chunks(self.cols.max(1))
            .map(|c| c.to_vec())
            .collect()
    }
}

/// Bit-exact JSON persistence: the buffer is encoded with [`gem_json::bits_array`]
/// (IEEE-754 bit patterns, not decimal), so `from_json(to_json(m))` reproduces every
/// element bit-for-bit — including NaN payloads and signed zeros. This is the encoding
/// model persistence uses for trained weights.
impl gem_json::ToJson for Matrix {
    fn to_json(&self) -> gem_json::Json {
        gem_json::object(vec![
            ("rows", gem_json::number(self.rows as f64)),
            ("cols", gem_json::number(self.cols as f64)),
            ("data", gem_json::bits_array(&self.data)),
        ])
    }
}

impl gem_json::FromJson for Matrix {
    fn from_json(value: &gem_json::Json) -> Result<Self, gem_json::JsonError> {
        let rows = value.num_field("rows")? as usize;
        let cols = value.num_field("cols")? as usize;
        let data = gem_json::as_bits_array(value.field("data")?)?;
        Matrix::from_vec(rows, cols, data)
            .map_err(|_| gem_json::JsonError::conversion("matrix data length != rows * cols"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let m = sample();
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.column(2), vec![3.0, 6.0]);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).is_ok());
    }

    #[test]
    fn from_rows_rejects_ragged_input() {
        assert!(Matrix::from_rows(&[vec![1.0, 2.0], vec![1.0]]).is_err());
        assert!(Matrix::from_rows(&[]).is_err());
    }

    #[test]
    fn identity_and_matmul() {
        let m = sample();
        let id = Matrix::identity(3);
        let prod = m.matmul(&id).unwrap();
        assert_eq!(prod, m);
    }

    #[test]
    fn matmul_known_result() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(
            c,
            Matrix::from_rows(&[vec![19.0, 22.0], vec![43.0, 50.0]]).unwrap()
        );
    }

    #[test]
    fn matmul_dimension_mismatch() {
        let a = sample();
        assert!(a.matmul(&sample()).is_err());
    }

    #[test]
    fn matvec_basic() {
        let m = sample();
        assert_eq!(m.matvec(&[1.0, 0.0, -1.0]).unwrap(), vec![-2.0, -2.0]);
        assert!(m.matvec(&[1.0]).is_err());
    }

    #[test]
    fn transpose_round_trip() {
        let m = sample();
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().shape(), (3, 2));
        assert_eq!(m.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn elementwise_ops() {
        let m = sample();
        let s = m.add(&m).unwrap();
        assert_eq!(s.get(1, 2), 12.0);
        let d = m.sub(&m).unwrap();
        assert_eq!(d.frobenius_norm(), 0.0);
        let h = m.hadamard(&m).unwrap();
        assert_eq!(h.get(0, 2), 9.0);
    }

    #[test]
    fn broadcast_and_reductions() {
        let m = sample();
        let b = m.add_row_broadcast(&[1.0, 1.0, 1.0]).unwrap();
        assert_eq!(b.get(0, 0), 2.0);
        assert_eq!(m.column_sums(), vec![5.0, 7.0, 9.0]);
        assert_eq!(m.row_sums(), vec![6.0, 15.0]);
        assert_eq!(m.column_means(), vec![2.5, 3.5, 4.5]);
    }

    #[test]
    fn concatenation() {
        let m = sample();
        let h = m.hconcat(&m).unwrap();
        assert_eq!(h.shape(), (2, 6));
        assert_eq!(h.row(0), &[1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
        let v = m.vconcat(&m).unwrap();
        assert_eq!(v.shape(), (4, 3));
        assert!(m.hconcat(&Matrix::zeros(3, 3)).is_err());
        assert!(m.vconcat(&Matrix::zeros(2, 2)).is_err());
    }

    #[test]
    fn map_and_scale() {
        let m = sample();
        assert_eq!(m.scale(2.0).get(1, 1), 10.0);
        assert_eq!(m.map(|x| x - 1.0).get(0, 0), 0.0);
        let mut m2 = m.clone();
        m2.map_inplace(|x| x * 0.0);
        assert_eq!(m2, Matrix::zeros(2, 3));
    }

    #[test]
    fn finite_detection() {
        let mut m = sample();
        assert!(m.all_finite());
        m.set(0, 0, f64::NAN);
        assert!(!m.all_finite());
    }

    #[test]
    fn into_rows_round_trip() {
        let m = sample();
        let rows = m.clone().into_rows();
        assert_eq!(Matrix::from_rows(&rows).unwrap(), m);
    }

    #[test]
    fn json_round_trip_is_bit_exact() {
        use gem_json::{FromJson, Json, ToJson};
        let mut m = sample();
        m.set(0, 0, -0.0);
        m.set(1, 2, 1.0 / 3.0);
        let text = m.to_json().to_pretty_string();
        let back = Matrix::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.shape(), m.shape());
        for (a, b) in m.as_slice().iter().zip(back.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // Zero-width matrices (empty blocks) survive too.
        let empty = Matrix::zeros(3, 0);
        let back = Matrix::from_json(&empty.to_json()).unwrap();
        assert_eq!(back.shape(), (3, 0));
    }

    #[test]
    fn json_decoding_rejects_inconsistent_shapes() {
        use gem_json::{FromJson, ToJson};
        let m = sample();
        let mut pairs = match m.to_json() {
            gem_json::Json::Object(pairs) => pairs,
            _ => unreachable!(),
        };
        pairs[0].1 = gem_json::number(5.0); // rows = 5 but data has 6 values
        assert!(Matrix::from_json(&gem_json::Json::Object(pairs)).is_err());
    }
}
