//! Descriptive statistics of a numeric column.
//!
//! §3.2 of the paper augments the GMM-derived mean responsibilities with a set of
//! statistical features selected from the Pythagoras feature set: unique count, mean,
//! coefficient of variation, entropy, range and the 10th/90th percentiles. This module
//! implements those features (plus a few extra moments used by the Sherlock/Sato baselines)
//! on raw `&[f64]` slices.

use crate::error::{NumericError, NumericResult};

/// Arithmetic mean.
///
/// # Errors
/// Returns [`NumericError::EmptyInput`] for an empty slice.
pub fn mean(values: &[f64]) -> NumericResult<f64> {
    if values.is_empty() {
        return Err(NumericError::EmptyInput { operation: "mean" });
    }
    Ok(values.iter().sum::<f64>() / values.len() as f64)
}

/// Population variance (divides by `n`).
///
/// # Errors
/// Returns [`NumericError::EmptyInput`] for an empty slice.
pub fn variance(values: &[f64]) -> NumericResult<f64> {
    let m = mean(values)?;
    Ok(values.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / values.len() as f64)
}

/// Sample variance (divides by `n - 1`); falls back to 0 for a single observation.
///
/// # Errors
/// Returns [`NumericError::EmptyInput`] for an empty slice.
pub fn sample_variance(values: &[f64]) -> NumericResult<f64> {
    if values.is_empty() {
        return Err(NumericError::EmptyInput {
            operation: "sample_variance",
        });
    }
    if values.len() == 1 {
        return Ok(0.0);
    }
    let m = mean(values)?;
    Ok(values.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (values.len() - 1) as f64)
}

/// Population standard deviation.
///
/// # Errors
/// Returns [`NumericError::EmptyInput`] for an empty slice.
pub fn std_dev(values: &[f64]) -> NumericResult<f64> {
    Ok(variance(values)?.sqrt())
}

/// Minimum value.
///
/// # Errors
/// Returns [`NumericError::EmptyInput`] for an empty slice.
pub fn min(values: &[f64]) -> NumericResult<f64> {
    if values.is_empty() {
        return Err(NumericError::EmptyInput { operation: "min" });
    }
    Ok(values.iter().cloned().fold(f64::INFINITY, f64::min))
}

/// Maximum value.
///
/// # Errors
/// Returns [`NumericError::EmptyInput`] for an empty slice.
pub fn max(values: &[f64]) -> NumericResult<f64> {
    if values.is_empty() {
        return Err(NumericError::EmptyInput { operation: "max" });
    }
    Ok(values.iter().cloned().fold(f64::NEG_INFINITY, f64::max))
}

/// Range (`max - min`), one of the Gem statistical features.
///
/// # Errors
/// Returns [`NumericError::EmptyInput`] for an empty slice.
pub fn range(values: &[f64]) -> NumericResult<f64> {
    Ok(max(values)? - min(values)?)
}

/// Linear-interpolation percentile, `p` in `[0, 100]`.
///
/// Matches the common "linear" (type-7) definition used by NumPy's default `percentile`.
///
/// # Errors
/// Returns [`NumericError::EmptyInput`] for an empty slice and
/// [`NumericError::InvalidParameter`] when `p` is outside `[0, 100]`.
pub fn percentile(values: &[f64], p: f64) -> NumericResult<f64> {
    if values.is_empty() {
        return Err(NumericError::EmptyInput {
            operation: "percentile",
        });
    }
    if !(0.0..=100.0).contains(&p) {
        return Err(NumericError::InvalidParameter {
            name: "p",
            reason: format!("percentile must be in [0, 100], got {p}"),
        });
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        return Ok(sorted[lo]);
    }
    let frac = rank - lo as f64;
    Ok(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Median (50th percentile).
///
/// # Errors
/// Returns [`NumericError::EmptyInput`] for an empty slice.
pub fn median(values: &[f64]) -> NumericResult<f64> {
    percentile(values, 50.0)
}

/// Number of distinct values. Values are compared via their bit pattern after canonicalising
/// `-0.0` to `0.0`; NaNs all compare equal to each other.
pub fn unique_count(values: &[f64]) -> usize {
    use std::collections::HashSet;
    let mut set = HashSet::with_capacity(values.len());
    for &v in values {
        let canonical = if v == 0.0 {
            0.0f64
        } else if v.is_nan() {
            f64::NAN
        } else {
            v
        };
        set.insert(canonical.to_bits());
    }
    set.len()
}

/// Coefficient of variation: `std / |mean|`. Returns 0 when the mean is (numerically) zero,
/// mirroring the "relative dispersion is undefined around zero" convention used in the
/// Pythagoras feature set the paper borrows from.
///
/// # Errors
/// Returns [`NumericError::EmptyInput`] for an empty slice.
pub fn coefficient_of_variation(values: &[f64]) -> NumericResult<f64> {
    let m = mean(values)?;
    let s = std_dev(values)?;
    if m.abs() < 1e-12 {
        return Ok(0.0);
    }
    Ok(s / m.abs())
}

/// Shannon entropy (in nats) of the empirical distribution obtained by binning the values
/// into `bins` equal-width bins. Columns whose values are all identical have zero entropy.
///
/// # Errors
/// Returns [`NumericError::EmptyInput`] for an empty slice and
/// [`NumericError::InvalidParameter`] when `bins == 0`.
pub fn entropy(values: &[f64], bins: usize) -> NumericResult<f64> {
    if values.is_empty() {
        return Err(NumericError::EmptyInput {
            operation: "entropy",
        });
    }
    if bins == 0 {
        return Err(NumericError::InvalidParameter {
            name: "bins",
            reason: "entropy requires at least one bin".into(),
        });
    }
    let lo = min(values)?;
    let hi = max(values)?;
    if (hi - lo).abs() < f64::EPSILON {
        return Ok(0.0);
    }
    let width = (hi - lo) / bins as f64;
    let mut counts = vec![0usize; bins];
    for &v in values {
        let mut idx = ((v - lo) / width) as usize;
        if idx >= bins {
            idx = bins - 1;
        }
        counts[idx] += 1;
    }
    let n = values.len() as f64;
    let mut h = 0.0;
    for &c in &counts {
        if c == 0 {
            continue;
        }
        let p = c as f64 / n;
        h -= p * p.ln();
    }
    Ok(h)
}

/// Sample skewness (Fisher–Pearson, biased). Zero for constant columns.
///
/// # Errors
/// Returns [`NumericError::EmptyInput`] for an empty slice.
pub fn skewness(values: &[f64]) -> NumericResult<f64> {
    let m = mean(values)?;
    let s = std_dev(values)?;
    if s < 1e-12 {
        return Ok(0.0);
    }
    let n = values.len() as f64;
    Ok(values.iter().map(|x| ((x - m) / s).powi(3)).sum::<f64>() / n)
}

/// Excess kurtosis (biased). Zero for constant columns.
///
/// # Errors
/// Returns [`NumericError::EmptyInput`] for an empty slice.
pub fn kurtosis(values: &[f64]) -> NumericResult<f64> {
    let m = mean(values)?;
    let s = std_dev(values)?;
    if s < 1e-12 {
        return Ok(0.0);
    }
    let n = values.len() as f64;
    Ok(values.iter().map(|x| ((x - m) / s).powi(4)).sum::<f64>() / n - 3.0)
}

/// Summary of a numeric column, bundling the statistics the Gem pipeline and the baselines
/// need. Computed once per column and reused.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Number of values.
    pub count: usize,
    /// Number of distinct values.
    pub unique_count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Coefficient of variation (`std / |mean|`, zero when the mean is zero).
    pub coefficient_of_variation: f64,
    /// Histogram-based Shannon entropy (nats, 32 bins).
    pub entropy: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Range (`max - min`).
    pub range: f64,
    /// 10th percentile.
    pub percentile_10: f64,
    /// 90th percentile.
    pub percentile_90: f64,
    /// Median.
    pub median: f64,
    /// Skewness.
    pub skewness: f64,
    /// Excess kurtosis.
    pub kurtosis: f64,
}

impl ColumnStats {
    /// Number of bins used for the entropy estimate.
    pub const ENTROPY_BINS: usize = 32;

    /// Compute the full statistics bundle for a column.
    ///
    /// # Errors
    /// Returns [`NumericError::EmptyInput`] for an empty column.
    pub fn compute(values: &[f64]) -> NumericResult<Self> {
        if values.is_empty() {
            return Err(NumericError::EmptyInput {
                operation: "ColumnStats::compute",
            });
        }
        Ok(ColumnStats {
            count: values.len(),
            unique_count: unique_count(values),
            mean: mean(values)?,
            std_dev: std_dev(values)?,
            coefficient_of_variation: coefficient_of_variation(values)?,
            entropy: entropy(values, Self::ENTROPY_BINS)?,
            min: min(values)?,
            max: max(values)?,
            range: range(values)?,
            percentile_10: percentile(values, 10.0)?,
            percentile_90: percentile(values, 90.0)?,
            median: median(values)?,
            skewness: skewness(values)?,
            kurtosis: kurtosis(values)?,
        })
    }

    /// The seven Gem statistical features of §3.2, in a fixed order:
    /// `[unique_count, mean, cv, entropy, range, p10, p90]`.
    pub fn gem_features(&self) -> Vec<f64> {
        vec![
            self.unique_count as f64,
            self.mean,
            self.coefficient_of_variation,
            self.entropy,
            self.range,
            self.percentile_10,
            self.percentile_90,
        ]
    }

    /// The extended feature vector used by the Sherlock_SC / Sato_SC baselines
    /// (`gem_features` plus std-dev, skewness, kurtosis, median and count).
    pub fn extended_features(&self) -> Vec<f64> {
        let mut f = self.gem_features();
        f.extend_from_slice(&[
            self.std_dev,
            self.skewness,
            self.kurtosis,
            self.median,
            self.count as f64,
        ]);
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-9;

    #[test]
    fn mean_variance_std() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&v).unwrap() - 5.0).abs() < EPS);
        assert!((variance(&v).unwrap() - 4.0).abs() < EPS);
        assert!((std_dev(&v).unwrap() - 2.0).abs() < EPS);
    }

    #[test]
    fn sample_variance_divides_by_n_minus_1() {
        let v = [1.0, 2.0, 3.0];
        assert!((sample_variance(&v).unwrap() - 1.0).abs() < EPS);
        assert_eq!(sample_variance(&[5.0]).unwrap(), 0.0);
    }

    #[test]
    fn empty_inputs_error() {
        assert!(mean(&[]).is_err());
        assert!(variance(&[]).is_err());
        assert!(min(&[]).is_err());
        assert!(max(&[]).is_err());
        assert!(percentile(&[], 50.0).is_err());
        assert!(entropy(&[], 10).is_err());
        assert!(ColumnStats::compute(&[]).is_err());
    }

    #[test]
    fn min_max_range() {
        let v = [3.0, -1.0, 7.5, 2.0];
        assert_eq!(min(&v).unwrap(), -1.0);
        assert_eq!(max(&v).unwrap(), 7.5);
        assert_eq!(range(&v).unwrap(), 8.5);
    }

    #[test]
    fn percentile_linear_interpolation() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert!((percentile(&v, 0.0).unwrap() - 1.0).abs() < EPS);
        assert!((percentile(&v, 100.0).unwrap() - 4.0).abs() < EPS);
        assert!((percentile(&v, 50.0).unwrap() - 2.5).abs() < EPS);
        assert!((percentile(&v, 25.0).unwrap() - 1.75).abs() < EPS);
        assert!(percentile(&v, 150.0).is_err());
        assert!(percentile(&v, -1.0).is_err());
    }

    #[test]
    fn percentile_is_order_independent() {
        let sorted = [1.0, 2.0, 3.0, 4.0, 5.0];
        let shuffled = [4.0, 1.0, 5.0, 2.0, 3.0];
        for p in [10.0, 50.0, 90.0] {
            assert!(
                (percentile(&sorted, p).unwrap() - percentile(&shuffled, p).unwrap()).abs() < EPS
            );
        }
    }

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]).unwrap(), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]).unwrap(), 2.5);
    }

    #[test]
    fn unique_count_handles_duplicates_zero_and_nan() {
        assert_eq!(unique_count(&[1.0, 1.0, 2.0]), 2);
        assert_eq!(unique_count(&[0.0, -0.0]), 1);
        assert_eq!(unique_count(&[f64::NAN, f64::NAN, 1.0]), 2);
        assert_eq!(unique_count(&[]), 0);
    }

    #[test]
    fn cv_zero_mean_is_zero() {
        assert_eq!(coefficient_of_variation(&[-1.0, 1.0]).unwrap(), 0.0);
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((coefficient_of_variation(&v).unwrap() - 0.4).abs() < EPS);
    }

    #[test]
    fn entropy_constant_column_is_zero() {
        assert_eq!(entropy(&[5.0; 100], 10).unwrap(), 0.0);
    }

    #[test]
    fn entropy_uniform_higher_than_concentrated() {
        let uniform: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let concentrated: Vec<f64> = (0..1000)
            .map(|i| if i < 990 { 0.0 } else { i as f64 })
            .collect();
        let hu = entropy(&uniform, 20).unwrap();
        let hc = entropy(&concentrated, 20).unwrap();
        assert!(hu > hc);
        assert!(hu <= (20.0f64).ln() + EPS);
    }

    #[test]
    fn entropy_zero_bins_is_error() {
        assert!(entropy(&[1.0, 2.0], 0).is_err());
    }

    #[test]
    fn skewness_symmetric_is_zero() {
        let v = [-2.0, -1.0, 0.0, 1.0, 2.0];
        assert!(skewness(&v).unwrap().abs() < EPS);
        assert_eq!(skewness(&[3.0, 3.0, 3.0]).unwrap(), 0.0);
    }

    #[test]
    fn skewness_right_tail_is_positive() {
        let v = [1.0, 1.0, 1.0, 1.0, 10.0];
        assert!(skewness(&v).unwrap() > 0.0);
    }

    #[test]
    fn kurtosis_constant_is_zero() {
        assert_eq!(kurtosis(&[1.0, 1.0]).unwrap(), 0.0);
    }

    #[test]
    fn column_stats_bundle() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = ColumnStats::compute(&v).unwrap();
        assert_eq!(s.count, 100);
        assert_eq!(s.unique_count, 100);
        assert!((s.mean - 50.5).abs() < EPS);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.range, 99.0);
        assert!((s.percentile_10 - 10.9).abs() < EPS);
        assert!((s.percentile_90 - 90.1).abs() < EPS);
        assert_eq!(s.gem_features().len(), 7);
        assert_eq!(s.extended_features().len(), 12);
    }

    #[test]
    fn gem_features_order_is_stable() {
        let v = [1.0, 2.0, 3.0, 4.0];
        let s = ColumnStats::compute(&v).unwrap();
        let f = s.gem_features();
        assert_eq!(f[0], s.unique_count as f64);
        assert_eq!(f[1], s.mean);
        assert_eq!(f[2], s.coefficient_of_variation);
        assert_eq!(f[3], s.entropy);
        assert_eq!(f[4], s.range);
        assert_eq!(f[5], s.percentile_10);
        assert_eq!(f[6], s.percentile_90);
    }
}
