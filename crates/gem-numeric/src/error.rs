//! Error type shared by the numeric substrate.

use std::fmt;

/// Errors produced by the numeric substrate.
///
/// The substrate is used deep inside tight loops (EM iterations, NN training steps), so the
/// error type is a small enum rather than a boxed trait object.
#[derive(Debug, Clone, PartialEq)]
pub enum NumericError {
    /// An operation received an empty input where at least one element is required.
    EmptyInput {
        /// The operation that failed.
        operation: &'static str,
    },
    /// Two operands have incompatible dimensions.
    DimensionMismatch {
        /// The operation that failed.
        operation: &'static str,
        /// Dimension of the left operand (rows × cols or length).
        left: (usize, usize),
        /// Dimension of the right operand.
        right: (usize, usize),
    },
    /// A parameter was outside its valid domain (e.g. a negative variance).
    InvalidParameter {
        /// The parameter name.
        name: &'static str,
        /// Human readable description of the violated constraint.
        reason: String,
    },
    /// A numerical routine failed to converge or produced a non-finite value.
    Numerical {
        /// Description of what went wrong.
        reason: String,
    },
    /// Index out of bounds.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// The valid length.
        len: usize,
    },
}

impl fmt::Display for NumericError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumericError::EmptyInput { operation } => {
                write!(f, "empty input passed to `{operation}`")
            }
            NumericError::DimensionMismatch {
                operation,
                left,
                right,
            } => write!(
                f,
                "dimension mismatch in `{operation}`: left is {}x{}, right is {}x{}",
                left.0, left.1, right.0, right.1
            ),
            NumericError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            NumericError::Numerical { reason } => write!(f, "numerical failure: {reason}"),
            NumericError::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for length {len}")
            }
        }
    }
}

impl std::error::Error for NumericError {}

/// Convenience result alias for the numeric substrate.
pub type NumericResult<T> = Result<T, NumericError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_empty_input() {
        let e = NumericError::EmptyInput { operation: "mean" };
        assert_eq!(e.to_string(), "empty input passed to `mean`");
    }

    #[test]
    fn display_dimension_mismatch() {
        let e = NumericError::DimensionMismatch {
            operation: "matmul",
            left: (2, 3),
            right: (4, 5),
        };
        assert!(e.to_string().contains("matmul"));
        assert!(e.to_string().contains("2x3"));
        assert!(e.to_string().contains("4x5"));
    }

    #[test]
    fn display_invalid_parameter() {
        let e = NumericError::InvalidParameter {
            name: "sigma",
            reason: "must be positive".into(),
        };
        assert!(e.to_string().contains("sigma"));
        assert!(e.to_string().contains("positive"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_e: &E) {}
        assert_err(&NumericError::Numerical {
            reason: "nan".into(),
        });
    }
}
