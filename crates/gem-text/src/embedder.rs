//! The hashed header embedder.

use crate::synonyms::SynonymTable;
use crate::tokenizer::tokenize;
use gem_numeric::standardize::{l1_normalize, l2_normalize};

/// Default dimensionality of header embeddings.
///
/// SBERT's MiniLM variants emit 384 dimensions; 128 hashed dimensions are plenty for the
/// vocabulary sizes seen in column headers while keeping the concatenated Gem embeddings
/// small.
pub const DEFAULT_TEXT_DIM: usize = 128;

/// Anything that can turn a header string into a fixed-size dense vector.
///
/// The Gem pipeline is generic over this trait so a real SBERT client could be plugged in
/// when network access and a model are available; the reproduction uses [`HashEmbedder`].
pub trait TextEmbedder {
    /// Embedding dimensionality.
    fn dim(&self) -> usize;

    /// Embed one header. Must always return a vector of length [`TextEmbedder::dim`].
    fn embed(&self, header: &str) -> Vec<f64>;

    /// Embed a batch of headers (default: map [`TextEmbedder::embed`]).
    fn embed_batch(&self, headers: &[String]) -> Vec<Vec<f64>> {
        headers.iter().map(|h| self.embed(h)).collect()
    }
}

/// Deterministic feature-hashing embedder over word tokens and character trigrams.
#[derive(Debug, Clone)]
pub struct HashEmbedder {
    dim: usize,
    synonyms: SynonymTable,
    /// Relative weight of whole-token features vs character-trigram features.
    token_weight: f64,
    trigram_weight: f64,
}

impl Default for HashEmbedder {
    fn default() -> Self {
        HashEmbedder::new(DEFAULT_TEXT_DIM)
    }
}

impl HashEmbedder {
    /// Create an embedder with the given dimensionality (must be at least 2).
    ///
    /// # Panics
    /// Panics when `dim < 2`.
    pub fn new(dim: usize) -> Self {
        assert!(dim >= 2, "text embedding dimension must be at least 2");
        HashEmbedder {
            dim,
            synonyms: SynonymTable::new(),
            token_weight: 1.0,
            trigram_weight: 0.4,
        }
    }

    /// Embed and L1-normalise, which is the form Gem concatenates (Equation 10).
    pub fn embed_l1(&self, header: &str) -> Vec<f64> {
        l1_normalize(&self.embed(header))
    }

    /// Relative weight of whole-token features.
    pub fn token_weight(&self) -> f64 {
        self.token_weight
    }

    /// Relative weight of character-trigram features.
    pub fn trigram_weight(&self) -> f64 {
        self.trigram_weight
    }

    fn add_feature(&self, vec: &mut [f64], feature: &str, weight: f64) {
        let h = fnv1a(feature.as_bytes());
        let idx = (h % self.dim as u64) as usize;
        // A second, independent hash decides the sign, which keeps hash collisions from
        // systematically inflating one coordinate (standard signed feature hashing).
        let sign = if (h >> 32) & 1 == 0 { 1.0 } else { -1.0 };
        vec[idx] += sign * weight;
    }
}

impl TextEmbedder for HashEmbedder {
    fn dim(&self) -> usize {
        self.dim
    }

    fn embed(&self, header: &str) -> Vec<f64> {
        let mut vec = vec![0.0; self.dim];
        let tokens = self.synonyms.canonicalize(&tokenize(header));
        if tokens.is_empty() {
            return vec;
        }
        for token in &tokens {
            self.add_feature(&mut vec, &format!("tok:{token}"), self.token_weight);
            // Character trigrams of the padded token give sub-word overlap (e.g.
            // "temperature" vs "temperatures" share nearly all trigrams).
            let padded: Vec<char> = format!("^{token}$").chars().collect();
            if padded.len() >= 3 {
                for w in padded.windows(3) {
                    let tri: String = w.iter().collect();
                    self.add_feature(&mut vec, &format!("tri:{tri}"), self.trigram_weight);
                }
            }
        }
        // Average over tokens so long headers are not systematically larger, then
        // L2-normalise so cosine similarity is well behaved.
        let n = tokens.len() as f64;
        for v in vec.iter_mut() {
            *v /= n;
        }
        l2_normalize(&vec)
    }
}

/// JSON persistence of the embedder's parameters. The embedder is fully deterministic —
/// the hash function is FNV-1a and the synonym table is compiled in — so its embeddings
/// are a pure function of (dim, token weight, trigram weight); persisting those three
/// numbers rehydrates an embedder whose output is bit-identical to the saved one. The
/// weights use the bit-exact encoding so future non-default values can never drift.
impl gem_json::ToJson for HashEmbedder {
    fn to_json(&self) -> gem_json::Json {
        gem_json::object(vec![
            ("dim", gem_json::number(self.dim as f64)),
            ("token_weight", gem_json::bits(self.token_weight)),
            ("trigram_weight", gem_json::bits(self.trigram_weight)),
        ])
    }
}

impl gem_json::FromJson for HashEmbedder {
    fn from_json(value: &gem_json::Json) -> Result<Self, gem_json::JsonError> {
        let dim = value.num_field("dim")? as usize;
        if dim < 2 {
            return Err(gem_json::JsonError::conversion(
                "text embedding dimension must be at least 2",
            ));
        }
        Ok(HashEmbedder {
            dim,
            synonyms: SynonymTable::new(),
            token_weight: gem_json::as_bits(value.field("token_weight")?)?,
            trigram_weight: gem_json::as_bits(value.field("trigram_weight")?)?,
        })
    }
}

/// 64-bit FNV-1a hash (stable across runs and platforms, unlike `DefaultHasher`).
fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x1000_0000_01b3;
    let mut hash = OFFSET;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use gem_numeric::distance::cosine_similarity;

    fn sim(a: &str, b: &str) -> f64 {
        let e = HashEmbedder::default();
        cosine_similarity(&e.embed(a), &e.embed(b)).unwrap()
    }

    #[test]
    fn embedding_has_requested_dimension_and_unit_norm() {
        let e = HashEmbedder::new(64);
        let v = e.embed("engine_power");
        assert_eq!(v.len(), 64);
        let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn identical_headers_have_identical_embeddings() {
        let e = HashEmbedder::default();
        assert_eq!(e.embed("MarketValue"), e.embed("MarketValue"));
        assert!((sim("MarketValue", "market_value") - 1.0).abs() < 1e-9);
    }

    #[test]
    fn shared_tokens_give_high_but_not_perfect_similarity() {
        let s = sim("score_cricket", "score_rugby");
        assert!(s > 0.25, "similarity was {s}");
        assert!(s < 0.99, "similarity was {s}");
    }

    #[test]
    fn unrelated_headers_are_nearly_orthogonal() {
        let s = sim("population_density", "shoe_size");
        assert!(s.abs() < 0.35, "similarity was {s}");
        let related = sim("engine_power_car", "engine_power_truck");
        assert!(related > s);
    }

    #[test]
    fn synonyms_increase_similarity() {
        // "qty" folds onto "quantity", so the two headers share the canonical token.
        let s = sim("qty_sold", "quantity_sold");
        assert!(s > 0.9, "similarity was {s}");
    }

    #[test]
    fn empty_header_maps_to_zero_vector() {
        let e = HashEmbedder::default();
        let v = e.embed("");
        assert_eq!(v.len(), DEFAULT_TEXT_DIM);
        assert!(v.iter().all(|&x| x == 0.0));
        let v2 = e.embed("___");
        assert!(v2.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn l1_variant_sums_to_one_in_absolute_value() {
        let e = HashEmbedder::default();
        let v = e.embed_l1("test_score");
        let l1: f64 = v.iter().map(|x| x.abs()).sum();
        assert!((l1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn batch_embedding_matches_individual() {
        let e = HashEmbedder::default();
        let headers = vec!["age".to_string(), "height".to_string()];
        let batch = e.embed_batch(&headers);
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[0], e.embed("age"));
        assert_eq!(batch[1], e.embed("height"));
    }

    #[test]
    fn fnv_hash_is_stable() {
        assert_eq!(fnv1a(b"age"), fnv1a(b"age"));
        assert_ne!(fnv1a(b"age"), fnv1a(b"agf"));
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn tiny_dimension_panics() {
        HashEmbedder::new(1);
    }

    #[test]
    fn plural_and_singular_are_close() {
        let s = sim("temperatures", "temperature");
        assert!(s > 0.8, "similarity was {s}");
    }

    #[test]
    fn embedder_round_trips_through_json_bit_exactly() {
        use gem_json::{FromJson, Json, ToJson};
        let e = HashEmbedder::new(48);
        let text = e.to_json().to_compact_string();
        let back = HashEmbedder::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.dim(), e.dim());
        assert_eq!(back.token_weight(), e.token_weight());
        assert_eq!(back.trigram_weight(), e.trigram_weight());
        for header in ["engine_power", "MarketValue", "", "qty_sold"] {
            assert_eq!(back.embed(header), e.embed(header), "{header}");
        }
        // A too-small dimension is rejected at load time.
        let bad = gem_json::object(vec![
            ("dim", gem_json::number(1.0)),
            ("token_weight", gem_json::bits(1.0)),
            ("trigram_weight", gem_json::bits(0.4)),
        ]);
        assert!(HashEmbedder::from_json(&bad).is_err());
    }
}
