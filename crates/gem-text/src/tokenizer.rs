//! Header tokenisation.
//!
//! Column headers in data lakes mix naming conventions: `Score_Cricket`, `enginePowerCar`,
//! `battery power (device)`, `p10`. The tokenizer normalises all of these into lower-case
//! word tokens so the embedder and the synonym table see a canonical form.

/// Split a header string into lower-cased tokens.
///
/// Boundaries are: any non-alphanumeric character, an underscore, a transition from a digit
/// to a letter (or vice versa), and a lower-to-upper camelCase transition. Empty tokens are
/// dropped.
pub fn tokenize(header: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    let mut prev: Option<char> = None;
    for c in header.chars() {
        let is_word = c.is_alphanumeric();
        if !is_word {
            flush(&mut current, &mut tokens);
            prev = None;
            continue;
        }
        if let Some(p) = prev {
            let camel_boundary = p.is_lowercase() && c.is_uppercase();
            let digit_boundary = p.is_ascii_digit() != c.is_ascii_digit();
            if camel_boundary || digit_boundary {
                flush(&mut current, &mut tokens);
            }
        }
        current.extend(c.to_lowercase());
        prev = Some(c);
    }
    flush(&mut current, &mut tokens);
    tokens
}

fn flush(current: &mut String, tokens: &mut Vec<String>) {
    if !current.is_empty() {
        tokens.push(std::mem::take(current));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_underscores_and_lowercases() {
        assert_eq!(tokenize("Score_Cricket"), vec!["score", "cricket"]);
        assert_eq!(tokenize("engine_power_car"), vec!["engine", "power", "car"]);
    }

    #[test]
    fn splits_camel_case() {
        assert_eq!(tokenize("enginePowerCar"), vec!["engine", "power", "car"]);
        assert_eq!(tokenize("MarketValue"), vec!["market", "value"]);
    }

    #[test]
    fn splits_on_punctuation_and_whitespace() {
        assert_eq!(
            tokenize("battery power (device)"),
            vec!["battery", "power", "device"]
        );
        assert_eq!(tokenize("height-mountain"), vec!["height", "mountain"]);
    }

    #[test]
    fn splits_digit_boundaries() {
        assert_eq!(tokenize("p10"), vec!["p", "10"]);
        assert_eq!(tokenize("top10percent"), vec!["top", "10", "percent"]);
    }

    #[test]
    fn empty_and_symbol_only_headers() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("___").is_empty());
        assert!(tokenize("--- !!").is_empty());
    }

    #[test]
    fn consecutive_uppercase_stays_together() {
        // Acronyms like GDP are not exploded letter-by-letter.
        assert_eq!(tokenize("GDP"), vec!["gdp"]);
        assert_eq!(tokenize("countryGDP"), vec!["country", "gdp"]);
    }

    #[test]
    fn unicode_headers_are_handled() {
        assert_eq!(tokenize("prix_moyen"), vec!["prix", "moyen"]);
        assert_eq!(tokenize("größe"), vec!["größe"]);
    }
}
