//! # gem-text
//!
//! Deterministic header-text embeddings — the offline substitute for the SBERT model used in
//! §3.3 of the paper.
//!
//! The paper embeds column headers with Sentence-BERT so that lexically/semantically related
//! headers land close together in cosine space, then L1-normalises the embedding and
//! concatenates it with the value embeddings. Running a transformer offline in pure Rust is
//! out of scope for this reproduction, so this crate provides [`HashEmbedder`]: a
//! deterministic embedder that
//!
//! 1. tokenises a header into lower-cased word tokens (splitting on punctuation, underscores
//!    and camelCase boundaries),
//! 2. folds common abbreviations and close synonyms onto canonical forms via a small
//!    built-in [`SynonymTable`],
//! 3. hashes each token and each character trigram into a fixed-dimensional vector
//!    (feature hashing with a signed hash, i.e. the "hashing trick"), and
//! 4. averages and L2-normalises the result.
//!
//! The properties that matter for the downstream experiments are preserved: identical
//! headers map to identical vectors, headers sharing tokens ("score_cricket" vs
//! "score_rugby") are similar but not identical, and unrelated headers are nearly
//! orthogonal. See DESIGN.md §2 for the substitution rationale.

#![deny(missing_docs)]
#![warn(clippy::all)]

mod embedder;
mod synonyms;
mod tokenizer;

pub use embedder::{HashEmbedder, TextEmbedder, DEFAULT_TEXT_DIM};
pub use synonyms::SynonymTable;
pub use tokenizer::tokenize;
