//! A small domain synonym/abbreviation table.
//!
//! Data-lake headers abbreviate heavily (`qty`, `amt`, `yr`, `pct`). SBERT absorbs much of
//! this through sub-word semantics; the hashing embedder recovers a useful fraction of it by
//! folding well-known abbreviations and close synonyms onto canonical tokens before hashing.

use std::collections::HashMap;

/// Maps common header abbreviations and close synonyms to canonical tokens.
#[derive(Debug, Clone)]
pub struct SynonymTable {
    map: HashMap<&'static str, &'static str>,
}

impl Default for SynonymTable {
    fn default() -> Self {
        SynonymTable::new()
    }
}

impl SynonymTable {
    /// Build the built-in table.
    pub fn new() -> Self {
        let entries: &[(&'static str, &'static str)] = &[
            // quantities and amounts
            ("qty", "quantity"),
            ("quant", "quantity"),
            ("amt", "amount"),
            ("num", "number"),
            ("nbr", "number"),
            ("cnt", "count"),
            ("tot", "total"),
            // money
            ("amnt", "amount"),
            ("val", "value"),
            ("cost", "price"),
            ("prc", "price"),
            ("revenue", "income"),
            ("salary", "income"),
            ("wage", "income"),
            // time
            ("yr", "year"),
            ("yrs", "year"),
            ("mo", "month"),
            ("mth", "month"),
            ("hr", "hour"),
            ("hrs", "hour"),
            ("min", "minute"),
            ("mins", "minute"),
            ("sec", "second"),
            ("secs", "second"),
            ("dur", "duration"),
            ("dob", "birthdate"),
            // measurements
            ("wt", "weight"),
            ("wgt", "weight"),
            ("ht", "height"),
            ("len", "length"),
            ("lng", "length"),
            ("dist", "distance"),
            ("temp", "temperature"),
            ("lat", "latitude"),
            ("lon", "longitude"),
            ("lng2", "longitude"),
            ("alt", "altitude"),
            ("elev", "elevation"),
            ("vol", "volume"),
            ("pct", "percent"),
            ("perc", "percent"),
            ("percentage", "percent"),
            ("avg", "average"),
            ("med", "median"),
            ("std", "deviation"),
            ("stdev", "deviation"),
            // identifiers and ranks
            ("id", "identifier"),
            ("idx", "index"),
            ("no", "number"),
            ("pos", "position"),
            ("rnk", "rank"),
            ("ranking", "rank"),
            // people
            ("pop", "population"),
            ("age", "age"),
            // scores and ratings
            ("scr", "score"),
            ("rating", "score"),
            ("stars", "score"),
            // plural → singular for the most frequent cases
            ("scores", "score"),
            ("prices", "price"),
            ("values", "value"),
            ("weights", "weight"),
            ("heights", "height"),
            ("years", "year"),
            ("ages", "age"),
            ("counts", "count"),
            ("ranks", "rank"),
            ("ratings", "score"),
            ("quantities", "quantity"),
            ("amounts", "amount"),
            ("durations", "duration"),
            ("temperatures", "temperature"),
            ("populations", "population"),
        ];
        SynonymTable {
            map: entries.iter().cloned().collect(),
        }
    }

    /// Canonicalise a single lower-case token. Unknown tokens are returned unchanged.
    pub fn canonical<'a>(&self, token: &'a str) -> &'a str
    where
        'static: 'a,
    {
        self.map.get(token).copied().unwrap_or(token)
    }

    /// Canonicalise a whole token sequence.
    pub fn canonicalize(&self, tokens: &[String]) -> Vec<String> {
        tokens
            .iter()
            .map(|t| self.canonical(t.as_str()).to_string())
            .collect()
    }

    /// Number of entries in the table.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the table is empty (never true for the built-in table).
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_abbreviations_fold_to_canonical_forms() {
        let t = SynonymTable::new();
        assert_eq!(t.canonical("qty"), "quantity");
        assert_eq!(t.canonical("yr"), "year");
        assert_eq!(t.canonical("wt"), "weight");
        assert_eq!(t.canonical("pct"), "percent");
    }

    #[test]
    fn unknown_tokens_pass_through() {
        let t = SynonymTable::new();
        assert_eq!(t.canonical("cricket"), "cricket");
        assert_eq!(t.canonical(""), "");
    }

    #[test]
    fn plurals_fold_to_singular() {
        let t = SynonymTable::new();
        assert_eq!(t.canonical("scores"), "score");
        assert_eq!(t.canonical("prices"), "price");
    }

    #[test]
    fn canonicalize_sequences() {
        let t = SynonymTable::new();
        let toks = vec!["qty".to_string(), "sold".to_string()];
        assert_eq!(t.canonicalize(&toks), vec!["quantity", "sold"]);
    }

    #[test]
    fn table_is_populated() {
        let t = SynonymTable::new();
        assert!(!t.is_empty());
        assert!(t.len() > 50);
    }
}
