//! The column / dataset data model shared by every experiment.

use gem_json::{FromJson, Json, JsonError, ToJson};
use std::collections::BTreeMap;
use std::path::Path;

/// A single numeric column extracted from a table.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    /// Stable identifier within its dataset.
    pub id: usize,
    /// The column header (attribute name) as it would appear in the source table.
    pub header: String,
    /// The numeric cell values.
    pub values: Vec<f64>,
    /// Fine-grained ground-truth semantic type (e.g. `score_cricket`).
    pub fine_type: String,
    /// Coarse-grained ground-truth semantic type (e.g. `score`).
    pub coarse_type: String,
    /// Name of the (synthetic) table the column came from.
    pub table: String,
}

impl Column {
    /// Create a column where the fine and coarse types coincide.
    pub fn new(
        id: usize,
        header: impl Into<String>,
        values: Vec<f64>,
        semantic_type: impl Into<String>,
    ) -> Self {
        let t = semantic_type.into();
        Column {
            id,
            header: header.into(),
            values,
            fine_type: t.clone(),
            coarse_type: t,
            table: String::new(),
        }
    }

    /// Number of values in the column.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the column has no values.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// A corpus of numeric columns with ground-truth semantic types.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Human-readable corpus name (e.g. `"GDS (synthetic)"`).
    pub name: String,
    /// The columns.
    pub columns: Vec<Column>,
}

impl Dataset {
    /// Create a dataset from columns.
    pub fn new(name: impl Into<String>, columns: Vec<Column>) -> Self {
        Dataset {
            name: name.into(),
            columns,
        }
    }

    /// Number of columns.
    pub fn n_columns(&self) -> usize {
        self.columns.len()
    }

    /// The fine-grained ground-truth label of every column, in column order.
    pub fn fine_labels(&self) -> Vec<String> {
        self.columns.iter().map(|c| c.fine_type.clone()).collect()
    }

    /// The coarse-grained ground-truth label of every column, in column order.
    pub fn coarse_labels(&self) -> Vec<String> {
        self.columns.iter().map(|c| c.coarse_type.clone()).collect()
    }

    /// The headers of every column, in column order.
    pub fn headers(&self) -> Vec<String> {
        self.columns.iter().map(|c| c.header.clone()).collect()
    }

    /// Number of distinct fine-grained semantic types.
    pub fn n_fine_clusters(&self) -> usize {
        self.columns
            .iter()
            .map(|c| c.fine_type.as_str())
            .collect::<std::collections::BTreeSet<_>>()
            .len()
    }

    /// Number of distinct coarse-grained semantic types.
    pub fn n_coarse_clusters(&self) -> usize {
        self.columns
            .iter()
            .map(|c| c.coarse_type.as_str())
            .collect::<std::collections::BTreeSet<_>>()
            .len()
    }

    /// Map from fine-grained label to the indices of its columns.
    pub fn fine_cluster_members(&self) -> BTreeMap<String, Vec<usize>> {
        let mut map: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, c) in self.columns.iter().enumerate() {
            map.entry(c.fine_type.clone()).or_default().push(i);
        }
        map
    }

    /// Map from coarse-grained label to the indices of its columns.
    pub fn coarse_cluster_members(&self) -> BTreeMap<String, Vec<usize>> {
        let mut map: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, c) in self.columns.iter().enumerate() {
            map.entry(c.coarse_type.clone()).or_default().push(i);
        }
        map
    }

    /// Ground-truth label indices (dense integers) for the fine-grained annotation, suitable
    /// for the clustering metrics.
    pub fn fine_label_indices(&self) -> Vec<usize> {
        label_indices(&self.fine_labels())
    }

    /// Ground-truth label indices for the coarse-grained annotation.
    pub fn coarse_label_indices(&self) -> Vec<usize> {
        label_indices(&self.coarse_labels())
    }

    /// Total number of numeric values across all columns.
    pub fn total_values(&self) -> usize {
        self.columns.iter().map(|c| c.len()).sum()
    }

    /// Keep only the first `n` columns (used to build the scalability sweep of Figure 5).
    pub fn truncated(&self, n: usize) -> Dataset {
        Dataset {
            name: self.name.clone(),
            columns: self.columns.iter().take(n).cloned().collect(),
        }
    }

    /// Serialise the dataset to a pretty-printed JSON file.
    ///
    /// # Errors
    /// Returns any I/O or serialisation error.
    pub fn save_json(&self, path: &Path) -> Result<(), Box<dyn std::error::Error>> {
        std::fs::write(path, self.to_json().to_pretty_string())?;
        Ok(())
    }

    /// Load a dataset previously written with [`Dataset::save_json`].
    ///
    /// # Errors
    /// Returns any I/O or deserialisation error.
    pub fn load_json(path: &Path) -> Result<Self, Box<dyn std::error::Error>> {
        let json = std::fs::read_to_string(path)?;
        Ok(Self::from_json(&Json::parse(&json)?)?)
    }
}

impl ToJson for Column {
    fn to_json(&self) -> Json {
        gem_json::object(vec![
            ("id", gem_json::number(self.id as f64)),
            ("header", gem_json::string(&self.header)),
            ("values", gem_json::number_array(&self.values)),
            ("fine_type", gem_json::string(&self.fine_type)),
            ("coarse_type", gem_json::string(&self.coarse_type)),
            ("table", gem_json::string(&self.table)),
        ])
    }
}

impl FromJson for Column {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(Column {
            id: value.num_field("id")? as usize,
            header: value.str_field("header")?,
            values: gem_json::as_number_array(value.field("values")?)?,
            fine_type: value.str_field("fine_type")?,
            coarse_type: value.str_field("coarse_type")?,
            table: value.str_field("table")?,
        })
    }
}

impl ToJson for Dataset {
    fn to_json(&self) -> Json {
        gem_json::object(vec![
            ("name", gem_json::string(&self.name)),
            (
                "columns",
                Json::Array(self.columns.iter().map(Column::to_json).collect()),
            ),
        ])
    }
}

impl FromJson for Dataset {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let columns = value
            .field("columns")?
            .as_array()
            .ok_or_else(|| JsonError::conversion("`columns` is not an array"))?
            .iter()
            .map(Column::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Dataset {
            name: value.str_field("name")?,
            columns,
        })
    }
}

/// Convert string labels to dense integer indices, assigning indices in order of first
/// appearance.
pub fn label_indices(labels: &[String]) -> Vec<usize> {
    let mut map: BTreeMap<&str, usize> = BTreeMap::new();
    let mut next = 0usize;
    let mut out = Vec::with_capacity(labels.len());
    for l in labels {
        let idx = *map.entry(l.as_str()).or_insert_with(|| {
            let i = next;
            next += 1;
            i
        });
        out.push(idx);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_dataset() -> Dataset {
        let mut c1 = Column::new(0, "age", vec![25.0, 30.0, 35.0], "age");
        c1.coarse_type = "age".into();
        let mut c2 = Column::new(1, "Score_Cricket", vec![250.0, 300.0], "score_cricket");
        c2.coarse_type = "score".into();
        let mut c3 = Column::new(2, "Score_Rugby", vec![20.0, 25.0], "score_rugby");
        c3.coarse_type = "score".into();
        Dataset::new("test", vec![c1, c2, c3])
    }

    #[test]
    fn column_basics() {
        let c = Column::new(0, "age", vec![1.0, 2.0], "age");
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
        assert_eq!(c.fine_type, c.coarse_type);
        let empty = Column::new(1, "x", vec![], "x");
        assert!(empty.is_empty());
    }

    #[test]
    fn cluster_counts_respect_granularity() {
        let d = sample_dataset();
        assert_eq!(d.n_columns(), 3);
        assert_eq!(d.n_fine_clusters(), 3);
        assert_eq!(d.n_coarse_clusters(), 2);
    }

    #[test]
    fn cluster_members_group_by_label() {
        let d = sample_dataset();
        let coarse = d.coarse_cluster_members();
        assert_eq!(coarse["score"], vec![1, 2]);
        assert_eq!(coarse["age"], vec![0]);
        let fine = d.fine_cluster_members();
        assert_eq!(fine.len(), 3);
    }

    #[test]
    fn label_indices_are_dense_and_stable() {
        let labels = vec!["b".to_string(), "a".to_string(), "b".to_string()];
        assert_eq!(label_indices(&labels), vec![0, 1, 0]);
        let d = sample_dataset();
        assert_eq!(d.fine_label_indices(), vec![0, 1, 2]);
        assert_eq!(d.coarse_label_indices(), vec![0, 1, 1]);
    }

    #[test]
    fn truncated_keeps_prefix() {
        let d = sample_dataset();
        let t = d.truncated(2);
        assert_eq!(t.n_columns(), 2);
        assert_eq!(t.columns[1].header, "Score_Cricket");
        assert_eq!(d.truncated(100).n_columns(), 3);
    }

    #[test]
    fn total_values_sums_column_lengths() {
        assert_eq!(sample_dataset().total_values(), 7);
    }

    #[test]
    fn json_round_trip() {
        let d = sample_dataset();
        let dir = std::env::temp_dir().join("gem_data_test_roundtrip.json");
        d.save_json(&dir).unwrap();
        let loaded = Dataset::load_json(&dir).unwrap();
        assert_eq!(d, loaded);
        let _ = std::fs::remove_file(&dir);
    }

    #[test]
    fn headers_and_labels_align_with_columns() {
        let d = sample_dataset();
        assert_eq!(d.headers()[1], "Score_Cricket");
        assert_eq!(d.fine_labels()[2], "score_rugby");
        assert_eq!(d.coarse_labels()[2], "score");
    }
}
