//! # gem-data
//!
//! Column/table data model and synthetic corpus simulators for the Gem reproduction.
//!
//! The paper evaluates on four corpora — GDS, WDC, Sato Tables and GitTables (§4.1,
//! Table 1) — none of which can be redistributed here. The experiments, however, only
//! consume `(values, header, ground-truth semantic type)` triples, so this crate generates
//! synthetic corpora that match the published corpus statistics (column counts, number of
//! ground-truth clusters, coarse vs. fine annotation granularity) and, more importantly, the
//! qualitative properties that drive the paper's findings:
//!
//! * many semantic types share overlapping numeric ranges (ages vs. ranks vs. small counts),
//! * WDC headers are coarse and ambiguous ("score" covering cricket/rugby/football columns)
//!   while GDS headers are distinct and specific,
//! * Sato Tables has only 12 broad clusters, GitTables 19 with minimal context,
//! * fine-grained refinements subdivide coarse clusters by context with genuinely different
//!   value distributions (cricket scores run much higher than rugby scores, etc.).
//!
//! See DESIGN.md §2 for the substitution rationale.

#![deny(missing_docs)]
#![warn(clippy::all)]

mod annotation;
mod column;
mod corpus;
mod families;
mod spec;

pub use annotation::{dataset_statistics, DatasetStatistics, Granularity};
pub use column::{Column, Dataset};
pub use corpus::{
    build_corpus, figure1_columns, gds, gittables, sato_tables, wdc, CorpusConfig, CorpusKind,
};
pub use families::{family_catalog, Family};
pub use spec::{ClusterSpec, DistributionSpec};
