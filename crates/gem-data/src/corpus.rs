//! Synthetic corpus builders matched to the four evaluation datasets of the paper.

use crate::column::{Column, Dataset};
use crate::families::{family_catalog, Family};
use crate::spec::ClusterSpec;
use rand::prelude::*;
use rand::rngs::StdRng;

/// Which of the paper's four corpora to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorpusKind {
    /// Google Dataset Search: many columns, specific headers, 86 coarse / 96 fine clusters.
    Gds,
    /// Web Data Commons: many columns, ambiguous coarse headers, 147 coarse / 325 fine
    /// clusters.
    Wdc,
    /// Sato Tables (VizNet): 12 broad clusters with heavily overlapping value ranges.
    SatoTables,
    /// GitTables: 19 clusters, small corpus, minimal context.
    GitTables,
}

impl CorpusKind {
    /// Paper column count (Table 1) at scale 1.0.
    pub fn paper_columns(&self) -> usize {
        match self {
            CorpusKind::Gds => 2491,
            CorpusKind::Wdc => 2852,
            CorpusKind::SatoTables => 2231,
            CorpusKind::GitTables => 459,
        }
    }

    /// Paper coarse-grained cluster count (Table 1).
    pub fn paper_coarse_clusters(&self) -> usize {
        match self {
            CorpusKind::Gds => 86,
            CorpusKind::Wdc => 147,
            CorpusKind::SatoTables => 12,
            CorpusKind::GitTables => 19,
        }
    }

    /// Paper fine-grained cluster count (Table 1; Sato Tables and GitTables have no
    /// fine-grained refinement, so the coarse count is reused).
    pub fn paper_fine_clusters(&self) -> usize {
        match self {
            CorpusKind::Gds => 96,
            CorpusKind::Wdc => 325,
            CorpusKind::SatoTables => 12,
            CorpusKind::GitTables => 19,
        }
    }

    /// Probability that a column's header uses the ambiguous coarse family word instead of a
    /// type-specific header. WDC headers are "categorically coarse-grained" (§4.1), which is
    /// exactly why header-only embeddings do poorly there; GDS headers are specific.
    pub fn header_ambiguity(&self) -> f64 {
        match self {
            CorpusKind::Gds => 0.10,
            CorpusKind::Wdc => 0.85,
            CorpusKind::SatoTables => 0.50,
            CorpusKind::GitTables => 0.60,
        }
    }

    /// Display name used for generated datasets.
    pub fn name(&self) -> &'static str {
        match self {
            CorpusKind::Gds => "GDS (synthetic)",
            CorpusKind::Wdc => "WDC (synthetic)",
            CorpusKind::SatoTables => "Sato Tables (synthetic)",
            CorpusKind::GitTables => "GitTables (synthetic)",
        }
    }
}

/// Size and reproducibility knobs for corpus generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorpusConfig {
    /// Fraction of the paper-sized corpus to generate (1.0 = Table 1 sizes). Both the column
    /// count and the cluster count scale, so columns-per-cluster stays roughly constant.
    pub scale: f64,
    /// Minimum number of values per column.
    pub min_values: usize,
    /// Maximum number of values per column.
    pub max_values: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            scale: 0.25,
            min_values: 60,
            max_values: 160,
            seed: 7,
        }
    }
}

impl CorpusConfig {
    /// Full paper-sized corpora (Table 1 column counts).
    pub fn paper() -> Self {
        CorpusConfig {
            scale: 1.0,
            ..CorpusConfig::default()
        }
    }

    /// A small configuration for fast unit/integration tests.
    pub fn small() -> Self {
        CorpusConfig {
            scale: 0.05,
            min_values: 30,
            max_values: 60,
            seed: 7,
        }
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style scale override.
    pub fn with_scale(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }
}

/// Extra context suffixes used to split a coarse cluster into several fine-grained
/// sub-clusters (beyond the family's own variants).
const FINE_SPLIT_CONTEXTS: [&str; 8] = [
    "regional",
    "international",
    "domestic",
    "online",
    "annual",
    "daily",
    "historic",
    "projected",
];

/// Generate the GDS-like corpus.
pub fn gds(config: &CorpusConfig) -> Dataset {
    build_corpus(CorpusKind::Gds, config)
}

/// Generate the WDC-like corpus.
pub fn wdc(config: &CorpusConfig) -> Dataset {
    build_corpus(CorpusKind::Wdc, config)
}

/// Generate the Sato-Tables-like corpus.
pub fn sato_tables(config: &CorpusConfig) -> Dataset {
    build_corpus(CorpusKind::SatoTables, config)
}

/// Generate the GitTables-like corpus.
pub fn gittables(config: &CorpusConfig) -> Dataset {
    build_corpus(CorpusKind::GitTables, config)
}

/// Generate any of the four corpora.
pub fn build_corpus(kind: CorpusKind, config: &CorpusConfig) -> Dataset {
    let scale = config.scale.clamp(1e-3, 10.0);
    // Cluster counts always match Table 1: the scale knob only controls how many columns are
    // generated per cluster (with a floor of two columns per fine cluster so precision@k
    // stays defined). This keeps the task difficulty — many clusters with overlapping value
    // ranges — independent of the corpus size.
    let n_coarse = kind.paper_coarse_clusters();
    let n_fine = kind.paper_fine_clusters();
    let n_columns = (((kind.paper_columns() as f64) * scale).round() as usize)
        .max(2 * n_fine)
        .max(10);

    let mut rng = StdRng::seed_from_u64(config.seed ^ (kind.paper_columns() as u64));
    let specs = cluster_specs(kind, n_coarse, n_fine, n_columns, &mut rng);
    let mut columns = Vec::with_capacity(n_columns);
    let ambiguity = kind.header_ambiguity();
    let mut id = 0usize;
    for spec in &specs {
        for col_idx in 0..spec.n_columns {
            let n_values =
                rng.gen_range(config.min_values..=config.max_values.max(config.min_values));
            // Each column gets a slightly perturbed copy of the cluster distribution so the
            // cluster's columns are similar but not identical.
            let dist = spec.distribution.jitter(&mut rng);
            let values = dist.sample(n_values, &mut rng);
            let header = pick_header(spec, ambiguity, &mut rng);
            columns.push(Column {
                id,
                header,
                values,
                fine_type: spec.fine_type.clone(),
                coarse_type: spec.coarse_type.clone(),
                table: format!("{}_table_{}", spec.coarse_type, col_idx % 7),
            });
            id += 1;
        }
    }
    // Shuffle the columns so clusters are interleaved as they would be in a real corpus.
    columns.shuffle(&mut rng);
    for (i, c) in columns.iter_mut().enumerate() {
        c.id = i;
    }
    Dataset::new(kind.name(), columns)
}

/// Derive the per-cluster specifications for a corpus.
fn cluster_specs(
    kind: CorpusKind,
    n_coarse: usize,
    n_fine: usize,
    n_columns: usize,
    rng: &mut StdRng,
) -> Vec<ClusterSpec> {
    let catalog = family_catalog();
    // Coarse slots: (family, variant) pairs taken in a round-robin order over the catalog so
    // the corpus mixes many families before reusing one.
    let mut coarse_slots: Vec<(&Family, usize)> = Vec::with_capacity(n_coarse);
    let mut variant_round = 0usize;
    'outer: loop {
        for family in &catalog {
            if coarse_slots.len() >= n_coarse {
                break 'outer;
            }
            if variant_round < family.variants.len() {
                coarse_slots.push((family, variant_round));
            } else {
                // Families with fewer variants recycle their variants with an offset so the
                // corpus can still grow to very large cluster counts.
                coarse_slots.push((family, variant_round % family.variants.len()));
            }
        }
        variant_round += 1;
        if variant_round > 64 {
            break;
        }
    }

    // Distribute fine clusters over coarse clusters: every coarse cluster gets one fine
    // sub-cluster; the first (n_fine - n_coarse) coarse clusters get extra splits.
    let mut fine_per_coarse = vec![1usize; coarse_slots.len()];
    let mut extra = n_fine.saturating_sub(coarse_slots.len());
    let mut i = 0usize;
    while extra > 0 && !fine_per_coarse.is_empty() {
        let len = fine_per_coarse.len();
        fine_per_coarse[i % len] += 1;
        extra -= 1;
        i += 1;
    }

    let total_fine: usize = fine_per_coarse.iter().sum();
    let base_cols = n_columns / total_fine.max(1);
    let mut remainder = n_columns % total_fine.max(1);

    let mut specs = Vec::with_capacity(total_fine);
    for (slot_idx, ((family, variant_idx), &n_sub)) in
        coarse_slots.iter().zip(fine_per_coarse.iter()).enumerate()
    {
        let variant_name = family.variants[*variant_idx % family.variants.len()];
        // Coarse naming differs per corpus: GDS and WDC coarse annotations are per
        // (family, context) pair — matching the paper's 86 / 147 coarse clusters — while
        // Sato Tables and GitTables use the broad family supertype (12 / 19 clusters).
        let coarse_type = match kind {
            CorpusKind::Gds | CorpusKind::Wdc => format!("{}_{}", family.name, variant_name),
            _ => family.name.to_string(),
        };
        // Disambiguate recycled variants so coarse labels stay unique.
        let coarse_type = if slot_idx >= family_catalog_capacity(&catalog) {
            format!("{coarse_type}_{slot_idx}")
        } else {
            coarse_type
        };
        for sub in 0..n_sub {
            let fine_type = if n_sub == 1 {
                format!("{}_{}", family.name, variant_name)
            } else {
                format!(
                    "{}_{}_{}",
                    family.name,
                    variant_name,
                    FINE_SPLIT_CONTEXTS[sub % FINE_SPLIT_CONTEXTS.len()]
                )
            };
            // The fine split uses a further-shifted variant distribution so sub-clusters are
            // distributionally distinct (cricket vs rugby scores).
            let dist = family.variant_distribution(*variant_idx + sub * 2);
            let mut n_cols = base_cols;
            if remainder > 0 {
                n_cols += 1;
                remainder -= 1;
            }
            // Every cluster needs at least two columns so precision@k is defined.
            let n_cols = n_cols.max(2);
            let mut headers: Vec<String> = family.headers.iter().map(|h| h.to_string()).collect();
            headers.push(format!("{}_{}", family.name, variant_name));
            headers.push(format!("{}_{}", variant_name, family.name));
            specs.push(ClusterSpec {
                fine_type: unique_fine_name(&specs, fine_type),
                coarse_type: coarse_type.clone(),
                header_templates: headers,
                distribution: dist.jitter(rng),
                n_columns: n_cols,
            });
        }
    }
    specs
}

/// Number of unique (family, variant) pairs available before recycling starts.
fn family_catalog_capacity(catalog: &[Family]) -> usize {
    catalog.iter().map(|f| f.variants.len()).sum()
}

/// Fine-type names must be unique; recycled variants get a numeric suffix.
fn unique_fine_name(existing: &[ClusterSpec], candidate: String) -> String {
    if existing.iter().all(|s| s.fine_type != candidate) {
        return candidate;
    }
    let mut i = 2usize;
    loop {
        let name = format!("{candidate}_{i}");
        if existing.iter().all(|s| s.fine_type != name) {
            return name;
        }
        i += 1;
    }
}

/// Pick a header for a column: with probability `ambiguity` the bare coarse family word,
/// otherwise a specific header derived from the fine type.
fn pick_header(spec: &ClusterSpec, ambiguity: f64, rng: &mut StdRng) -> String {
    if rng.gen::<f64>() < ambiguity {
        // Ambiguous: one of the family-level spellings (first entries of the template list).
        spec.header_templates[rng.gen_range(0..spec.header_templates.len().min(3))].clone()
    } else {
        // Specific: derived from the fine type, with light formatting noise.
        let base = spec.fine_type.clone();
        match rng.gen_range(0..3) {
            0 => base,
            1 => base.replace('_', " "),
            _ => {
                // CamelCase variant.
                base.split('_')
                    .map(|t| {
                        let mut chars = t.chars();
                        match chars.next() {
                            Some(c) => c.to_uppercase().collect::<String>() + chars.as_str(),
                            None => String::new(),
                        }
                    })
                    .collect::<Vec<_>>()
                    .join("_")
            }
        }
    }
}

/// The four illustrative columns of Figure 1: Age, Rank, Test Score and Temperature, with
/// deliberately overlapping distribution shapes (Age ≈ Rank around 30, Test Score ≈
/// Temperature around 75) but different semantic types.
pub fn figure1_columns(seed: u64) -> Vec<Column> {
    use crate::spec::DistributionSpec as D;
    let mut rng = StdRng::seed_from_u64(seed);
    let specs = [
        (
            "Age (years)",
            "age",
            D::RoundedNormal {
                mean: 30.0,
                std: 6.0,
            },
        ),
        (
            "Rank",
            "rank",
            D::RoundedNormal {
                mean: 30.0,
                std: 6.0,
            },
        ),
        (
            "Test Score (%)",
            "test_score",
            D::Normal {
                mean: 75.0,
                std: 12.0,
            },
        ),
        (
            "Temperature (Celsius)",
            "temperature",
            D::Normal {
                mean: 75.0,
                std: 12.0,
            },
        ),
    ];
    specs
        .iter()
        .enumerate()
        .map(|(i, (header, fine, dist))| {
            let values = dist.sample(500, &mut rng);
            let mut c = Column::new(i, *header, values, *fine);
            c.coarse_type = fine.to_string();
            c
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CorpusConfig {
        CorpusConfig {
            scale: 0.02,
            min_values: 20,
            max_values: 40,
            seed: 3,
        }
    }

    #[test]
    fn paper_constants_match_table1() {
        assert_eq!(CorpusKind::Gds.paper_columns(), 2491);
        assert_eq!(CorpusKind::Wdc.paper_columns(), 2852);
        assert_eq!(CorpusKind::SatoTables.paper_columns(), 2231);
        assert_eq!(CorpusKind::GitTables.paper_columns(), 459);
        assert_eq!(CorpusKind::Gds.paper_coarse_clusters(), 86);
        assert_eq!(CorpusKind::Gds.paper_fine_clusters(), 96);
        assert_eq!(CorpusKind::Wdc.paper_coarse_clusters(), 147);
        assert_eq!(CorpusKind::Wdc.paper_fine_clusters(), 325);
        assert_eq!(CorpusKind::SatoTables.paper_coarse_clusters(), 12);
        assert_eq!(CorpusKind::GitTables.paper_coarse_clusters(), 19);
    }

    #[test]
    fn small_corpora_have_expected_shape() {
        for kind in [
            CorpusKind::Gds,
            CorpusKind::Wdc,
            CorpusKind::SatoTables,
            CorpusKind::GitTables,
        ] {
            let d = build_corpus(kind, &tiny());
            assert!(d.n_columns() >= 10, "{kind:?} too small: {}", d.n_columns());
            assert!(d.n_coarse_clusters() >= 4, "{kind:?}");
            assert!(d.n_fine_clusters() >= d.n_coarse_clusters(), "{kind:?}");
            // Every column has values and a header.
            assert!(d.columns.iter().all(|c| !c.values.is_empty()));
            assert!(d
                .columns
                .iter()
                .all(|c| c.values.iter().all(|v| v.is_finite())));
            // Each fine cluster has at least 2 members so precision@k is defined.
            for (label, members) in d.fine_cluster_members() {
                assert!(
                    members.len() >= 2,
                    "{kind:?} cluster {label} has a single column"
                );
            }
        }
    }

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let a = gds(&tiny());
        let b = gds(&tiny());
        assert_eq!(a, b);
        let c = gds(&tiny().with_seed(99));
        assert_ne!(a, c);
    }

    #[test]
    fn scale_controls_column_count() {
        let small = sato_tables(&tiny());
        let larger = sato_tables(&CorpusConfig {
            scale: 0.06,
            ..tiny()
        });
        assert!(larger.n_columns() > small.n_columns());
    }

    #[test]
    fn paper_scale_column_counts_match_table1() {
        // Only check the cheapest corpus at full scale to keep the test fast.
        let config = CorpusConfig {
            scale: 1.0,
            min_values: 5,
            max_values: 8,
            seed: 1,
        };
        let d = gittables(&config);
        assert_eq!(d.n_columns(), 459);
        assert_eq!(d.n_coarse_clusters(), 19);
    }

    #[test]
    fn wdc_headers_are_more_ambiguous_than_gds() {
        let config = CorpusConfig {
            scale: 0.1,
            min_values: 20,
            max_values: 30,
            seed: 5,
        };
        let g = gds(&config);
        let w = wdc(&config);
        let ambiguity = |d: &Dataset| {
            let distinct_headers = d
                .headers()
                .iter()
                .cloned()
                .collect::<std::collections::BTreeSet<_>>()
                .len() as f64;
            distinct_headers / d.n_fine_clusters() as f64
        };
        // GDS should have many distinct headers per cluster; WDC reuses the same coarse
        // words across clusters so its header-per-cluster ratio is lower.
        assert!(
            ambiguity(&g) > ambiguity(&w),
            "gds {} vs wdc {}",
            ambiguity(&g),
            ambiguity(&w)
        );
    }

    #[test]
    fn same_coarse_type_fine_splits_differ_distributionally() {
        let config = CorpusConfig {
            scale: 0.15,
            min_values: 50,
            max_values: 80,
            seed: 11,
        };
        let d = wdc(&config);
        // Find a coarse cluster with at least two fine sub-clusters and compare their means.
        let coarse = d.coarse_cluster_members();
        let mut checked = false;
        for (_, members) in coarse {
            let mut by_fine: std::collections::BTreeMap<&str, Vec<f64>> = Default::default();
            for &m in &members {
                let c = &d.columns[m];
                let mean = c.values.iter().sum::<f64>() / c.values.len() as f64;
                by_fine.entry(c.fine_type.as_str()).or_default().push(mean);
            }
            if by_fine.len() >= 2 {
                let means: Vec<f64> = by_fine
                    .values()
                    .map(|v| v.iter().sum::<f64>() / v.len() as f64)
                    .collect();
                let spread = means.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
                    - means.iter().cloned().fold(f64::INFINITY, f64::min);
                assert!(spread.abs() > 1e-6, "fine splits look identical");
                checked = true;
                break;
            }
        }
        assert!(checked, "no coarse cluster with multiple fine splits found");
    }

    #[test]
    fn figure1_columns_have_overlapping_shapes_but_distinct_types() {
        let cols = figure1_columns(1);
        assert_eq!(cols.len(), 4);
        let mean = |c: &Column| c.values.iter().sum::<f64>() / c.values.len() as f64;
        // Age ≈ Rank ≈ 30, Test Score ≈ Temperature ≈ 75.
        assert!((mean(&cols[0]) - 30.0).abs() < 2.0);
        assert!((mean(&cols[1]) - 30.0).abs() < 2.0);
        assert!((mean(&cols[2]) - 75.0).abs() < 2.0);
        assert!((mean(&cols[3]) - 75.0).abs() < 2.0);
        let types: std::collections::BTreeSet<_> =
            cols.iter().map(|c| c.fine_type.as_str()).collect();
        assert_eq!(types.len(), 4);
    }

    #[test]
    fn columns_are_shuffled_not_grouped() {
        let d = gds(&tiny());
        // The first few columns should not all share a fine type if shuffling happened.
        let first_types: std::collections::BTreeSet<_> = d.columns[..5.min(d.n_columns())]
            .iter()
            .map(|c| c.fine_type.as_str())
            .collect();
        assert!(first_types.len() > 1);
    }
}
