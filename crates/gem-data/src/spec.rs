//! Distribution and cluster specifications used by the corpus simulators.

use rand::rngs::StdRng;
use rand::Rng;
use rand_distr::{Beta, Distribution, Exp, Gamma, LogNormal, Normal, Uniform};

/// A parametric description of how a semantic type's values are distributed.
///
/// Each ground-truth cluster in the synthetic corpora draws its columns from one of these
/// shapes (optionally perturbed per column), which gives the corpora the property the paper
/// exploits: columns of the same type share a distributional fingerprint even when their
/// raw ranges overlap with other types.
#[derive(Debug, Clone, PartialEq)]
pub enum DistributionSpec {
    /// Gaussian values.
    Normal {
        /// Mean.
        mean: f64,
        /// Standard deviation (positive).
        std: f64,
    },
    /// Uniform on `[lo, hi]`.
    Uniform {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// Log-normal (right-skewed, strictly positive) — prices, incomes, populations.
    LogNormal {
        /// Mean of the underlying normal.
        mu: f64,
        /// Std of the underlying normal.
        sigma: f64,
    },
    /// Gamma (right-skewed, positive) — durations, waiting times.
    Gamma {
        /// Shape.
        shape: f64,
        /// Scale.
        scale: f64,
    },
    /// Exponential — inter-arrival style data.
    Exponential {
        /// Rate parameter.
        rate: f64,
    },
    /// A Beta distribution rescaled to `[lo, hi]` — bounded ratings and percentages.
    ScaledBeta {
        /// First shape parameter.
        alpha: f64,
        /// Second shape parameter.
        beta: f64,
        /// Lower bound of the output range.
        lo: f64,
        /// Upper bound of the output range.
        hi: f64,
    },
    /// Uniformly distributed integers in `[lo, hi]` — years, ranks, small counts.
    DiscreteUniform {
        /// Inclusive lower bound.
        lo: i64,
        /// Inclusive upper bound.
        hi: i64,
    },
    /// Gaussian values rounded to integers — ages, scores with integer grading.
    RoundedNormal {
        /// Mean.
        mean: f64,
        /// Standard deviation.
        std: f64,
    },
    /// A two-component Gaussian mixture — multimodal columns.
    Bimodal {
        /// Mean of the first mode.
        mean1: f64,
        /// Std of the first mode.
        std1: f64,
        /// Mean of the second mode.
        mean2: f64,
        /// Std of the second mode.
        std2: f64,
        /// Probability of drawing from the first mode.
        weight1: f64,
    },
}

impl DistributionSpec {
    /// Sample `n` values from the spec.
    pub fn sample(&self, n: usize, rng: &mut StdRng) -> Vec<f64> {
        match *self {
            DistributionSpec::Normal { mean, std } => {
                let d = Normal::new(mean, std.max(1e-9)).expect("validated std");
                (0..n).map(|_| d.sample(rng)).collect()
            }
            DistributionSpec::Uniform { lo, hi } => {
                let (lo, hi) = if hi > lo { (lo, hi) } else { (lo, lo + 1.0) };
                let d = Uniform::new_inclusive(lo, hi);
                (0..n).map(|_| d.sample(rng)).collect()
            }
            DistributionSpec::LogNormal { mu, sigma } => {
                let d = LogNormal::new(mu, sigma.max(1e-9)).expect("validated sigma");
                (0..n).map(|_| d.sample(rng)).collect()
            }
            DistributionSpec::Gamma { shape, scale } => {
                let d = Gamma::new(shape.max(1e-3), scale.max(1e-9)).expect("validated params");
                (0..n).map(|_| d.sample(rng)).collect()
            }
            DistributionSpec::Exponential { rate } => {
                let d = Exp::new(rate.max(1e-9)).expect("validated rate");
                (0..n).map(|_| d.sample(rng)).collect()
            }
            DistributionSpec::ScaledBeta {
                alpha,
                beta,
                lo,
                hi,
            } => {
                let d = Beta::new(alpha.max(1e-3), beta.max(1e-3)).expect("validated params");
                (0..n).map(|_| lo + (hi - lo) * d.sample(rng)).collect()
            }
            DistributionSpec::DiscreteUniform { lo, hi } => {
                let (lo, hi) = if hi >= lo { (lo, hi) } else { (lo, lo) };
                (0..n).map(|_| rng.gen_range(lo..=hi) as f64).collect()
            }
            DistributionSpec::RoundedNormal { mean, std } => {
                let d = Normal::new(mean, std.max(1e-9)).expect("validated std");
                (0..n).map(|_| d.sample(rng).round()).collect()
            }
            DistributionSpec::Bimodal {
                mean1,
                std1,
                mean2,
                std2,
                weight1,
            } => {
                let d1 = Normal::new(mean1, std1.max(1e-9)).expect("validated std");
                let d2 = Normal::new(mean2, std2.max(1e-9)).expect("validated std");
                (0..n)
                    .map(|_| {
                        if rng.gen::<f64>() < weight1 {
                            d1.sample(rng)
                        } else {
                            d2.sample(rng)
                        }
                    })
                    .collect()
            }
        }
    }

    /// A slightly perturbed copy of the spec, so two columns of the same semantic type do
    /// not share an identical generating distribution (real corpora never do). The
    /// perturbation keeps the family and the broad location/scale.
    pub fn jitter(&self, rng: &mut StdRng) -> DistributionSpec {
        let f = |rng: &mut StdRng| 1.0 + rng.gen_range(-0.15..0.15);
        match *self {
            DistributionSpec::Normal { mean, std } => DistributionSpec::Normal {
                mean: mean * f(rng),
                std: (std * f(rng)).max(1e-6),
            },
            DistributionSpec::Uniform { lo, hi } => {
                let width = (hi - lo).max(1e-6);
                let shift = width * rng.gen_range(-0.1..0.1);
                DistributionSpec::Uniform {
                    lo: lo + shift,
                    hi: hi + shift + width * rng.gen_range(-0.05..0.05),
                }
            }
            DistributionSpec::LogNormal { mu, sigma } => DistributionSpec::LogNormal {
                mu: mu + rng.gen_range(-0.1..0.1),
                sigma: (sigma * f(rng)).max(1e-6),
            },
            DistributionSpec::Gamma { shape, scale } => DistributionSpec::Gamma {
                shape: (shape * f(rng)).max(0.1),
                scale: (scale * f(rng)).max(1e-6),
            },
            DistributionSpec::Exponential { rate } => DistributionSpec::Exponential {
                rate: (rate * f(rng)).max(1e-6),
            },
            DistributionSpec::ScaledBeta {
                alpha,
                beta,
                lo,
                hi,
            } => DistributionSpec::ScaledBeta {
                alpha: (alpha * f(rng)).max(0.2),
                beta: (beta * f(rng)).max(0.2),
                lo,
                hi,
            },
            DistributionSpec::DiscreteUniform { lo, hi } => {
                let width = (hi - lo).max(1);
                let shift = (width as f64 * rng.gen_range(-0.05..0.05)) as i64;
                DistributionSpec::DiscreteUniform {
                    lo: lo + shift,
                    hi: hi + shift,
                }
            }
            DistributionSpec::RoundedNormal { mean, std } => DistributionSpec::RoundedNormal {
                mean: mean * f(rng),
                std: (std * f(rng)).max(0.5),
            },
            DistributionSpec::Bimodal {
                mean1,
                std1,
                mean2,
                std2,
                weight1,
            } => DistributionSpec::Bimodal {
                mean1: mean1 * f(rng),
                std1: (std1 * f(rng)).max(1e-6),
                mean2: mean2 * f(rng),
                std2: (std2 * f(rng)).max(1e-6),
                weight1: (weight1 * f(rng)).clamp(0.1, 0.9),
            },
        }
    }
}

/// The full specification of one ground-truth cluster (semantic type) in a synthetic corpus.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSpec {
    /// Fine-grained type name (unique within the corpus).
    pub fine_type: String,
    /// Coarse-grained super-type name (shared by several fine types).
    pub coarse_type: String,
    /// Header strings that columns of this type may carry.
    pub header_templates: Vec<String>,
    /// Value distribution.
    pub distribution: DistributionSpec,
    /// Number of columns to generate for this cluster.
    pub n_columns: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn sample_lengths_match_request() {
        let specs = vec![
            DistributionSpec::Normal {
                mean: 0.0,
                std: 1.0,
            },
            DistributionSpec::Uniform { lo: 0.0, hi: 1.0 },
            DistributionSpec::LogNormal {
                mu: 0.0,
                sigma: 0.5,
            },
            DistributionSpec::Gamma {
                shape: 2.0,
                scale: 1.0,
            },
            DistributionSpec::Exponential { rate: 1.0 },
            DistributionSpec::ScaledBeta {
                alpha: 2.0,
                beta: 2.0,
                lo: 0.0,
                hi: 10.0,
            },
            DistributionSpec::DiscreteUniform { lo: 1980, hi: 2012 },
            DistributionSpec::RoundedNormal {
                mean: 30.0,
                std: 5.0,
            },
            DistributionSpec::Bimodal {
                mean1: 0.0,
                std1: 1.0,
                mean2: 10.0,
                std2: 1.0,
                weight1: 0.5,
            },
        ];
        let mut r = rng();
        for s in specs {
            let v = s.sample(57, &mut r);
            assert_eq!(v.len(), 57);
            assert!(v.iter().all(|x| x.is_finite()), "{s:?}");
            assert!(s.sample(0, &mut r).is_empty());
        }
    }

    #[test]
    fn normal_sample_moments() {
        let mut r = rng();
        let v = DistributionSpec::Normal {
            mean: 10.0,
            std: 2.0,
        }
        .sample(5000, &mut r);
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        assert!((mean - 10.0).abs() < 0.2);
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut r = rng();
        let v = DistributionSpec::Uniform { lo: 5.0, hi: 6.0 }.sample(1000, &mut r);
        assert!(v.iter().all(|&x| (5.0..=6.0).contains(&x)));
        // Degenerate bounds are repaired rather than panicking.
        let w = DistributionSpec::Uniform { lo: 3.0, hi: 3.0 }.sample(10, &mut r);
        assert_eq!(w.len(), 10);
    }

    #[test]
    fn discrete_uniform_yields_integers_in_range() {
        let mut r = rng();
        let v = DistributionSpec::DiscreteUniform { lo: 1980, hi: 2012 }.sample(500, &mut r);
        assert!(v.iter().all(|&x| x.fract() == 0.0));
        assert!(v.iter().all(|&x| (1980.0..=2012.0).contains(&x)));
    }

    #[test]
    fn scaled_beta_respects_range() {
        let mut r = rng();
        let v = DistributionSpec::ScaledBeta {
            alpha: 2.0,
            beta: 5.0,
            lo: 0.0,
            hi: 10.0,
        }
        .sample(1000, &mut r);
        assert!(v.iter().all(|&x| (0.0..=10.0).contains(&x)));
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        assert!(mean < 5.0); // alpha < beta skews low
    }

    #[test]
    fn lognormal_and_gamma_are_positive() {
        let mut r = rng();
        for spec in [
            DistributionSpec::LogNormal {
                mu: 1.0,
                sigma: 1.0,
            },
            DistributionSpec::Gamma {
                shape: 2.0,
                scale: 3.0,
            },
            DistributionSpec::Exponential { rate: 0.5 },
        ] {
            let v = spec.sample(500, &mut r);
            assert!(v.iter().all(|&x| x > 0.0), "{spec:?}");
        }
    }

    #[test]
    fn bimodal_has_two_modes() {
        let mut r = rng();
        let v = DistributionSpec::Bimodal {
            mean1: 0.0,
            std1: 0.5,
            mean2: 100.0,
            std2: 0.5,
            weight1: 0.5,
        }
        .sample(2000, &mut r);
        let low = v.iter().filter(|&&x| x < 50.0).count();
        let high = v.len() - low;
        assert!(low > 700 && high > 700);
    }

    #[test]
    fn rounded_normal_is_integer_valued() {
        let mut r = rng();
        let v = DistributionSpec::RoundedNormal {
            mean: 30.0,
            std: 3.0,
        }
        .sample(200, &mut r);
        assert!(v.iter().all(|&x| x.fract() == 0.0));
    }

    #[test]
    fn jitter_keeps_the_family_but_changes_parameters() {
        let mut r = rng();
        let base = DistributionSpec::Normal {
            mean: 10.0,
            std: 2.0,
        };
        let jittered = base.jitter(&mut r);
        match jittered {
            DistributionSpec::Normal { mean, std } => {
                assert!((mean - 10.0).abs() < 3.0);
                assert!(std > 0.0);
            }
            other => panic!("family changed: {other:?}"),
        }
        // Jitter of every variant stays samplable.
        for spec in [
            DistributionSpec::Uniform { lo: 0.0, hi: 1.0 },
            DistributionSpec::LogNormal {
                mu: 0.0,
                sigma: 0.5,
            },
            DistributionSpec::Gamma {
                shape: 2.0,
                scale: 1.0,
            },
            DistributionSpec::Exponential { rate: 1.0 },
            DistributionSpec::ScaledBeta {
                alpha: 2.0,
                beta: 2.0,
                lo: 0.0,
                hi: 5.0,
            },
            DistributionSpec::DiscreteUniform { lo: 0, hi: 100 },
            DistributionSpec::RoundedNormal {
                mean: 5.0,
                std: 1.0,
            },
            DistributionSpec::Bimodal {
                mean1: 0.0,
                std1: 1.0,
                mean2: 5.0,
                std2: 1.0,
                weight1: 0.5,
            },
        ] {
            let j = spec.jitter(&mut r);
            assert_eq!(j.sample(5, &mut r).len(), 5);
        }
    }
}
