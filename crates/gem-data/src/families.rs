//! The catalogue of semantic-type families used to assemble the synthetic corpora.
//!
//! Each family describes a coarse semantic type (age, score, price, ...), the numeric shape
//! its columns take, the header vocabulary used for it, and a list of context variants
//! (cricket/rugby/football for scores, movie/book/hotel for ratings, ...) from which
//! fine-grained sub-types are derived. The corpus builders in [`crate::corpus`] expand these
//! families until the requested number of ground-truth clusters is reached.

use crate::spec::DistributionSpec;

/// A coarse semantic-type family.
#[derive(Debug, Clone, PartialEq)]
pub struct Family {
    /// Coarse type name (also the ambiguous header used by WDC-style corpora).
    pub name: &'static str,
    /// Header spellings for the coarse type.
    pub headers: Vec<&'static str>,
    /// Context variants from which fine-grained sub-types are derived. A variant shifts the
    /// base distribution so sub-types are distributionally (not just nominally) different.
    pub variants: Vec<&'static str>,
    /// Base value distribution for the family.
    pub base: DistributionSpec,
}

impl Family {
    /// Distribution of the `i`-th variant: the base shape relocated/rescaled so that
    /// different fine-grained sub-types genuinely differ (cricket scores ≫ rugby scores).
    pub fn variant_distribution(&self, variant_index: usize) -> DistributionSpec {
        let i = variant_index as f64;
        // Location multiplier grows with the variant index; spread changes more slowly so
        // the family keeps a recognisable shape.
        let loc = 1.0 + 0.75 * i;
        let spread = 1.0 + 0.20 * i;
        match self.base {
            DistributionSpec::Normal { mean, std } => DistributionSpec::Normal {
                mean: mean * loc,
                std: std * spread,
            },
            DistributionSpec::Uniform { lo, hi } => DistributionSpec::Uniform {
                lo: lo * loc,
                hi: hi * loc + (hi - lo) * 0.1 * i,
            },
            DistributionSpec::LogNormal { mu, sigma } => DistributionSpec::LogNormal {
                mu: mu + 0.4 * i,
                sigma: sigma * spread,
            },
            DistributionSpec::Gamma { shape, scale } => DistributionSpec::Gamma {
                shape,
                scale: scale * loc,
            },
            DistributionSpec::Exponential { rate } => {
                DistributionSpec::Exponential { rate: rate / loc }
            }
            DistributionSpec::ScaledBeta {
                alpha,
                beta,
                lo,
                hi,
            } => DistributionSpec::ScaledBeta {
                alpha: alpha + 0.5 * i,
                beta,
                lo,
                hi: hi * (1.0 + 0.3 * i),
            },
            DistributionSpec::DiscreteUniform { lo, hi } => DistributionSpec::DiscreteUniform {
                lo: lo + ((hi - lo) as f64 * 0.2 * i) as i64,
                hi: hi + ((hi - lo) as f64 * 0.4 * i) as i64,
            },
            DistributionSpec::RoundedNormal { mean, std } => DistributionSpec::RoundedNormal {
                mean: mean * loc,
                std: std * spread,
            },
            DistributionSpec::Bimodal {
                mean1,
                std1,
                mean2,
                std2,
                weight1,
            } => DistributionSpec::Bimodal {
                mean1: mean1 * loc,
                std1: std1 * spread,
                mean2: mean2 * loc,
                std2: std2 * spread,
                weight1,
            },
        }
    }
}

/// The full family catalogue. Thirty families, each with at least four context variants,
/// giving up to several hundred fine-grained sub-types — enough to cover the largest corpus
/// (WDC fine-grained: 325 ground-truth clusters).
pub fn family_catalog() -> Vec<Family> {
    use DistributionSpec as D;
    vec![
        Family {
            name: "age",
            headers: vec!["age", "Age", "age_years"],
            variants: vec![
                "person", "patient", "player", "employee", "customer", "student",
            ],
            base: D::RoundedNormal {
                mean: 35.0,
                std: 12.0,
            },
        },
        Family {
            name: "year",
            headers: vec!["year", "Year", "yr"],
            variants: vec![
                "publication",
                "founded",
                "model",
                "birth",
                "release",
                "construction",
            ],
            base: D::DiscreteUniform { lo: 1950, hi: 2012 },
        },
        Family {
            name: "score",
            headers: vec!["score", "Score", "points"],
            variants: vec![
                "cricket",
                "rugby",
                "football",
                "basketball",
                "exam",
                "credit",
            ],
            base: D::RoundedNormal {
                mean: 40.0,
                std: 15.0,
            },
        },
        Family {
            name: "rating",
            headers: vec!["rating", "Rating", "stars"],
            variants: vec!["movie", "book", "hotel", "restaurant", "product", "app"],
            base: D::ScaledBeta {
                alpha: 4.0,
                beta: 2.0,
                lo: 0.0,
                hi: 5.0,
            },
        },
        Family {
            name: "price",
            headers: vec!["price", "Price", "cost", "amount"],
            variants: vec!["product", "house", "car", "ticket", "stock", "meal"],
            base: D::LogNormal {
                mu: 3.5,
                sigma: 0.8,
            },
        },
        Family {
            name: "weight",
            headers: vec!["weight", "Weight", "wt"],
            variants: vec![
                "human",
                "package",
                "animal",
                "vehicle",
                "luggage",
                "ingredient",
            ],
            base: D::Normal {
                mean: 70.0,
                std: 15.0,
            },
        },
        Family {
            name: "height",
            headers: vec!["height", "Height", "ht"],
            variants: vec!["person", "building", "mountain", "tree", "wave", "ceiling"],
            base: D::Normal {
                mean: 170.0,
                std: 12.0,
            },
        },
        Family {
            name: "length",
            headers: vec!["length", "Length", "len"],
            variants: vec!["river", "road", "song", "film", "bridge", "cable"],
            base: D::Gamma {
                shape: 2.0,
                scale: 40.0,
            },
        },
        Family {
            name: "width",
            headers: vec!["width", "Width"],
            variants: vec!["image", "road", "screen", "fabric", "river", "margin"],
            base: D::Bimodal {
                mean1: 5.0,
                std1: 1.0,
                mean2: 256.0,
                std2: 40.0,
                weight1: 0.4,
            },
        },
        Family {
            name: "temperature",
            headers: vec!["temperature", "Temperature", "temp"],
            variants: vec!["city", "body", "oven", "engine", "ocean", "cpu"],
            base: D::Normal {
                mean: 22.0,
                std: 8.0,
            },
        },
        Family {
            name: "population",
            headers: vec!["population", "Population", "pop"],
            variants: vec!["city", "country", "region", "district", "species", "campus"],
            base: D::LogNormal {
                mu: 10.0,
                sigma: 1.5,
            },
        },
        Family {
            name: "rank",
            headers: vec!["rank", "Rank", "position"],
            variants: vec!["university", "player", "journal", "book", "team", "website"],
            base: D::DiscreteUniform { lo: 1, hi: 100 },
        },
        Family {
            name: "duration",
            headers: vec!["duration", "Duration", "time"],
            variants: vec!["flight", "movie", "call", "commute", "battery", "download"],
            base: D::Gamma {
                shape: 3.0,
                scale: 60.0,
            },
        },
        Family {
            name: "percent",
            headers: vec!["percent", "Percentage", "pct"],
            variants: vec![
                "growth",
                "discount",
                "humidity",
                "attendance",
                "battery",
                "tax",
            ],
            base: D::ScaledBeta {
                alpha: 2.0,
                beta: 2.0,
                lo: 0.0,
                hi: 100.0,
            },
        },
        Family {
            name: "count",
            headers: vec!["count", "Count", "quantity", "qty"],
            variants: vec![
                "visits",
                "orders",
                "downloads",
                "students",
                "rooms",
                "errors",
            ],
            base: D::Exponential { rate: 0.02 },
        },
        Family {
            name: "income",
            headers: vec!["income", "Salary", "salary"],
            variants: vec![
                "household",
                "engineer",
                "teacher",
                "ceo",
                "freelancer",
                "pension",
            ],
            base: D::LogNormal {
                mu: 10.5,
                sigma: 0.5,
            },
        },
        Family {
            name: "mileage",
            headers: vec!["mileage", "Mileage", "odometer"],
            variants: vec!["car", "truck", "motorcycle", "lease", "fleet", "taxi"],
            base: D::LogNormal {
                mu: 10.0,
                sigma: 1.2,
            },
        },
        Family {
            name: "latitude",
            headers: vec!["latitude", "Latitude", "lat"],
            variants: vec!["city", "station", "sensor", "airport", "port", "trailhead"],
            base: D::Uniform {
                lo: -60.0,
                hi: 70.0,
            },
        },
        Family {
            name: "longitude",
            headers: vec!["longitude", "Longitude", "lon"],
            variants: vec!["city", "station", "sensor", "airport", "port", "trailhead"],
            base: D::Uniform {
                lo: -180.0,
                hi: 180.0,
            },
        },
        Family {
            name: "power",
            headers: vec!["power", "Power"],
            variants: vec![
                "engine_car",
                "battery_device",
                "plant",
                "turbine",
                "amplifier",
                "solar_panel",
            ],
            base: D::Gamma {
                shape: 4.0,
                scale: 30.0,
            },
        },
        Family {
            name: "speed",
            headers: vec!["speed", "Speed", "velocity"],
            variants: vec!["car", "wind", "internet", "runner", "train", "processor"],
            base: D::Normal {
                mean: 80.0,
                std: 25.0,
            },
        },
        Family {
            name: "area",
            headers: vec!["area", "Area", "surface"],
            variants: vec!["apartment", "country", "lake", "farm", "park", "roof"],
            base: D::LogNormal {
                mu: 4.5,
                sigma: 1.0,
            },
        },
        Family {
            name: "volume",
            headers: vec!["volume", "Volume"],
            variants: vec!["reservoir", "engine", "shipment", "trade", "bottle", "tank"],
            base: D::LogNormal {
                mu: 2.0,
                sigma: 1.0,
            },
        },
        Family {
            name: "pressure",
            headers: vec!["pressure", "Pressure"],
            variants: vec![
                "atmospheric",
                "tire",
                "blood",
                "pipeline",
                "hydraulic",
                "vacuum",
            ],
            base: D::Normal {
                mean: 1013.0,
                std: 30.0,
            },
        },
        Family {
            name: "distance",
            headers: vec!["distance", "Distance", "dist"],
            variants: vec![
                "commute", "marathon", "shipping", "planet", "hiking", "delivery",
            ],
            base: D::Gamma {
                shape: 2.0,
                scale: 15.0,
            },
        },
        Family {
            name: "energy",
            headers: vec!["energy", "Energy", "consumption"],
            variants: vec![
                "household",
                "factory",
                "vehicle",
                "datacenter",
                "appliance",
                "city",
            ],
            base: D::LogNormal {
                mu: 6.0,
                sigma: 0.9,
            },
        },
        Family {
            name: "gdp",
            headers: vec!["gdp", "GDP", "gdp_per_capita"],
            variants: vec!["country", "state", "city", "region", "sector", "capita"],
            base: D::LogNormal {
                mu: 9.5,
                sigma: 1.1,
            },
        },
        Family {
            name: "stock",
            headers: vec!["stock", "Stock", "inventory"],
            variants: vec!["warehouse", "shop", "pharmacy", "grocery", "parts", "books"],
            base: D::Exponential { rate: 0.01 },
        },
        Family {
            name: "depth",
            headers: vec!["depth", "Depth"],
            variants: vec!["ocean", "lake", "well", "snow", "soil", "pool"],
            base: D::Gamma {
                shape: 1.5,
                scale: 50.0,
            },
        },
        Family {
            name: "humidity",
            headers: vec!["humidity", "Humidity"],
            variants: vec![
                "indoor",
                "outdoor",
                "greenhouse",
                "warehouse",
                "museum",
                "server_room",
            ],
            base: D::ScaledBeta {
                alpha: 3.0,
                beta: 2.0,
                lo: 10.0,
                hi: 100.0,
            },
        },
    ]
}

#[cfg(test)]
impl DistributionSpec {
    /// Helper for the test above: variant 0 applies identity multipliers, so it should equal
    /// the base for the location/scale families (and exactly equals it structurally).
    fn into_variant_zero(self) -> DistributionSpec {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn catalog_has_thirty_families_with_variants() {
        let cat = family_catalog();
        assert_eq!(cat.len(), 30);
        for f in &cat {
            assert!(!f.headers.is_empty(), "family {} has no headers", f.name);
            assert!(
                f.variants.len() >= 4,
                "family {} has too few variants",
                f.name
            );
        }
    }

    #[test]
    fn family_names_are_unique() {
        let cat = family_catalog();
        let names: std::collections::BTreeSet<_> = cat.iter().map(|f| f.name).collect();
        assert_eq!(names.len(), cat.len());
    }

    #[test]
    fn total_fine_grained_capacity_covers_wdc() {
        let cat = family_catalog();
        let total: usize = cat.iter().map(|f| f.variants.len()).sum();
        assert!(
            total >= 150,
            "only {total} fine-grained sub-types available"
        );
    }

    #[test]
    fn variant_distributions_are_samplable_and_shifted() {
        let cat = family_catalog();
        let mut rng = StdRng::seed_from_u64(5);
        for f in &cat {
            let d0 = f.variant_distribution(0).sample(200, &mut rng);
            let d3 = f.variant_distribution(3).sample(200, &mut rng);
            assert_eq!(d0.len(), 200);
            assert_eq!(d3.len(), 200);
            let m0 = d0.iter().sum::<f64>() / 200.0;
            let m3 = d3.iter().sum::<f64>() / 200.0;
            // Later variants shift the location for every family except the symmetric
            // bounded ones, where the spread/skew shifts instead; just require a change.
            assert!(
                (m0 - m3).abs() > 1e-6 || f.name == "latitude" || f.name == "longitude",
                "family {} variants look identical",
                f.name
            );
        }
    }

    #[test]
    fn variant_zero_equals_base_shape() {
        let cat = family_catalog();
        for f in &cat {
            assert_eq!(
                f.variant_distribution(0),
                f.base.clone().into_variant_zero()
            );
        }
    }
}
