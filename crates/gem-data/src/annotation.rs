//! Annotation granularity and dataset statistics (Table 1).

use crate::column::Dataset;

/// Which ground-truth annotation to evaluate against.
///
/// §4.1.1 of the paper describes refining coarse-grained labels (e.g. `score`) into
/// fine-grained ones (e.g. `score_cricket`, `score_rugby`) for the GDS and WDC corpora; the
/// numeric-only experiments of Table 2 use the coarse version while the header+value
/// experiments of Table 3 use the fine version.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Granularity {
    /// Original, broad semantic types.
    Coarse,
    /// Refined, context-specific semantic types.
    Fine,
}

impl Granularity {
    /// Ground-truth labels of a dataset at this granularity.
    pub fn labels(&self, dataset: &Dataset) -> Vec<String> {
        match self {
            Granularity::Coarse => dataset.coarse_labels(),
            Granularity::Fine => dataset.fine_labels(),
        }
    }

    /// Dense integer ground-truth labels at this granularity.
    pub fn label_indices(&self, dataset: &Dataset) -> Vec<usize> {
        match self {
            Granularity::Coarse => dataset.coarse_label_indices(),
            Granularity::Fine => dataset.fine_label_indices(),
        }
    }

    /// Number of ground-truth clusters at this granularity.
    pub fn n_clusters(&self, dataset: &Dataset) -> usize {
        match self {
            Granularity::Coarse => dataset.n_coarse_clusters(),
            Granularity::Fine => dataset.n_fine_clusters(),
        }
    }
}

/// Summary statistics of a dataset, mirroring one column of Table 1 of the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStatistics {
    /// Dataset name.
    pub name: String,
    /// Number of numeric columns.
    pub n_columns: usize,
    /// Number of coarse-grained ground-truth clusters.
    pub coarse_clusters: usize,
    /// Number of fine-grained ground-truth clusters.
    pub fine_clusters: usize,
    /// Total number of numeric values.
    pub total_values: usize,
    /// Mean number of values per column.
    pub mean_values_per_column: f64,
    /// Mean number of columns per fine-grained cluster.
    pub mean_columns_per_fine_cluster: f64,
}

/// Compute the Table 1 statistics of a dataset.
pub fn dataset_statistics(dataset: &Dataset) -> DatasetStatistics {
    let n_columns = dataset.n_columns();
    let fine = dataset.n_fine_clusters();
    DatasetStatistics {
        name: dataset.name.clone(),
        n_columns,
        coarse_clusters: dataset.n_coarse_clusters(),
        fine_clusters: fine,
        total_values: dataset.total_values(),
        mean_values_per_column: if n_columns == 0 {
            0.0
        } else {
            dataset.total_values() as f64 / n_columns as f64
        },
        mean_columns_per_fine_cluster: if fine == 0 {
            0.0
        } else {
            n_columns as f64 / fine as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;

    fn dataset() -> Dataset {
        let mut c1 = Column::new(0, "score", vec![1.0, 2.0], "score_cricket");
        c1.coarse_type = "score".into();
        let mut c2 = Column::new(1, "score", vec![3.0, 4.0, 5.0], "score_rugby");
        c2.coarse_type = "score".into();
        let mut c3 = Column::new(2, "age", vec![30.0], "age_person");
        c3.coarse_type = "age".into();
        Dataset::new("toy", vec![c1, c2, c3])
    }

    #[test]
    fn granularity_selects_labels() {
        let d = dataset();
        assert_eq!(Granularity::Coarse.n_clusters(&d), 2);
        assert_eq!(Granularity::Fine.n_clusters(&d), 3);
        assert_eq!(Granularity::Coarse.labels(&d)[0], "score");
        assert_eq!(Granularity::Fine.labels(&d)[0], "score_cricket");
        assert_eq!(Granularity::Coarse.label_indices(&d), vec![0, 0, 1]);
        assert_eq!(Granularity::Fine.label_indices(&d), vec![0, 1, 2]);
    }

    #[test]
    fn statistics_reflect_dataset_contents() {
        let s = dataset_statistics(&dataset());
        assert_eq!(s.n_columns, 3);
        assert_eq!(s.coarse_clusters, 2);
        assert_eq!(s.fine_clusters, 3);
        assert_eq!(s.total_values, 6);
        assert!((s.mean_values_per_column - 2.0).abs() < 1e-12);
        assert!((s.mean_columns_per_fine_cluster - 1.0).abs() < 1e-12);
        assert_eq!(s.name, "toy");
    }

    #[test]
    fn statistics_of_empty_dataset_do_not_divide_by_zero() {
        let d = Dataset::new("empty", vec![]);
        let s = dataset_statistics(&d);
        assert_eq!(s.n_columns, 0);
        assert_eq!(s.mean_values_per_column, 0.0);
        assert_eq!(s.mean_columns_per_fine_cluster, 0.0);
    }
}
