//! The `gem-lint` command: run the workspace invariants pass.
//!
//! ```text
//! gem-lint [--root PATH] [--json] [--write-fingerprint] [--fingerprint-out PATH]
//! ```
//!
//! * default — lint the workspace at `--root` (default: the current directory, or the
//!   workspace this binary was built from when run via `cargo run -p gem-lint`) and
//!   print the rustc-style report; exit 0 when clean, 1 on violations.
//! * `--json` — print the machine-readable report instead (CI uploads this artifact).
//! * `--write-fingerprint` — regenerate `wire-fingerprint.json` from `gem-proto` at
//!   HEAD (to `--fingerprint-out` if given) instead of linting.
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    json: bool,
    write_fingerprint: bool,
    fingerprint_out: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: default_root(),
        json: false,
        write_fingerprint: false,
        fingerprint_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => args.json = true,
            "--write-fingerprint" => args.write_fingerprint = true,
            "--root" => {
                args.root = PathBuf::from(it.next().ok_or("--root needs a path")?);
            }
            "--fingerprint-out" => {
                args.fingerprint_out = Some(PathBuf::from(
                    it.next().ok_or("--fingerprint-out needs a path")?,
                ));
            }
            "--help" | "-h" => {
                print_help();
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn print_help() {
    println!("gem-lint: enforce the workspace's serving invariants\n");
    println!(
        "usage: gem-lint [--root PATH] [--json] [--write-fingerprint] [--fingerprint-out PATH]\n"
    );
    println!("rules:");
    for rule in gem_lint::rules::RULES {
        println!("  {rule}  {}", gem_lint::rules::rule_summary(rule));
    }
    println!("\nsuppress a finding in-source (reason mandatory):");
    println!("  // gem-lint: allow(L3, reason = \"why this one is sound\")");
}

/// The workspace root: the manifest dir's grandparent when built in-tree (so
/// `cargo run -p gem-lint` works from anywhere inside the repo), else the CWD.
fn default_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    match manifest.parent().and_then(|p| p.parent()) {
        Some(root) if root.join("Cargo.toml").is_file() => root.to_path_buf(),
        _ => PathBuf::from("."),
    }
}

fn run(args: &Args) -> Result<bool, String> {
    if args.write_fingerprint {
        let proto = args.root.join("crates/gem-proto/src/lib.rs");
        let src = std::fs::read_to_string(&proto)
            .map_err(|e| format!("cannot read {}: {e}", proto.display()))?;
        let fp = gem_lint::wire_fingerprint_of(&src)?;
        let out = args
            .fingerprint_out
            .clone()
            .unwrap_or_else(|| args.root.join("wire-fingerprint.json"));
        std::fs::write(&out, gem_lint::fingerprint_json(&fp))
            .map_err(|e| format!("cannot write {}: {e}", out.display()))?;
        eprintln!(
            "gem-lint: wrote {} (protocol version {}, digest {})",
            out.display(),
            fp.protocol_version,
            fp.digest
        );
        return Ok(true);
    }
    let report = gem_lint::lint_workspace(&args.root, &gem_lint::LintConfig::default())
        .map_err(|e| format!("workspace walk failed: {e}"))?;
    if args.json {
        print!("{}", report.to_json());
    } else {
        print!("{}", report.to_text());
    }
    Ok(report.is_clean())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("gem-lint: {message}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(message) => {
            eprintln!("gem-lint: {message}");
            ExitCode::from(2)
        }
    }
}
