//! A minimal line-oriented Rust lexer: just enough syntax awareness for the lint rules.
//!
//! The lexer does one pass over a source file and produces, per physical line:
//!
//! * a **code view** — the line with comments removed and string/char literal *contents*
//!   blanked to spaces (delimiters kept, columns preserved), so token scans can never
//!   match inside a string or a comment;
//! * the **string literal fragments** that appeared on the line (for rules that inspect
//!   format strings);
//! * the **comment text** on the line (where `gem-lint:` pragmas live);
//! * the brace **depth at line start** (strings/comments/char literals excluded);
//! * whether the line is inside a **test region** — a `#[cfg(test)]` or `#[test]`
//!   attribute covers the item it annotates, tracked by brace depth.
//!
//! This is deliberately not a real parser: the rules only need token positions relative
//! to strings, comments, braces and test regions, and a full grammar would dwarf the
//! checks it serves. Known approximation: a lifetime tick (`'a`) is distinguished from a
//! char literal by lookahead, which handles every form the workspace uses.

/// One physical source line, annotated by the lexer.
#[derive(Debug, Clone)]
pub struct LineInfo {
    /// 1-based line number.
    pub number: usize,
    /// The code view: comments stripped, literal contents blanked, columns preserved.
    pub code: String,
    /// Contents of string literals that appear (or continue) on this line.
    pub strings: Vec<String>,
    /// Comment text on this line (`//…` tail or the inside of a block comment).
    pub comment: String,
    /// Brace depth at the start of the line.
    pub depth_at_start: usize,
    /// True when the line belongs to a `#[cfg(test)]` / `#[test]` item.
    pub in_test: bool,
}

/// A lexed source file.
#[derive(Debug)]
pub struct SourceModel {
    /// Per-line annotations, in order.
    pub lines: Vec<LineInfo>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Normal,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
}

/// Lex `src` into per-line annotations. Never fails: unterminated constructs simply
/// extend to end of file, which is the useful behaviour for linting work-in-progress
/// code.
pub fn lex(src: &str) -> SourceModel {
    let mut lines = Vec::new();
    let mut state = State::Normal;
    let mut depth: usize = 0;
    // Test-region tracking: `test_pending` is set when an attribute line was seen and
    // the annotated item's opening brace has not arrived yet; `test_until_depth` holds
    // the depth the region ends at (inclusive) once the brace opens.
    let mut test_pending = false;
    let mut test_until_depth: Option<usize> = None;

    for (idx, raw) in src.lines().enumerate() {
        let mut code = String::with_capacity(raw.len());
        let mut strings: Vec<String> = Vec::new();
        let mut comment = String::new();
        let mut current_string = String::new();
        let depth_at_start = depth;
        let in_test_at_start = test_until_depth.is_some();

        let chars: Vec<char> = raw.chars().collect();
        let mut i = 0;
        // A line that starts inside a string continues collecting that literal.
        if matches!(state, State::Str | State::RawStr(_)) {
            current_string.push('\n');
        }
        while i < chars.len() {
            let c = chars[i];
            match state {
                State::Normal => match c {
                    '/' if chars.get(i + 1) == Some(&'/') => {
                        comment.push_str(&chars[i + 2..].iter().collect::<String>());
                        state = State::LineComment;
                        break;
                    }
                    '/' if chars.get(i + 1) == Some(&'*') => {
                        state = State::BlockComment(1);
                        code.push_str("  ");
                        i += 2;
                    }
                    '"' => {
                        state = State::Str;
                        code.push('"');
                        i += 1;
                    }
                    'r' if starts_raw_string(&chars, i) => {
                        let hashes = count_hashes(&chars, i + 1);
                        state = State::RawStr(hashes);
                        for _ in 0..(2 + hashes as usize) {
                            code.push(' ');
                        }
                        code.pop();
                        code.push('"');
                        i += 2 + hashes as usize;
                    }
                    '\'' => {
                        // Lifetime or char literal? `'a` / `'static` have no closing
                        // tick within two chars unless they are `'x'` / `'\x'` forms.
                        if let Some(advance) = char_literal_len(&chars, i) {
                            code.push('\'');
                            for _ in 1..advance - 1 {
                                code.push(' ');
                            }
                            code.push('\'');
                            i += advance;
                        } else {
                            code.push('\'');
                            i += 1;
                        }
                    }
                    '{' => {
                        depth += 1;
                        if test_pending && test_until_depth.is_none() {
                            test_until_depth = Some(depth - 1);
                            test_pending = false;
                        }
                        code.push('{');
                        i += 1;
                    }
                    '}' => {
                        depth = depth.saturating_sub(1);
                        if test_until_depth == Some(depth) {
                            test_until_depth = None;
                        }
                        code.push('}');
                        i += 1;
                    }
                    _ => {
                        code.push(c);
                        i += 1;
                    }
                },
                State::LineComment => unreachable!("line comments break out of the loop"),
                State::BlockComment(n) => {
                    if c == '*' && chars.get(i + 1) == Some(&'/') {
                        if n == 1 {
                            state = State::Normal;
                        } else {
                            state = State::BlockComment(n - 1);
                        }
                        i += 2;
                    } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                        state = State::BlockComment(n + 1);
                        i += 2;
                    } else {
                        comment.push(c);
                        i += 1;
                    }
                }
                State::Str => match c {
                    '\\' => {
                        current_string.push(c);
                        if let Some(&next) = chars.get(i + 1) {
                            current_string.push(next);
                            code.push(' ');
                            code.push(' ');
                            i += 2;
                        } else {
                            code.push(' ');
                            i += 1;
                        }
                    }
                    '"' => {
                        strings.push(std::mem::take(&mut current_string));
                        state = State::Normal;
                        code.push('"');
                        i += 1;
                    }
                    _ => {
                        current_string.push(c);
                        code.push(' ');
                        i += 1;
                    }
                },
                State::RawStr(hashes) => {
                    if c == '"' && closes_raw_string(&chars, i, hashes) {
                        strings.push(std::mem::take(&mut current_string));
                        state = State::Normal;
                        code.push('"');
                        for _ in 0..hashes {
                            code.push(' ');
                        }
                        i += 1 + hashes as usize;
                    } else {
                        current_string.push(c);
                        code.push(' ');
                        i += 1;
                    }
                }
            }
        }
        if state == State::LineComment {
            state = State::Normal;
        }
        if matches!(state, State::Str | State::RawStr(_)) && !current_string.is_empty() {
            // Expose the partial literal so format-string rules see multi-line strings.
            strings.push(current_string.clone());
        }

        // An attribute marks the *next* item as test code; the attribute line itself is
        // also treated as test-region (it only matters for pragma-free symmetry).
        let code_trim = code.trim();
        let is_test_attr = code_trim.starts_with("#[cfg(test)")
            || code_trim.starts_with("#[test]")
            || code_trim.starts_with("#[cfg(all(test");
        if is_test_attr && test_until_depth.is_none() {
            test_pending = true;
        }

        lines.push(LineInfo {
            number: idx + 1,
            code,
            strings,
            comment,
            depth_at_start,
            in_test: in_test_at_start || test_until_depth.is_some() || is_test_attr,
        });
    }
    SourceModel { lines }
}

/// Does `r` at `i` begin a raw string (`r"…"`, `r#"…"#`, `br"…"` handled by the `b`
/// being consumed as plain code)?
fn starts_raw_string(chars: &[char], i: usize) -> bool {
    debug_assert_eq!(chars[i], 'r');
    // Reject identifiers ending in `r` (e.g. `var"`), which cannot occur in valid Rust
    // anyway, by requiring the previous char to not be alphanumeric.
    if i > 0 {
        let prev = chars[i - 1];
        if prev.is_alphanumeric() || prev == '_' {
            return false;
        }
    }
    let mut j = i + 1;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

fn count_hashes(chars: &[char], mut i: usize) -> u32 {
    let mut n = 0;
    while chars.get(i) == Some(&'#') {
        n += 1;
        i += 1;
    }
    n
}

fn closes_raw_string(chars: &[char], i: usize, hashes: u32) -> bool {
    debug_assert_eq!(chars[i], '"');
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// If a char literal starts at `i` (which holds `'`), return its total length in chars;
/// `None` means the tick is a lifetime.
fn char_literal_len(chars: &[char], i: usize) -> Option<usize> {
    match chars.get(i + 1) {
        Some('\\') => {
            // Escaped char literal: the char after the backslash is always content
            // (covers `'\''`), then scan to the closing tick (covers `'\u{…}'`).
            let mut j = i + 3;
            while j < chars.len() {
                if chars[j] == '\'' {
                    return Some(j - i + 1);
                }
                j += 1;
            }
            None
        }
        Some(_) if chars.get(i + 2) == Some(&'\'') => Some(3),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_never_leak_into_the_code_view() {
        let src = r#"let x = "unwrap() inside a string"; // .unwrap() in a comment
let y = 1; /* .expect( in a block */ let z = 2;
"#;
        let model = lex(src);
        assert!(!model.lines[0].code.contains("unwrap"));
        assert!(model.lines[0].comment.contains(".unwrap()"));
        assert_eq!(model.lines[0].strings, vec!["unwrap() inside a string"]);
        assert!(!model.lines[1].code.contains("expect"));
        assert!(model.lines[1].code.contains("let z = 2;"));
    }

    #[test]
    fn raw_strings_and_char_literals_are_opaque() {
        let src = "let s = r#\"panic!(\"x\")\"#;\nlet c = '\\n'; let l: &'static str = \"\";\n";
        let model = lex(src);
        assert!(!model.lines[0].code.contains("panic"));
        assert_eq!(model.lines[0].strings, vec!["panic!(\"x\")"]);
        // The lifetime tick did not start a char literal that swallows the rest.
        assert!(model.lines[1].code.contains("str"));
    }

    #[test]
    fn test_regions_follow_brace_depth() {
        let src =
            "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() { x.unwrap(); }\n}\nfn c() {}\n";
        let model = lex(src);
        assert!(!model.lines[0].in_test);
        assert!(model.lines[1].in_test, "the attribute line itself");
        assert!(model.lines[2].in_test);
        assert!(model.lines[3].in_test);
        assert!(model.lines[4].in_test);
        assert!(!model.lines[5].in_test, "after the closing brace");
    }

    #[test]
    fn depth_tracking_ignores_braces_in_literals() {
        let src = "fn a() {\n    let s = \"{{{\";\n    let t = '{';\n}\n";
        let model = lex(src);
        assert_eq!(model.lines[3].depth_at_start, 1);
        assert_eq!(model.lines.last().unwrap().depth_at_start, 1);
    }
}
