//! The rule implementations: L1–L3, L5, L6 (per-file token and guard-liveness checks)
//! plus the `L0` pragma grammar. The workspace-level L4 protocol-bump rule lives in
//! [`crate::fingerprint`].
//!
//! Every check runs over the [`crate::lexer`] code view, so string literals and
//! comments can never produce a match, and `#[cfg(test)]` / `#[test]` regions are
//! exempt (test code is allowed to unwrap, construct methods directly, and so on —
//! the invariants guard production paths).

use crate::lexer::{LineInfo, SourceModel};
use crate::{Diagnostic, LintConfig};

/// Every rule code this crate knows, in order.
pub const RULES: [&str; 7] = ["L0", "L1", "L2", "L3", "L4", "L5", "L6"];

/// What each rule enforces, one line per code (rendered by `gem-lint --help` and the
/// README table).
pub fn rule_summary(code: &str) -> &'static str {
    match code {
        "L0" => "gem-lint pragmas must be well-formed and carry a reason",
        "L1" => {
            "lock discipline: no bare lock unwraps, no guard live across fit/transform/store I/O"
        }
        "L2" => "no silent refit: serving modules never call GemEmbedder::embed / fit_transform",
        "L3" => {
            "panic-free wire: no unwrap/expect/panic!/indexing in net, client, gem-proto, or gem-router"
        }
        "L4" => {
            "protocol bump: gem-proto wire shapes may not change without a PROTOCOL_VERSION bump"
        }
        "L5" => "bit-exactness: no float formatting or f32/f64 casts in serialization modules",
        "L6" => "dispatch seam: method structs are constructed only via MethodRegistry wiring",
        _ => "unknown rule",
    }
}

// ---------------------------------------------------------------------------
// Pragmas
// ---------------------------------------------------------------------------

/// A parsed `// gem-lint: allow(Lx, reason = "…")` pragma.
#[derive(Debug)]
pub struct Pragma {
    /// Line the pragma comment sits on.
    pub line: usize,
    /// Rule codes it suppresses.
    pub codes: Vec<String>,
    /// True when the pragma is the only thing on its line, so it covers the next line.
    pub own_line: bool,
}

/// Scan a file for pragmas. Malformed pragmas (unparseable, unknown code, missing or
/// empty reason) become `L0` diagnostics — `L0` itself is never suppressible, so a
/// pragma cannot excuse its own malformation.
pub fn collect_pragmas(path: &str, model: &SourceModel, out: &mut Vec<Diagnostic>) -> Vec<Pragma> {
    let mut pragmas = Vec::new();
    for line in &model.lines {
        // A pragma is a comment *beginning* with the directive — prose that merely
        // mentions `gem-lint:` mid-sentence (docs, this file) is not a pragma.
        let Some(directive) = line.comment.trim().strip_prefix("gem-lint:").map(str::trim) else {
            continue;
        };
        let mut bad = |message: &str| {
            out.push(Diagnostic {
                rule: "L0".to_string(),
                path: path.to_string(),
                line: line.number,
                message: format!("malformed gem-lint pragma: {message}"),
                hint: "the only accepted form is `// gem-lint: allow(Lx, reason = \"…\")`"
                    .to_string(),
            });
        };
        let Some(inner) = directive
            .strip_prefix("allow(")
            .and_then(|rest| rest.rfind(')').map(|end| &rest[..end]))
        else {
            bad("expected `allow(…)`");
            continue;
        };
        // Split the code list from the mandatory reason.
        let (codes_part, reason_part) = match inner.find("reason") {
            Some(pos) => (inner[..pos].trim_end_matches([',', ' ']), &inner[pos..]),
            None => {
                bad("missing `reason = \"…\"` — every suppression must say why");
                continue;
            }
        };
        let reason_ok = reason_part
            .strip_prefix("reason")
            .map(str::trim_start)
            .and_then(|r| r.strip_prefix('='))
            .map(str::trim)
            .and_then(|r| r.strip_prefix('"'))
            .and_then(|r| r.rfind('"').map(|end| r[..end].trim().to_string()))
            .filter(|r| !r.is_empty());
        if reason_ok.is_none() {
            bad("the reason must be a non-empty quoted string");
            continue;
        }
        let codes: Vec<String> = codes_part
            .split(',')
            .map(str::trim)
            .filter(|c| !c.is_empty())
            .map(str::to_string)
            .collect();
        if codes.is_empty() {
            bad("no rule codes listed");
            continue;
        }
        if let Some(unknown) = codes.iter().find(|c| !RULES.contains(&c.as_str())) {
            bad(&format!("unknown rule code `{unknown}`"));
            continue;
        }
        if codes.iter().any(|c| c == "L0") {
            bad("L0 cannot be suppressed");
            continue;
        }
        pragmas.push(Pragma {
            line: line.number,
            codes,
            own_line: line.code.trim().is_empty(),
        });
    }
    pragmas
}

/// Is a diagnostic with `rule` at `line` suppressed by one of `pragmas`?
pub fn suppressed(pragmas: &[Pragma], rule: &str, line: usize) -> bool {
    pragmas.iter().any(|p| {
        p.codes.iter().any(|c| c == rule) && (p.line == line || (p.own_line && p.line + 1 == line))
    })
}

// ---------------------------------------------------------------------------
// Scopes
// ---------------------------------------------------------------------------

fn l1_scoped(path: &str) -> bool {
    path.starts_with("crates/gem-serve/src/") || path.starts_with("crates/gem-router/src/")
}

fn l2_scoped(path: &str) -> bool {
    matches!(
        path,
        "crates/gem-serve/src/service.rs"
            | "crates/gem-serve/src/engine.rs"
            | "crates/gem-serve/src/net.rs"
    )
}

fn l3_scoped(path: &str) -> bool {
    matches!(
        path,
        "crates/gem-serve/src/net.rs"
            | "crates/gem-serve/src/client.rs"
            | "crates/gem-serve/src/framing.rs"
    ) || path.starts_with("crates/gem-proto/src/")
        || path.starts_with("crates/gem-router/src/")
}

fn l5_scoped(path: &str) -> bool {
    path.starts_with("crates/gem-store/src/")
        || path.starts_with("crates/gem-proto/src/")
        || path.ends_with("/persist.rs")
        || path == "crates/gem-serve/src/framing.rs"
}

fn l6_exempt(path: &str) -> bool {
    path.starts_with("crates/gem-baselines/src/") || path == "crates/gem-core/src/method.rs"
}

// ---------------------------------------------------------------------------
// The per-file pass
// ---------------------------------------------------------------------------

/// Run every per-file rule over one lexed source file.
pub fn check_file(path: &str, model: &SourceModel, config: &LintConfig, out: &mut Vec<Diagnostic>) {
    let enabled = |rule: &str| !config.disabled.iter().any(|d| d == rule);
    if enabled("L1") && l1_scoped(path) {
        check_l1_lock_tokens(path, model, out);
        check_l1_guard_liveness(path, model, out);
    }
    if enabled("L2") && l2_scoped(path) {
        check_l2_no_silent_refit(path, model, out);
    }
    if enabled("L3") && l3_scoped(path) {
        check_l3_panic_freedom(path, model, out);
    }
    if enabled("L5") && l5_scoped(path) {
        check_l5_bit_exactness(path, model, out);
    }
    if enabled("L6") && !l6_exempt(path) {
        check_l6_dispatch_seam(path, model, out);
    }
}

fn non_test_lines(model: &SourceModel) -> impl Iterator<Item = &LineInfo> {
    model.lines.iter().filter(|l| !l.in_test)
}

// --- L1a: bare lock unwraps ------------------------------------------------

const L1_LOCK_TOKENS: [&str; 6] = [
    ".lock().unwrap()",
    ".lock().expect(",
    ".read().unwrap()",
    ".read().expect(",
    ".write().unwrap()",
    ".write().expect(",
];

fn check_l1_lock_tokens(path: &str, model: &SourceModel, out: &mut Vec<Diagnostic>) {
    for line in non_test_lines(model) {
        for token in L1_LOCK_TOKENS {
            if line.code.contains(token) {
                out.push(Diagnostic {
                    rule: "L1".to_string(),
                    path: path.to_string(),
                    line: line.number,
                    message: format!(
                        "`{token}` decides poisoning policy at the call site instead of the shared recovery helper"
                    ),
                    hint: "acquire serving locks through gem_serve::sync::lock_or_recover so poisoning recovery stays in one audited place".to_string(),
                });
            }
        }
    }
}

// --- L1b: guard liveness ---------------------------------------------------

/// Calls that must never run under a held lock guard: EM fits, transforms and model
/// store I/O all take milliseconds-to-seconds, and a guard held across them turns one
/// slow model into a stall for every concurrent request on that lock.
const L1_FORBIDDEN_CALLS: [&str; 10] = [
    "GemModel::fit",
    ".fit(",
    ".fit_update(",
    ".transform(",
    ".fit_transform(",
    ".save(",
    ".save_with_parent(",
    ".load_path(",
    ".load_hex(",
    ".remove_hex(",
];

struct LiveGuard {
    name: Option<String>,
    depth: usize,
    bound_at: usize,
}

fn check_l1_guard_liveness(path: &str, model: &SourceModel, out: &mut Vec<Diagnostic>) {
    let mut guards: Vec<LiveGuard> = Vec::new();
    let mut stmt: Option<(String, usize, usize)> = None; // (text, start line, depth)

    for line in &model.lines {
        if line.in_test {
            continue;
        }
        // Retire guards whose enclosing block has closed.
        guards.retain(|g| line.depth_at_start >= g.depth);
        // Explicit drops end liveness early.
        guards.retain(|g| match &g.name {
            Some(name) => !line.code.contains(&format!("drop({name})")),
            None => true,
        });

        // While any guard is live, the line may not reach into fit/transform/store I/O.
        if !guards.is_empty() {
            for token in L1_FORBIDDEN_CALLS {
                let hit = if token == ".load(" {
                    // `.load(Ordering…)` is an atomic read, not store I/O.
                    has_load_call_not_atomic(&line.code)
                } else {
                    line.code.contains(token)
                };
                if hit {
                    let guard = guards.last().expect("non-empty");
                    out.push(Diagnostic {
                        rule: "L1".to_string(),
                        path: path.to_string(),
                        line: line.number,
                        message: format!(
                            "`{token}` runs while the lock guard bound at line {} is still live",
                            guard.bound_at
                        ),
                        hint: "narrow the critical section: copy what you need out of the guard and drop it before fitting, transforming, or touching the model store".to_string(),
                    });
                }
            }
        }

        // Statement assembly: track `let … = <expr ending in a lock acquisition>;`.
        let trimmed = line.code.trim();
        if stmt.is_none() && trimmed.starts_with("let ") {
            stmt = Some((String::new(), line.number, line.depth_at_start));
        }
        if let Some((text, start, depth)) = &mut stmt {
            text.push_str(trimmed);
            text.push(' ');
            if trimmed.ends_with(';') {
                if let Some(name) = guard_binding(text) {
                    guards.push(LiveGuard {
                        name,
                        depth: *depth,
                        bound_at: *start,
                    });
                }
                stmt = None;
            } else if trimmed.ends_with('{') || trimmed.ends_with('}') {
                // The "statement" opened a block (match/closure/loop) — too complex to
                // be the simple guard-binding shape; stop assembling.
                stmt = None;
            }
        }
    }
    let _ = guards;
}

/// `.load(` present with a non-`Ordering` argument (i.e. actual store I/O).
fn has_load_call_not_atomic(code: &str) -> bool {
    let mut rest = code;
    while let Some(at) = rest.find(".load(") {
        let arg = rest[at + ".load(".len()..].trim_start();
        if !arg.starts_with("Ordering") && !arg.starts_with("std::sync::atomic::Ordering") {
            return true;
        }
        rest = &rest[at + ".load(".len()..];
    }
    false
}

/// If `stmt` is `let [mut] <pat> = <expr>;` whose expression *is* a lock acquisition
/// (not a chained temporary like `lock_or_recover(&x).peek(k)`), return
/// `Some(binding name)` (`Some(None)` for non-identifier patterns). `None` means no
/// guard is bound.
fn guard_binding(stmt: &str) -> Option<Option<String>> {
    let stmt = stmt.trim();
    let rest = stmt.strip_prefix("let ")?;
    let eq = find_top_level_eq(rest)?;
    let pat = rest[..eq].trim();
    let mut expr = rest[eq + 1..].trim().trim_end_matches(';').trim_end();
    // Strip adapters that forward the guard unchanged.
    loop {
        if let Some(shorter) = expr.strip_suffix(".unwrap()") {
            expr = shorter.trim_end();
        } else if let Some(shorter) = expr.strip_suffix(".0") {
            expr = shorter.trim_end();
        } else if let Some(shorter) = strip_trailing_call(expr, ".expect") {
            expr = shorter.trim_end();
        } else {
            break;
        }
    }
    let acquires = expr.ends_with(".lock()")
        || expr.ends_with(".locked()")
        || trailing_call_name(expr).is_some_and(|name| {
            matches!(
                name,
                "lock_or_recover"
                    | "lock_or_recover_with"
                    | "wait_or_recover"
                    | "wait_timeout_or_recover"
            )
        });
    if !acquires {
        return None;
    }
    let name = pat.strip_prefix("mut ").unwrap_or(pat);
    let is_ident = !name.is_empty() && name.chars().all(|c| c.is_alphanumeric() || c == '_');
    Some(is_ident.then(|| name.to_string()))
}

/// Position of the `=` that separates pattern from initializer (depth 0, not part of
/// `==`, `=>`, `<=`, `>=`, `!=`, `+=`, …).
fn find_top_level_eq(s: &str) -> Option<usize> {
    let bytes = s.as_bytes();
    let mut depth = 0i32;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => depth -= 1,
            b'=' if depth == 0 => {
                let prev = i.checked_sub(1).map(|j| bytes[j]);
                let next = bytes.get(i + 1);
                let compound = matches!(
                    prev,
                    Some(
                        b'=' | b'<'
                            | b'>'
                            | b'!'
                            | b'+'
                            | b'-'
                            | b'*'
                            | b'/'
                            | b'%'
                            | b'&'
                            | b'|'
                            | b'^'
                    )
                ) || next == Some(&b'=')
                    || next == Some(&b'>');
                if !compound {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// If `expr` ends in `<…>name(balanced args)`, return `name`.
fn trailing_call_name(expr: &str) -> Option<&str> {
    let expr = expr.trim_end();
    if !expr.ends_with(')') {
        return None;
    }
    let open = matching_open_paren(expr)?;
    let head = &expr[..open];
    let name_start = head
        .rfind(|c: char| !(c.is_alphanumeric() || c == '_'))
        .map(|i| i + 1)
        .unwrap_or(0);
    let name = &head[name_start..];
    (!name.is_empty()).then_some(name)
}

/// If `expr` ends in `method(balanced args)` where the text right before the arguments
/// ends with `method_prefix`, return the expression with that trailing call removed.
fn strip_trailing_call<'a>(expr: &'a str, method_prefix: &str) -> Option<&'a str> {
    let expr = expr.trim_end();
    if !expr.ends_with(')') {
        return None;
    }
    let open = matching_open_paren(expr)?;
    let head = &expr[..open];
    head.ends_with(method_prefix)
        .then(|| &head[..head.len() - method_prefix.len()])
}

/// Index of the `(` matching the final `)` of `expr`.
fn matching_open_paren(expr: &str) -> Option<usize> {
    let bytes = expr.as_bytes();
    let mut depth = 0i32;
    for i in (0..bytes.len()).rev() {
        match bytes[i] {
            b')' => depth += 1,
            b'(' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

// --- L2: no silent refit ---------------------------------------------------

const L2_TOKENS: [&str; 2] = ["GemEmbedder::embed", ".fit_transform("];

fn check_l2_no_silent_refit(path: &str, model: &SourceModel, out: &mut Vec<Diagnostic>) {
    for line in non_test_lines(model) {
        for token in L2_TOKENS {
            if line.code.contains(token) {
                out.push(Diagnostic {
                    rule: "L2".to_string(),
                    path: path.to_string(),
                    line: line.number,
                    message: format!(
                        "`{token}` re-fits from a corpus inside a serving module — an unknown handle must stay a typed error, never a silent refit"
                    ),
                    hint: "resolve handles through BatchEngine / ModelCache; only explicit Fit and FitUpdate requests may create models".to_string(),
                });
            }
        }
    }
}

// --- L3: panic-free wire ---------------------------------------------------

const L3_TOKENS: [&str; 6] = [
    ".unwrap()",
    ".expect(",
    "panic!(",
    "unreachable!(",
    "todo!(",
    "unimplemented!(",
];

fn check_l3_panic_freedom(path: &str, model: &SourceModel, out: &mut Vec<Diagnostic>) {
    for line in non_test_lines(model) {
        for token in L3_TOKENS {
            if line.code.contains(token) {
                out.push(Diagnostic {
                    rule: "L3".to_string(),
                    path: path.to_string(),
                    line: line.number,
                    message: format!(
                        "`{token}` can panic on attacker-controlled wire input"
                    ),
                    hint: "return a typed error (ProtoError / ServeError / ClientError) — a malformed line must answer with an error body, not kill the connection".to_string(),
                });
            }
        }
        if let Some(col) = slice_index_position(&line.code) {
            out.push(Diagnostic {
                rule: "L3".to_string(),
                path: path.to_string(),
                line: line.number,
                message: format!(
                    "slice indexing at column {} can panic out of bounds on wire-derived data",
                    col + 1
                ),
                hint: "use .get(…) and surface a typed error for the missing case".to_string(),
            });
        }
    }
}

/// Byte position of an indexing `[` (one immediately preceded by an identifier char,
/// `)` or `]`), ignoring attribute lines. `&[u8]` and `[T; N]` type positions are not
/// matches because their `[` follows `&`, `(`, `<` or whitespace.
fn slice_index_position(code: &str) -> Option<usize> {
    let trimmed = code.trim_start();
    if trimmed.starts_with("#[") || trimmed.starts_with("#![") {
        return None;
    }
    let bytes = code.as_bytes();
    (1..bytes.len()).find(|&i| {
        bytes[i] == b'['
            && (bytes[i - 1].is_ascii_alphanumeric() || matches!(bytes[i - 1], b'_' | b')' | b']'))
    })
}

// --- L5: bit-exactness -----------------------------------------------------

fn check_l5_bit_exactness(path: &str, model: &SourceModel, out: &mut Vec<Diagnostic>) {
    for line in non_test_lines(model) {
        for token in [" as f64", " as f32"] {
            if line.code.contains(token) {
                out.push(Diagnostic {
                    rule: "L5".to_string(),
                    path: path.to_string(),
                    line: line.number,
                    message: format!(
                        "`{}` in a serialization module loses or fabricates float bits",
                        token.trim_start()
                    ),
                    hint: "persisted numbers must round-trip exactly: integers via gem_json::u64_number / u64_field, floats via gem_json::bits / to_bits".to_string(),
                });
            }
        }
        for s in &line.strings {
            for token in ["{:e}", "{:."] {
                if s.contains(token) {
                    out.push(Diagnostic {
                        rule: "L5".to_string(),
                        path: path.to_string(),
                        line: line.number,
                        message: format!(
                            "`{token}` formatting in a serialization module renders floats in decimal, which does not round-trip bit-exactly"
                        ),
                        hint: "floats cross serialization only as IEEE-754 bit patterns (gem_json::bits); render human-facing numbers outside store/proto modules".to_string(),
                    });
                }
            }
        }
    }
}

// --- L6: dispatch seam -----------------------------------------------------

/// Every embedding-method struct the registry wires. Constructing one of these outside
/// the registry seam bypasses name registration, config plumbing and the paper's
/// method taxonomy.
const L6_METHOD_STRUCTS: [&str; 10] = [
    "GemMethod",
    "SatoSc",
    "SherlockSc",
    "PythagorasSc",
    "PeriodicEncoder",
    "KsEncoder",
    "SelfOrganizingMap",
    "PiecewiseLinearEncoder",
    "SquashingGmm",
    "SquashingSom",
];

fn check_l6_dispatch_seam(path: &str, model: &SourceModel, out: &mut Vec<Diagnostic>) {
    for line in non_test_lines(model) {
        for name in L6_METHOD_STRUCTS {
            for form in [
                format!("{name}::new("),
                format!("{name}::default("),
                format!("{name} {{"),
            ] {
                if let Some(at) = line.code.find(&form) {
                    // Require a word boundary so e.g. `MySatoSc::new(` cannot match.
                    let boundary = at == 0 || {
                        let prev = line.code.as_bytes()[at - 1];
                        !(prev.is_ascii_alphanumeric() || prev == b'_')
                    };
                    if boundary {
                        out.push(Diagnostic {
                            rule: "L6".to_string(),
                            path: path.to_string(),
                            line: line.number,
                            message: format!(
                                "`{name}` is constructed outside the MethodRegistry wiring"
                            ),
                            hint: "instantiate methods through gem_core::MethodRegistry (register_gem_family / gem_baselines::register_baselines) so every method stays name-addressable".to_string(),
                        });
                    }
                }
            }
        }
    }
}
