//! L4 — the protocol-bump rule.
//!
//! The wire contract of `gem-proto` is its four body shapes: [`RequestBody`],
//! [`ResponseBody`], `WireStats` and `WireModelInfo`. This module extracts those
//! declarations from `crates/gem-proto/src/lib.rs` (via the [`crate::lexer`] code
//! view, so comments and attributes cannot perturb the result), canonicalizes them to
//! a whitespace-normalized listing, and digests the listing with FNV-1a 64.
//!
//! The digest is committed at the repository root as `wire-fingerprint.json` together
//! with the `PROTOCOL_VERSION` it was taken at. The rule: **the shapes may only change
//! together with a version bump.** A drifted digest under an unchanged version is the
//! exact failure mode that ships silently incompatible peers, and it is an error; a
//! bumped version with a stale fingerprint is also an error (regenerate with
//! `gem-lint --write-fingerprint`), so the committed file always describes HEAD.

use crate::lexer;
use crate::Diagnostic;
use gem_json::{object, string, u64_number, Json};

/// The wire types whose declarations constitute the protocol surface.
pub const WIRE_TYPES: [&str; 4] = ["RequestBody", "ResponseBody", "WireStats", "WireModelInfo"];

/// The extracted protocol surface of a `gem-proto` source file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireFingerprint {
    /// The `PROTOCOL_VERSION` constant's value.
    pub protocol_version: u64,
    /// `(type name, canonical shape)` in [`WIRE_TYPES`] order.
    pub shapes: Vec<(String, String)>,
    /// FNV-1a 64 digest over the canonical shapes (version-independent).
    pub digest: String,
    /// 1-based line of the `PROTOCOL_VERSION` declaration (diagnostics anchor here).
    pub version_line: usize,
}

/// Extract the fingerprint from `gem-proto/src/lib.rs` source text.
pub fn wire_fingerprint_of(proto_src: &str) -> Result<WireFingerprint, String> {
    let model = lexer::lex(proto_src);
    // Join the code view into one stream for declaration scanning; line breaks become
    // spaces so multi-line declarations normalize away.
    let code: String = model
        .lines
        .iter()
        .map(|l| l.code.as_str())
        .collect::<Vec<_>>()
        .join("\n");

    let (protocol_version, version_line) = extract_version(&model)?;
    let mut shapes = Vec::new();
    for name in WIRE_TYPES {
        let shape = extract_shape(&code, name)
            .ok_or_else(|| format!("could not find a `{name}` declaration in gem-proto"))?;
        shapes.push((name.to_string(), shape));
    }
    let canonical = shapes
        .iter()
        .map(|(name, shape)| format!("{name}={shape};"))
        .collect::<String>();
    Ok(WireFingerprint {
        protocol_version,
        shapes,
        digest: format!("fnv1a64:{:016x}", fnv1a64(canonical.as_bytes())),
        version_line,
    })
}

fn extract_version(model: &lexer::SourceModel) -> Result<(u64, usize), String> {
    for line in &model.lines {
        if let Some(rest) = line
            .code
            .trim()
            .strip_prefix("pub const PROTOCOL_VERSION: u64 =")
        {
            let value: u64 = rest
                .trim()
                .trim_end_matches(';')
                .trim()
                .parse()
                .map_err(|_| "PROTOCOL_VERSION is not an integer literal".to_string())?;
            return Ok((value, line.number));
        }
    }
    Err("no `pub const PROTOCOL_VERSION: u64 = …;` declaration found".to_string())
}

/// Pull the `{ … }` body of `pub enum NAME` / `pub struct NAME` out of the joined code
/// view and canonicalize it: whitespace collapsed, `pub ` markers dropped, trailing
/// commas normalized.
fn extract_shape(code: &str, name: &str) -> Option<String> {
    let decl = ["pub enum ", "pub struct "].iter().find_map(|kw| {
        let needle = format!("{kw}{name}");
        code.find(&needle).and_then(|at| {
            // Reject partial matches like `WireStatsExt`.
            let after = code[at + needle.len()..].trim_start();
            after.starts_with('{').then(|| at + needle.len())
        })
    })?;
    let open = code[decl..].find('{')? + decl;
    let mut depth = 0usize;
    let bytes = code.as_bytes();
    let mut end = None;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    end = Some(i);
                    break;
                }
            }
            _ => {}
        }
    }
    let body = &code[open + 1..end?];
    let mut collapsed = body
        .split_whitespace()
        .collect::<Vec<_>>()
        .join(" ")
        .replace("pub ", "");
    // Normalize punctuation spacing and trailing commas so pure reformatting (rustfmt
    // reflows, added trailing commas) cannot move the digest.
    for (from, to) in [
        (" ,", ","),
        (", ", ","),
        (" :", ":"),
        (": ", ":"),
        (" {", "{"),
        ("{ ", "{"),
        (" }", "}"),
        ("} ", "}"),
        ("( ", "("),
        (" )", ")"),
        (",}", "}"),
        (",)", ")"),
    ] {
        while collapsed.contains(from) {
            collapsed = collapsed.replace(from, to);
        }
    }
    Some(collapsed.trim_matches([' ', ',']).to_string())
}

/// FNV-1a, 64-bit.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Render a fingerprint as the committed `wire-fingerprint.json` text.
pub fn fingerprint_json(fp: &WireFingerprint) -> String {
    let shapes = fp
        .shapes
        .iter()
        .map(|(name, shape)| (name.as_str(), string(shape.clone())))
        .collect::<Vec<_>>();
    let mut text = object(vec![
        ("protocol_version", u64_number(fp.protocol_version)),
        ("digest", string(fp.digest.clone())),
        ("shapes", object(shapes)),
    ])
    .to_pretty_string();
    text.push('\n');
    text
}

/// Parse a committed `wire-fingerprint.json`.
pub fn parse_fingerprint_json(text: &str) -> Result<(u64, String), String> {
    let value = Json::parse(text).map_err(|e| e.to_string())?;
    let version = value
        .u64_field("protocol_version")
        .map_err(|e| e.to_string())?;
    let digest = value.str_field("digest").map_err(|e| e.to_string())?;
    Ok((version, digest))
}

/// The L4 check: compare the protocol surface at HEAD against the committed
/// fingerprint. `committed` is the file text, or `None` when the file is absent.
pub fn check_fingerprint(
    proto_path: &str,
    current: &WireFingerprint,
    committed: Option<&str>,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let anchor = |message: String, hint: &str| Diagnostic {
        rule: "L4".to_string(),
        path: proto_path.to_string(),
        line: current.version_line,
        message,
        hint: hint.to_string(),
    };
    let Some(text) = committed else {
        out.push(anchor(
            "wire-fingerprint.json is missing, so protocol drift cannot be detected".to_string(),
            "generate it with `gem-lint --write-fingerprint` and commit it",
        ));
        return out;
    };
    let (committed_version, committed_digest) = match parse_fingerprint_json(text) {
        Ok(parsed) => parsed,
        Err(reason) => {
            out.push(anchor(
                format!("wire-fingerprint.json is unreadable: {reason}"),
                "regenerate it with `gem-lint --write-fingerprint`",
            ));
            return out;
        }
    };
    match (
        current.digest == committed_digest,
        current.protocol_version == committed_version,
    ) {
        (true, true) => {}
        (false, true) => out.push(anchor(
            format!(
                "gem-proto wire shapes changed but PROTOCOL_VERSION is still {} — peers on the committed protocol would misparse these bodies",
                current.protocol_version
            ),
            "bump PROTOCOL_VERSION (and document the change in its history note), then regenerate the fingerprint with `gem-lint --write-fingerprint`",
        )),
        (_, false) => out.push(anchor(
            format!(
                "wire-fingerprint.json was taken at protocol version {committed_version}, but HEAD declares {} — the committed fingerprint is stale",
                current.protocol_version
            ),
            "regenerate it with `gem-lint --write-fingerprint` and commit it alongside the version bump",
        )),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOY: &str = r#"
/// docs
pub const PROTOCOL_VERSION: u64 = 3;
/// A request.
pub enum RequestBody {
    /// Fit it.
    Fit { corpus: Vec<GemColumn>, config: GemConfig },
    Stats,
}
pub enum ResponseBody { Fitted { handle: String, dim: u64 }, Error { code: String } }
pub struct WireStats { pub hits: u64, pub misses: u64 }
pub struct WireModelInfo { pub handle: String }
"#;

    #[test]
    fn extraction_is_stable_under_comments_and_whitespace() {
        let a = wire_fingerprint_of(TOY).unwrap();
        let reflowed = TOY
            .replace(
                "Fit { corpus: Vec<GemColumn>, config: GemConfig },",
                "Fit {\n        // reflowed\n        corpus: Vec<GemColumn>,\n        config: GemConfig,\n    },",
            )
            .replace("/// docs", "/// different docs entirely");
        let b = wire_fingerprint_of(&reflowed).unwrap();
        assert_eq!(a.digest, b.digest, "formatting must not move the digest");
        assert_eq!(a.protocol_version, 3);
        assert_eq!(a.version_line, 3);
    }

    #[test]
    fn shape_changes_move_the_digest() {
        let a = wire_fingerprint_of(TOY).unwrap();
        let grown = TOY.replace("dim: u64 }", "dim: u64, extra: bool }");
        let b = wire_fingerprint_of(&grown).unwrap();
        assert_ne!(a.digest, b.digest);
        // …and a version bump alone does not.
        let bumped = TOY.replace("u64 = 3", "u64 = 4");
        let c = wire_fingerprint_of(&bumped).unwrap();
        assert_eq!(a.digest, c.digest);
        assert_eq!(c.protocol_version, 4);
    }

    #[test]
    fn fingerprint_json_round_trips() {
        let fp = wire_fingerprint_of(TOY).unwrap();
        let text = fingerprint_json(&fp);
        let (version, digest) = parse_fingerprint_json(&text).unwrap();
        assert_eq!(version, fp.protocol_version);
        assert_eq!(digest, fp.digest);
        assert!(check_fingerprint("p", &fp, Some(&text)).is_empty());
    }

    #[test]
    fn drift_without_a_bump_is_the_hard_error() {
        let fp = wire_fingerprint_of(TOY).unwrap();
        let committed = fingerprint_json(&fp);
        let drifted =
            wire_fingerprint_of(&TOY.replace("dim: u64 }", "dim: u64, extra: bool }")).unwrap();
        let diags = check_fingerprint("p", &drifted, Some(&committed));
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("PROTOCOL_VERSION is still 3"));
        // Bumping the version flips it to the (also-error) stale-fingerprint case…
        let bumped = wire_fingerprint_of(
            &TOY.replace("dim: u64 }", "dim: u64, extra: bool }")
                .replace("u64 = 3", "u64 = 4"),
        )
        .unwrap();
        let diags = check_fingerprint("p", &bumped, Some(&committed));
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("stale"));
        // …until the fingerprint is regenerated, which makes it clean.
        let regenerated = fingerprint_json(&bumped);
        assert!(check_fingerprint("p", &bumped, Some(&regenerated)).is_empty());
    }

    #[test]
    fn missing_or_corrupt_fingerprint_files_are_errors() {
        let fp = wire_fingerprint_of(TOY).unwrap();
        assert_eq!(check_fingerprint("p", &fp, None).len(), 1);
        assert_eq!(check_fingerprint("p", &fp, Some("not json")).len(), 1);
    }
}
