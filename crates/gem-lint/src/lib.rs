//! # gem-lint
//!
//! Workspace-aware static analysis for the Gem serving stack: six invariants that the
//! test suite cannot economically enforce (they are properties of *all* code paths,
//! not of any single input) become machine-checked rules over the source tree.
//!
//! | rule | invariant |
//! |------|-----------|
//! | `L1` | **lock discipline** — serving locks go through `gem_serve::sync::lock_or_recover` (never `.lock().unwrap()`), and no guard stays live across an EM fit, a transform, or model-store I/O |
//! | `L2` | **no silent refit** — `gem-serve`'s service/engine/net modules never call `GemEmbedder::embed` / `fit_transform`; unknown handles stay typed errors |
//! | `L3` | **panic-free wire** — no `unwrap`/`expect`/`panic!`/slice-indexing in `net.rs`, `client.rs`, or anywhere in `gem-proto` |
//! | `L4` | **protocol bump** — `gem-proto`'s body shapes are fingerprinted into `wire-fingerprint.json`; a shape change without a `PROTOCOL_VERSION` bump is an error |
//! | `L5` | **bit-exactness** — no decimal float formatting and no `as f32`/`as f64` casts in `gem-store`, `gem-proto`, or `persist` modules |
//! | `L6` | **dispatch seam** — embedding-method structs are constructed only inside the `MethodRegistry` wiring |
//!
//! Test code (`#[cfg(test)]` / `#[test]` regions) is exempt from every rule.
//! Violations are suppressible only with an in-source pragma that carries a reason —
//! `// gem-lint: allow(L3, reason = "…")` — and a malformed or reason-less pragma is
//! itself an error (`L0`).
//!
//! The implementation is deliberately a lightweight lexer + line scanner (see
//! [`lexer`]), not a full parser: every check needs only token positions relative to
//! strings, comments, braces and test regions, which keeps the whole workspace pass
//! well under the 2-second budget the CI `invariants` step and the tier-1
//! `lint_gate` test hold it to.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod fingerprint;
pub mod lexer;
pub mod rules;

use std::fmt;
use std::path::{Path, PathBuf};

pub use fingerprint::{
    check_fingerprint, fingerprint_json, parse_fingerprint_json, wire_fingerprint_of,
    WireFingerprint,
};

/// One rule violation (or pragma error), anchored to a source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule code (`L0`–`L6`).
    pub rule: String,
    /// Repository-relative path with forward slashes.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// What is wrong.
    pub message: String,
    /// One-line suggested fix.
    pub hint: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "error[{}]: {}:{}: {}",
            self.rule, self.path, self.line, self.message
        )?;
        write!(f, "  hint: {}", self.hint)
    }
}

/// Which rules run. The default runs everything; fixture tests disable a rule to prove
/// each check actually carries its own weight.
#[derive(Debug, Clone, Default)]
pub struct LintConfig {
    /// Rule codes to skip entirely (e.g. `["L3"]`).
    pub disabled: Vec<String>,
}

impl LintConfig {
    /// A config with every rule except `code` enabled.
    pub fn without(code: &str) -> Self {
        LintConfig {
            disabled: vec![code.to_string()],
        }
    }
}

/// The outcome of a workspace pass.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Violations, in file-walk order.
    pub diagnostics: Vec<Diagnostic>,
    /// Rust files scanned.
    pub files_scanned: usize,
    /// Well-formed `allow` pragmas encountered (the lint gate bounds these).
    pub allow_pragmas: usize,
}

impl LintReport {
    /// No violations at all?
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Render as the rustc-style text report.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "gem-lint: {} file(s) scanned, {} violation(s), {} allow pragma(s)\n",
            self.files_scanned,
            self.diagnostics.len(),
            self.allow_pragmas
        ));
        out
    }

    /// Render as the machine-readable JSON report (`gem-lint --json`).
    pub fn to_json(&self) -> String {
        use gem_json::{object, string, u64_number, Json};
        let violations = self
            .diagnostics
            .iter()
            .map(|d| {
                object(vec![
                    ("rule", string(d.rule.clone())),
                    ("path", string(d.path.clone())),
                    ("line", u64_number(d.line as u64)),
                    ("message", string(d.message.clone())),
                    ("hint", string(d.hint.clone())),
                ])
            })
            .collect::<Vec<_>>();
        let mut text = object(vec![
            ("ok", Json::Bool(self.diagnostics.is_empty())),
            ("files_scanned", u64_number(self.files_scanned as u64)),
            ("allow_pragmas", u64_number(self.allow_pragmas as u64)),
            ("violations", Json::Array(violations)),
        ])
        .to_pretty_string();
        text.push('\n');
        text
    }
}

/// Lint one source file. `path` is the repository-relative path (forward slashes) —
/// the rules scope themselves by it, so fixtures can impersonate any file. Returns the
/// surviving diagnostics and the number of well-formed allow pragmas.
pub fn lint_source(path: &str, src: &str, config: &LintConfig) -> (Vec<Diagnostic>, usize) {
    let model = lexer::lex(src);
    let mut raw = Vec::new();
    let pragmas = rules::collect_pragmas(path, &model, &mut raw);
    rules::check_file(path, &model, config, &mut raw);
    let kept: Vec<Diagnostic> = raw
        .into_iter()
        .filter(|d| d.rule == "L0" || !rules::suppressed(&pragmas, &d.rule, d.line))
        .collect();
    (kept, pragmas.len())
}

/// Every Rust source file the workspace pass covers: `crates/*/src/**` and the
/// umbrella `src/**`, sorted for deterministic reports.
pub fn workspace_sources(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in std::fs::read_dir(&crates_dir)? {
            let src = entry?.path().join("src");
            if src.is_dir() {
                collect_rs(&src, &mut files)?;
            }
        }
    }
    let umbrella = root.join("src");
    if umbrella.is_dir() {
        collect_rs(&umbrella, &mut files)?;
    }
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Repository-relative path with forward slashes (rule scoping keys off this form).
pub fn relative_label(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Run the full pass over a workspace: every per-file rule plus the L4 fingerprint
/// check against `<root>/wire-fingerprint.json`.
pub fn lint_workspace(root: &Path, config: &LintConfig) -> std::io::Result<LintReport> {
    let mut report = LintReport::default();
    for path in workspace_sources(root)? {
        let src = std::fs::read_to_string(&path)?;
        let label = relative_label(root, &path);
        let (diags, pragmas) = lint_source(&label, &src, config);
        report.diagnostics.extend(diags);
        report.allow_pragmas += pragmas;
        report.files_scanned += 1;
    }
    if !config.disabled.iter().any(|d| d == "L4") {
        let proto_label = "crates/gem-proto/src/lib.rs";
        let proto_path = root.join(proto_label);
        if proto_path.is_file() {
            let proto_src = std::fs::read_to_string(&proto_path)?;
            match wire_fingerprint_of(&proto_src) {
                Ok(current) => {
                    let committed = std::fs::read_to_string(root.join("wire-fingerprint.json")).ok();
                    report.diagnostics.extend(check_fingerprint(
                        proto_label,
                        &current,
                        committed.as_deref(),
                    ));
                }
                Err(reason) => report.diagnostics.push(Diagnostic {
                    rule: "L4".to_string(),
                    path: proto_label.to_string(),
                    line: 1,
                    message: format!("could not extract the wire fingerprint: {reason}"),
                    hint: "keep PROTOCOL_VERSION and the four wire types declared as plain `pub const` / `pub enum` / `pub struct` items".to_string(),
                }),
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pragmas_suppress_only_their_rule_and_line() {
        let src = "fn f(v: &V) {\n    v.x.unwrap(); // gem-lint: allow(L3, reason = \"checked above\")\n    v.y.unwrap();\n}\n";
        let (diags, pragmas) =
            lint_source("crates/gem-proto/src/lib.rs", src, &LintConfig::default());
        assert_eq!(pragmas, 1);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].line, 3);
    }

    #[test]
    fn an_own_line_pragma_covers_the_next_line() {
        let src = "fn f(v: &V) {\n    // gem-lint: allow(L3, reason = \"startup only\")\n    v.x.unwrap();\n}\n";
        let (diags, _) = lint_source("crates/gem-proto/src/lib.rs", src, &LintConfig::default());
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn a_reasonless_pragma_is_its_own_error_and_suppresses_nothing() {
        let src = "fn f(v: &V) {\n    v.x.unwrap(); // gem-lint: allow(L3)\n}\n";
        let (diags, pragmas) =
            lint_source("crates/gem-proto/src/lib.rs", src, &LintConfig::default());
        assert_eq!(pragmas, 0, "malformed pragmas do not count as pragmas");
        let rules: Vec<&str> = diags.iter().map(|d| d.rule.as_str()).collect();
        assert!(rules.contains(&"L0"), "{diags:?}");
        assert!(
            rules.contains(&"L3"),
            "the violation still fires: {diags:?}"
        );
    }

    #[test]
    fn disabling_a_rule_silences_it() {
        let src = "fn f(v: &V) { v.x.unwrap(); }\n";
        let (diags, _) = lint_source(
            "crates/gem-proto/src/lib.rs",
            src,
            &LintConfig::without("L3"),
        );
        assert!(diags.is_empty());
    }

    #[test]
    fn diagnostics_render_rustc_style() {
        let d = Diagnostic {
            rule: "L3".into(),
            path: "crates/gem-proto/src/lib.rs".into(),
            line: 7,
            message: "boom".into(),
            hint: "fix it".into(),
        };
        let text = d.to_string();
        assert!(text.starts_with("error[L3]: crates/gem-proto/src/lib.rs:7: boom"));
        assert!(text.contains("hint: fix it"));
    }
}
