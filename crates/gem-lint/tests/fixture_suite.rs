//! The fixture suite: one known-bad snippet per rule, asserting the exact rule code
//! and line each violation anchors to — and, for every rule, a **live check**: the
//! same fixture goes silent when that one rule is disabled, proving the finding comes
//! from the named check and not from a neighbouring rule.

use gem_lint::{lint_source, LintConfig};

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

/// Lint `fixture_name` under `as_path`, returning `(rule, line)` pairs.
fn violations(fixture_name: &str, as_path: &str, config: &LintConfig) -> Vec<(String, usize)> {
    let (diags, _) = lint_source(as_path, &fixture(fixture_name), config);
    diags.into_iter().map(|d| (d.rule, d.line)).collect()
}

fn expect(fixture_name: &str, as_path: &str, rule: &str, lines: &[usize]) {
    let found = violations(fixture_name, as_path, &LintConfig::default());
    let expected: Vec<(String, usize)> = lines.iter().map(|&l| (rule.to_string(), l)).collect();
    assert_eq!(found, expected, "{fixture_name} under {as_path}");
    // Live check: with the rule disabled, the fixture must go completely silent —
    // a fixture that still fires would mean another rule is doing this one's work.
    let silent = violations(fixture_name, as_path, &LintConfig::without(rule));
    assert!(
        silent.is_empty(),
        "{fixture_name} still fires with {rule} disabled: {silent:?}"
    );
}

#[test]
fn l1_bare_lock_unwraps_fire_at_their_lines() {
    expect(
        "l1_lock_unwrap.rs",
        "crates/gem-serve/src/cache.rs",
        "L1",
        &[6, 9],
    );
}

#[test]
fn l1_outside_gem_serve_the_same_code_is_clean() {
    let found = violations(
        "l1_lock_unwrap.rs",
        "crates/gem-data/src/lib.rs",
        &LintConfig::default(),
    );
    assert!(found.is_empty(), "L1 is scoped to gem-serve: {found:?}");
}

#[test]
fn l1_guard_held_across_fit_and_store_io_fires() {
    expect(
        "l1_guard_liveness.rs",
        "crates/gem-serve/src/engine.rs",
        "L1",
        &[9, 10],
    );
}

#[test]
fn l1_and_l3_cover_the_router_tier() {
    // The cluster tier holds the same locks and speaks the same wire as gem-serve:
    // both rule scopes include `crates/gem-router/src/`, so a bare lock unwrap there
    // fires the lock-discipline rule AND the panic-free-wire rule.
    let as_path = "crates/gem-router/src/cluster.rs";
    let found = violations("router_lock_unwrap.rs", as_path, &LintConfig::default());
    assert_eq!(
        found,
        vec![
            ("L1".to_string(), 7),
            ("L1".to_string(), 11),
            ("L3".to_string(), 7),
            ("L3".to_string(), 11),
        ],
        "{found:?}"
    );
    // Live checks: disabling either rule removes exactly its own findings.
    let only_l3 = violations("router_lock_unwrap.rs", as_path, &LintConfig::without("L1"));
    assert!(only_l3.iter().all(|(rule, _)| rule == "L3"), "{only_l3:?}");
    let only_l1 = violations("router_lock_unwrap.rs", as_path, &LintConfig::without("L3"));
    assert!(only_l1.iter().all(|(rule, _)| rule == "L1"), "{only_l1:?}");
    // And the wire fixture fires under a router path exactly as under gem-proto.
    expect(
        "l3_panic_wire.rs",
        "crates/gem-router/src/server.rs",
        "L3",
        &[10, 12, 13, 18],
    );
}

#[test]
fn l2_silent_refits_fire_in_serving_modules_only() {
    expect(
        "l2_silent_refit.rs",
        "crates/gem-serve/src/service.rs",
        "L2",
        &[8, 13],
    );
    let elsewhere = violations(
        "l2_silent_refit.rs",
        "crates/gem-eval/src/lib.rs",
        &LintConfig::default(),
    );
    assert!(
        elsewhere.is_empty(),
        "eval code may legitimately fit from corpora: {elsewhere:?}"
    );
}

#[test]
fn l3_panic_paths_fire_with_tests_exempt() {
    expect(
        "l3_panic_wire.rs",
        "crates/gem-proto/src/lib.rs",
        "L3",
        &[10, 12, 13, 18],
    );
    // The same file under a non-wire path is clean: L3 is about the wire surface.
    let elsewhere = violations(
        "l3_panic_wire.rs",
        "crates/gem-core/src/lib.rs",
        &LintConfig::default(),
    );
    assert!(elsewhere.is_empty(), "{elsewhere:?}");
}

#[test]
fn l3_covers_the_binary_codec_modules() {
    // The negotiated binary codec is wire surface: gem-proto's frame codec rides the
    // existing crate-prefix scope, and gem-serve's framing module (the server-side
    // frame pump) is enumerated explicitly.
    expect(
        "l3_panic_wire.rs",
        "crates/gem-proto/src/binary.rs",
        "L3",
        &[10, 12, 13, 18],
    );
    expect(
        "l3_panic_wire.rs",
        "crates/gem-serve/src/framing.rs",
        "L3",
        &[10, 12, 13, 18],
    );
}

#[test]
fn l5_float_formatting_and_casts_fire_in_serialization_modules() {
    expect(
        "l5_bit_exactness.rs",
        "crates/gem-store/src/store.rs",
        "L5",
        &[7, 8, 12, 12],
    );
    // persist.rs modules anywhere are in scope too.
    let persist = violations(
        "l5_bit_exactness.rs",
        "crates/gem-nn/src/persist.rs",
        &LintConfig::default(),
    );
    assert_eq!(persist.len(), 4);
}

#[test]
fn l5_covers_the_binary_codec_modules() {
    // Raw little-endian IEEE-754 bytes are the whole point of the binary codec: a
    // float cast or decimal render in either codec module would break bit-exactness.
    expect(
        "l5_bit_exactness.rs",
        "crates/gem-proto/src/binary.rs",
        "L5",
        &[7, 8, 12, 12],
    );
    expect(
        "l5_bit_exactness.rs",
        "crates/gem-serve/src/framing.rs",
        "L5",
        &[7, 8, 12, 12],
    );
}

#[test]
fn l6_method_construction_fires_outside_the_registry_seam() {
    expect(
        "l6_dispatch.rs",
        "crates/gem-eval/src/harness.rs",
        "L6",
        &[7, 8, 9],
    );
    // The registry wiring itself is exempt.
    for exempt in [
        "crates/gem-baselines/src/lib.rs",
        "crates/gem-core/src/method.rs",
    ] {
        let found = violations("l6_dispatch.rs", exempt, &LintConfig::default());
        assert!(found.is_empty(), "{exempt}: {found:?}");
    }
}

#[test]
fn pragmas_suppress_with_reason_and_error_without() {
    let (diags, pragmas) = lint_source(
        "crates/gem-proto/src/lib.rs",
        &fixture("pragma_suppression.rs"),
        &LintConfig::default(),
    );
    let found: Vec<(String, usize)> = diags.iter().map(|d| (d.rule.clone(), d.line)).collect();
    assert_eq!(
        found,
        vec![
            ("L0".to_string(), 12), // reason-less pragma is its own error…
            ("L3".to_string(), 12), // …and suppresses nothing
            ("L3".to_string(), 13), // a pragma for the wrong rule suppresses nothing
        ],
        "{found:?}"
    );
    assert_eq!(pragmas, 3, "well-formed pragmas counted, malformed not");
}

// --- L4: the committed fingerprint matches HEAD, and drift is caught -------

fn real_proto_source() -> String {
    let path = format!("{}/../gem-proto/src/lib.rs", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(path).expect("gem-proto sources present in the workspace")
}

fn committed_fingerprint() -> String {
    let path = format!("{}/../../wire-fingerprint.json", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(path).expect("wire-fingerprint.json committed at the repo root")
}

#[test]
fn committed_fingerprint_matches_gem_proto_at_head() {
    let current = gem_lint::wire_fingerprint_of(&real_proto_source()).unwrap();
    let diags = gem_lint::check_fingerprint(
        "crates/gem-proto/src/lib.rs",
        &current,
        Some(&committed_fingerprint()),
    );
    assert!(
        diags.is_empty(),
        "gem-proto drifted from wire-fingerprint.json — bump PROTOCOL_VERSION and/or \
         regenerate with `gem-lint --write-fingerprint`: {diags:?}"
    );
}

#[test]
fn shape_drift_without_a_version_bump_is_caught_on_the_real_protocol() {
    // Grow a real wire struct by one field, leaving PROTOCOL_VERSION untouched —
    // exactly the change L4 exists to catch.
    let drifted_src = real_proto_source().replace(
        "pub struct WireModelInfo {",
        "pub struct WireModelInfo { pub drifted: bool,",
    );
    let drifted = gem_lint::wire_fingerprint_of(&drifted_src).unwrap();
    let diags = gem_lint::check_fingerprint(
        "crates/gem-proto/src/lib.rs",
        &drifted,
        Some(&committed_fingerprint()),
    );
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, "L4");
    assert!(diags[0].message.contains("PROTOCOL_VERSION is still"));
    assert!(diags[0].hint.contains("bump PROTOCOL_VERSION"));
}

#[test]
fn a_version_bump_alone_demands_a_fingerprint_regeneration() {
    let current = gem_lint::wire_fingerprint_of(&real_proto_source()).unwrap();
    let bumped_src = real_proto_source().replace(
        &format!(
            "pub const PROTOCOL_VERSION: u64 = {};",
            current.protocol_version
        ),
        &format!(
            "pub const PROTOCOL_VERSION: u64 = {};",
            current.protocol_version + 1
        ),
    );
    let bumped = gem_lint::wire_fingerprint_of(&bumped_src).unwrap();
    let diags = gem_lint::check_fingerprint(
        "crates/gem-proto/src/lib.rs",
        &bumped,
        Some(&committed_fingerprint()),
    );
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert!(diags[0].message.contains("stale"), "{diags:?}");
}

#[test]
fn a_tampered_digest_is_rejected() {
    let current = gem_lint::wire_fingerprint_of(&real_proto_source()).unwrap();
    let tampered = committed_fingerprint().replace("fnv1a64:", "fnv1a64:f00d");
    let diags =
        gem_lint::check_fingerprint("crates/gem-proto/src/lib.rs", &current, Some(&tampered));
    assert_eq!(diags.len(), 1, "{diags:?}");
}
