// L6 fixture: embedding-method structs constructed outside the MethodRegistry wiring.
// Linted under the path `crates/gem-eval/src/harness.rs` (any non-exempt path); the
// violations are on lines 7, 8 and 9.

fn build_methods(config: &GemConfig) -> Vec<Box<dyn EmbeddingMethod>> {
    vec![
        Box::new(SatoSc::new(config.dim)),
        Box::new(SelfOrganizingMap::default()),
        Box::new(GemMethod { config: config.clone() }),
    ]
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_construct_methods_directly() {
        let _ = SatoSc::new(4);
    }
}
