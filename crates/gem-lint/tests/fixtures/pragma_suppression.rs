// Pragma fixture, linted under `crates/gem-proto/src/lib.rs` (an L3 scope).
//
// Line 9: a violation suppressed by a trailing reasoned pragma — no diagnostic.
// Line 10–11: a violation suppressed by an own-line pragma above it — no diagnostic.
// Line 12: a pragma with no reason — an L0 diagnostic AND the L3 still fires.
// Line 13: a pragma naming the wrong rule — L3 fires (pragmas are rule-specific).

fn startup(config: &Json) -> u64 {
    let a = config.u64_field("a").unwrap(); // gem-lint: allow(L3, reason = "validated by the config loader before this point")
    // gem-lint: allow(L3, reason = "static default, cannot fail")
    let b = config.u64_field("b").unwrap();
    let c = config.u64_field("c").unwrap(); // gem-lint: allow(L3)
    let d = config.u64_field("d").unwrap(); // gem-lint: allow(L5, reason = "wrong rule")
    a + b + c + d
}
