// L5 fixture: decimal float formatting and narrowing casts in a serialization module.
// Linted under the path `crates/gem-store/src/store.rs`; the violations are on lines
// 7 (as f64), 8 ({:.}), and 12 ({:e} plus as f32).

impl Snapshot {
    fn header_json(&self) -> Json {
        let version = self.version as f64;
        let label = format!("v{:.1}", version);
        object(vec![("format_version", number(version)), ("label", string(label))])
    }
    fn debug_row(&self, weight: f64) -> String {
        format!("{:e}", weight as f32)
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_format_floats() {
        assert_eq!(format!("{:.2}", 1.0_f64 as f32), "1.00");
    }
}
