// L1 fixture under the router tier: bare lock unwraps in gem-router production code.
// Linted under the path `crates/gem-router/src/cluster.rs`; the violations are on
// lines 7 and 11.

struct Membership { slots: std::sync::Mutex<Vec<String>> }
impl Membership {
    fn live(&self) -> usize { self.slots.lock().unwrap().len() }
    fn add(&self, addr: String) {
        // Call-site poisoning policy is exactly what the shared helper centralizes.
        self.slots
            .lock().expect("membership mutex poisoned")
            .push(addr);
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        let m = std::sync::Mutex::new(Vec::<String>::new());
        assert!(m.lock().unwrap().is_empty());
    }
}
