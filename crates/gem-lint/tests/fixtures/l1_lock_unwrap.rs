// L1 fixture: bare lock unwraps in gem-serve production code. Linted under the path
// `crates/gem-serve/src/cache.rs`; the violations are on lines 6 and 9.

struct Counters { inner: std::sync::Mutex<u64> }
impl Counters {
    fn bump(&self) { *self.inner.lock().unwrap() += 1; }
    fn read(&self) -> u64 {
        // The expect message does not make call-site poisoning policy acceptable.
        *self.inner.lock().expect("counter mutex poisoned")
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        let m = std::sync::Mutex::new(1u64);
        assert_eq!(*m.lock().unwrap(), 1);
    }
}
