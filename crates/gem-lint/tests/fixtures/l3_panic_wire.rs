// L3 fixture: panic paths reachable from wire input. Linted under the path
// `crates/gem-proto/src/lib.rs`; the violations are on lines 10 (panic!), 12 (slice
// indexing), 13 (unwrap) and 18 (expect). Line 7's `.unwrap_or(…)` is deliberately
// not a violation — it cannot panic.

fn decode_frame(line: &str) -> Frame {
    let value = Json::parse(line).unwrap_or(Json::Null);
    let fields = match value {
        Json::Object(fields) => fields,
        _ => panic!("not an object"),
    };
    let first = fields[0].clone();
    let id = first.1.as_f64().unwrap();
    Frame { id: id as u64 }
}

fn version_of(value: &Json) -> u64 {
    value.field("version").expect("version field") .as_u64().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic() {
        decode_frame("{}");
        panic!("fine here");
    }
}
