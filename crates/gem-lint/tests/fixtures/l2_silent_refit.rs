// L2 fixture: a serving module quietly re-fitting from a corpus instead of resolving
// the handle. Linted under the path `crates/gem-serve/src/service.rs`; the violations
// are on lines 8 and 13.

impl EmbedService {
    fn embed_fallback(&self, corpus: &[GemColumn]) -> Matrix {
        // Unknown handle? Just refit — exactly the behaviour the protocol forbids.
        GemEmbedder::embed(corpus, &self.config, FeatureSet::ds())
    }
    fn embed_via_model(&self, corpus: &[GemColumn]) -> Matrix {
        let mut embedder = self.new_embedder();
        let _ = &mut embedder;
        embedder.fit_transform(corpus)
    }
}
