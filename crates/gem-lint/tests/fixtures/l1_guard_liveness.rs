// L1 fixture: a lock guard held across an EM fit and a store write. Linted under the
// path `crates/gem-serve/src/engine.rs`; the violations are on lines 9 and 10 (the
// guard binds on line 8). Line 15 shows the compliant shape: drop before fitting.

impl Engine {
    fn fit_under_lock(&self, key: ModelKey, corpus: &[GemColumn]) {
        let config = self.config.clone();
        let mut cache = crate::sync::lock_or_recover(&self.cache);
        let model = GemModel::fit(corpus, &config, FeatureSet::ds());
        self.store.save(key, &model).ok();
        cache.insert(key, model);
    }
    fn fit_outside_lock(&self, key: ModelKey, corpus: &[GemColumn]) {
        let config = self.config.clone();
        let model = GemModel::fit(corpus, &config, FeatureSet::ds());
        let mut cache = crate::sync::lock_or_recover(&self.cache);
        cache.insert(key, model);
    }
}
