//! # gem-eval
//!
//! The evaluation harness of the Gem reproduction (§4.1.2 of the paper):
//!
//! * [`retrieval`] — precision and recall at `k` over cosine-similarity neighbourhoods,
//!   where `k` equals the number of columns sharing the query column's ground-truth type.
//!   This is the metric behind Tables 2 and 3 and Figures 3 and 4.
//! * [`clustering`] — clustering accuracy (ACC, computed with an optimal Hungarian matching
//!   between predicted clusters and ground-truth classes) and the adjusted Rand index (ARI),
//!   the metrics of Table 4.
//! * [`report`] — experiment records (paper value vs. measured value), markdown table
//!   rendering and JSON persistence used to regenerate EXPERIMENTS.md.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod clustering;
pub mod report;
pub mod retrieval;

pub use clustering::{adjusted_rand_index, clustering_accuracy};
pub use report::{markdown_table, ExperimentRecord, ResultTable};
pub use retrieval::{evaluate_retrieval, RetrievalScores};
