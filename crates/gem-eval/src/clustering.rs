//! Clustering metrics: accuracy (ACC) with optimal label matching, and the adjusted Rand
//! index (ARI). Both follow the definitions cited by the paper (§4.1.2).

use gem_cluster::hungarian_assignment;
use std::collections::BTreeMap;

/// Clustering accuracy: the fraction of points whose predicted cluster maps onto their
/// ground-truth class under the best one-to-one cluster↔class matching (computed with the
/// Hungarian algorithm on the negated contingency table). Ranges from 0 to 1.
///
/// # Panics
/// Panics when the two label vectors have different lengths or are empty.
pub fn clustering_accuracy(predicted: &[usize], ground_truth: &[usize]) -> f64 {
    assert_eq!(
        predicted.len(),
        ground_truth.len(),
        "predicted and ground-truth labels must align"
    );
    assert!(!predicted.is_empty(), "cannot score empty clusterings");
    let n = predicted.len();

    // Dense re-indexing of both label sets.
    let pred_ids = dense_ids(predicted);
    let true_ids = dense_ids(ground_truth);
    let n_pred = pred_ids.values().max().map(|m| m + 1).unwrap_or(0);
    let n_true = true_ids.values().max().map(|m| m + 1).unwrap_or(0);
    let size = n_pred.max(n_true).max(1);

    // Contingency table.
    let mut counts = vec![vec![0.0f64; size]; size];
    for (&p, &t) in predicted.iter().zip(ground_truth) {
        counts[pred_ids[&p]][true_ids[&t]] += 1.0;
    }
    // Hungarian solves a minimisation; negate to maximise matched counts.
    let cost: Vec<Vec<f64>> = counts
        .iter()
        .map(|row| row.iter().map(|&c| -c).collect())
        .collect();
    let assignment = hungarian_assignment(&cost);
    let matched: f64 = assignment
        .iter()
        .enumerate()
        .map(|(pred, &truth)| counts[pred][truth])
        .sum();
    matched / n as f64
}

/// Adjusted Rand index between two labelings. 1 means identical partitions, 0 the expected
/// value for random labelings, negative values worse than random.
///
/// # Panics
/// Panics when the two label vectors have different lengths or are empty.
pub fn adjusted_rand_index(predicted: &[usize], ground_truth: &[usize]) -> f64 {
    assert_eq!(
        predicted.len(),
        ground_truth.len(),
        "predicted and ground-truth labels must align"
    );
    assert!(!predicted.is_empty(), "cannot score empty clusterings");
    let n = predicted.len() as f64;

    let pred_ids = dense_ids(predicted);
    let true_ids = dense_ids(ground_truth);
    let n_pred = pred_ids.values().max().map(|m| m + 1).unwrap_or(0);
    let n_true = true_ids.values().max().map(|m| m + 1).unwrap_or(0);

    let mut table = vec![vec![0.0f64; n_true]; n_pred];
    for (&p, &t) in predicted.iter().zip(ground_truth) {
        table[pred_ids[&p]][true_ids[&t]] += 1.0;
    }
    let comb2 = |x: f64| x * (x - 1.0) / 2.0;

    let sum_ij: f64 = table.iter().flatten().map(|&c| comb2(c)).sum();
    let a: Vec<f64> = table.iter().map(|row| row.iter().sum()).collect();
    let b: Vec<f64> = (0..n_true)
        .map(|j| table.iter().map(|row| row[j]).sum())
        .collect();
    let sum_a: f64 = a.iter().map(|&x| comb2(x)).sum();
    let sum_b: f64 = b.iter().map(|&x| comb2(x)).sum();
    let total = comb2(n);
    if total == 0.0 {
        return 1.0;
    }
    let expected = sum_a * sum_b / total;
    let max_index = 0.5 * (sum_a + sum_b);
    if (max_index - expected).abs() < 1e-12 {
        // Both partitions are trivial (e.g. single cluster): define ARI as 1 when they
        // agree exactly and 0 otherwise, matching scikit-learn's convention.
        return if sum_ij == max_index { 1.0 } else { 0.0 };
    }
    (sum_ij - expected) / (max_index - expected)
}

fn dense_ids(labels: &[usize]) -> BTreeMap<usize, usize> {
    let mut map = BTreeMap::new();
    for &l in labels {
        let next = map.len();
        map.entry(l).or_insert(next);
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_clustering_scores_one() {
        let truth = vec![0, 0, 1, 1, 2, 2];
        assert_eq!(clustering_accuracy(&truth, &truth), 1.0);
        assert!((adjusted_rand_index(&truth, &truth) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn accuracy_is_permutation_invariant() {
        let truth = vec![0, 0, 1, 1, 2, 2];
        let relabeled = vec![2, 2, 0, 0, 1, 1];
        assert_eq!(clustering_accuracy(&relabeled, &truth), 1.0);
        assert!((adjusted_rand_index(&relabeled, &truth) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn one_mistake_reduces_accuracy_proportionally() {
        let truth = vec![0, 0, 0, 1, 1, 1];
        let pred = vec![0, 0, 1, 1, 1, 1];
        assert!((clustering_accuracy(&pred, &truth) - 5.0 / 6.0).abs() < 1e-12);
        let ari = adjusted_rand_index(&pred, &truth);
        assert!(ari > 0.0 && ari < 1.0);
    }

    #[test]
    fn ari_known_value() {
        // Classic example: ARI of this pair is ~0.2424...
        let truth = vec![0, 0, 0, 1, 1, 1];
        let pred = vec![0, 0, 1, 1, 2, 2];
        let ari = adjusted_rand_index(&pred, &truth);
        assert!((ari - 0.242_424_242).abs() < 1e-6, "ari {ari}");
    }

    #[test]
    fn random_like_labeling_has_low_ari_and_bounded_accuracy() {
        let truth = vec![0, 1, 0, 1, 0, 1, 0, 1];
        let pred = vec![0, 0, 1, 1, 0, 0, 1, 1];
        let ari = adjusted_rand_index(&pred, &truth);
        assert!(ari.abs() < 0.3);
        let acc = clustering_accuracy(&pred, &truth);
        assert!(acc <= 0.75);
    }

    #[test]
    fn single_cluster_against_itself_is_perfect() {
        let labels = vec![0, 0, 0];
        assert_eq!(clustering_accuracy(&labels, &labels), 1.0);
        assert_eq!(adjusted_rand_index(&labels, &labels), 1.0);
    }

    #[test]
    fn different_cluster_counts_are_handled() {
        let truth = vec![0, 0, 1, 1, 2, 2];
        let pred = vec![0, 0, 0, 1, 1, 1]; // fewer clusters than truth
        let acc = clustering_accuracy(&pred, &truth);
        assert!(acc >= 4.0 / 6.0 - 1e-12);
        let more = vec![0, 1, 2, 3, 4, 5]; // more clusters than truth
        let acc2 = clustering_accuracy(&more, &truth);
        assert!((acc2 - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn mismatched_lengths_panic() {
        clustering_accuracy(&[0, 1], &[0]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_labels_panic() {
        adjusted_rand_index(&[], &[]);
    }
}
