//! Result tables and paper-vs-measured experiment records.
//!
//! The bench binaries in `gem-bench` print their tables through this module and append
//! [`ExperimentRecord`]s to a JSON file, from which EXPERIMENTS.md is assembled.

use gem_json::{FromJson, Json, JsonError, ToJson};
use std::path::Path;

/// A simple named table of rows, rendered as GitHub-flavoured markdown.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultTable {
    /// Table title (e.g. "Table 2: numeric-only average precision").
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells (already formatted as strings).
    pub rows: Vec<Vec<String>>,
}

impl ResultTable {
    /// Create an empty table.
    pub fn new(title: impl Into<String>, headers: Vec<String>) -> Self {
        ResultTable {
            title: title.into(),
            headers,
            rows: Vec::new(),
        }
    }

    /// Append a row. Rows shorter than the header are right-padded with empty cells; longer
    /// rows are truncated.
    pub fn push_row(&mut self, row: Vec<String>) {
        let mut row = row;
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
    }

    /// Render as markdown (title as a heading, then a GitHub table).
    pub fn to_markdown(&self) -> String {
        markdown_table(&self.title, &self.headers, &self.rows)
    }
}

/// Render a markdown table with a heading.
pub fn markdown_table(title: &str, headers: &[String], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(&format!("### {title}\n\n"));
    out.push_str(&format!("| {} |\n", headers.join(" | ")));
    out.push_str(&format!(
        "|{}\n",
        headers.iter().map(|_| "---|").collect::<String>()
    ));
    for row in rows {
        out.push_str(&format!("| {} |\n", row.join(" | ")));
    }
    out
}

/// A single paper-vs-measured record for EXPERIMENTS.md.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentRecord {
    /// Experiment identifier ("Table 2", "Figure 4", ...).
    pub experiment: String,
    /// Dataset or setting the value refers to.
    pub setting: String,
    /// Method the value refers to.
    pub method: String,
    /// Metric name ("average precision", "ARI", "runtime seconds", ...).
    pub metric: String,
    /// The value the paper reports (None when the paper reports only a trend or a plot).
    pub paper_value: Option<f64>,
    /// The value measured by this reproduction.
    pub measured_value: f64,
}

impl ToJson for ExperimentRecord {
    fn to_json(&self) -> Json {
        gem_json::object(vec![
            ("experiment", gem_json::string(&self.experiment)),
            ("setting", gem_json::string(&self.setting)),
            ("method", gem_json::string(&self.method)),
            ("metric", gem_json::string(&self.metric)),
            ("paper_value", gem_json::opt_number(self.paper_value)),
            ("measured_value", gem_json::number(self.measured_value)),
        ])
    }
}

impl FromJson for ExperimentRecord {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(ExperimentRecord {
            experiment: value.str_field("experiment")?,
            setting: value.str_field("setting")?,
            method: value.str_field("method")?,
            metric: value.str_field("metric")?,
            paper_value: value.field("paper_value")?.as_f64(),
            measured_value: value.num_field("measured_value")?,
        })
    }
}

impl ExperimentRecord {
    /// Append records to a JSON file (creating it when missing). Existing records are
    /// preserved; records with the same (experiment, setting, method, metric) key are
    /// replaced so reruns stay idempotent.
    ///
    /// # Errors
    /// Returns I/O or serialisation errors.
    pub fn append_all(
        path: &Path,
        records: &[ExperimentRecord],
    ) -> Result<(), Box<dyn std::error::Error>> {
        let mut existing: Vec<ExperimentRecord> = if path.exists() {
            Self::load_all(path)?
        } else {
            Vec::new()
        };
        for r in records {
            existing.retain(|e| {
                !(e.experiment == r.experiment
                    && e.setting == r.setting
                    && e.method == r.method
                    && e.metric == r.metric)
            });
            existing.push(r.clone());
        }
        let json = Json::Array(existing.iter().map(ExperimentRecord::to_json).collect());
        std::fs::write(path, json.to_pretty_string())?;
        Ok(())
    }

    /// Load all records from a JSON file.
    ///
    /// # Errors
    /// Returns I/O or deserialisation errors.
    pub fn load_all(path: &Path) -> Result<Vec<ExperimentRecord>, Box<dyn std::error::Error>> {
        let parsed = Json::parse(&std::fs::read_to_string(path)?)?;
        let items = parsed
            .as_array()
            .ok_or_else(|| JsonError::conversion("records file is not a JSON array"))?;
        Ok(items
            .iter()
            .map(ExperimentRecord::from_json)
            .collect::<Result<Vec<_>, _>>()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_rendering_includes_title_headers_and_rows() {
        let mut t = ResultTable::new("Table X", vec!["method".into(), "score".into()]);
        t.push_row(vec!["Gem".into(), "0.37".into()]);
        t.push_row(vec!["PLE".into()]);
        let md = t.to_markdown();
        assert!(md.contains("### Table X"));
        assert!(md.contains("| method | score |"));
        assert!(md.contains("| Gem | 0.37 |"));
        // Short row was padded.
        assert!(md.contains("| PLE |  |"));
    }

    #[test]
    fn push_row_truncates_long_rows() {
        let mut t = ResultTable::new("t", vec!["a".into()]);
        t.push_row(vec!["1".into(), "2".into()]);
        assert_eq!(t.rows[0].len(), 1);
    }

    #[test]
    fn experiment_records_round_trip_and_replace_duplicates() {
        let dir = std::env::temp_dir().join("gem_eval_records_test.json");
        let _ = std::fs::remove_file(&dir);
        let r1 = ExperimentRecord {
            experiment: "Table 2".into(),
            setting: "GDS".into(),
            method: "Gem (D+S)".into(),
            metric: "average precision".into(),
            paper_value: Some(0.37),
            measured_value: 0.41,
        };
        ExperimentRecord::append_all(&dir, std::slice::from_ref(&r1)).unwrap();
        // Replace with an updated measurement.
        let mut r2 = r1.clone();
        r2.measured_value = 0.39;
        ExperimentRecord::append_all(&dir, &[r2.clone()]).unwrap();
        let loaded = ExperimentRecord::load_all(&dir).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].measured_value, 0.39);
        let _ = std::fs::remove_file(&dir);
    }

    #[test]
    fn load_missing_file_errors() {
        let path = std::env::temp_dir().join("gem_eval_missing_records.json");
        let _ = std::fs::remove_file(&path);
        assert!(ExperimentRecord::load_all(&path).is_err());
    }
}
