//! Top-k retrieval evaluation (semantic type detection as nearest-neighbour search).
//!
//! §4.1.2 of the paper: for each column, the top `k` most cosine-similar columns are
//! retrieved, where `k` is the number of other columns with the same ground-truth semantic
//! type. True positives are retrieved columns that share the query's label; precision and
//! recall are averaged per semantic type and then across types (so large types do not
//! dominate), which is what the paper calls *average precision*.

use gem_numeric::distance::{similarity_matrix, top_k_neighbors};
use gem_numeric::Matrix;
use std::collections::BTreeMap;

/// The outcome of a retrieval evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct RetrievalScores {
    /// Precision at k averaged over semantic types.
    pub average_precision: f64,
    /// Recall at k averaged over semantic types.
    pub average_recall: f64,
    /// Per-type precision (keyed by ground-truth label).
    pub per_type_precision: BTreeMap<String, f64>,
    /// Number of columns evaluated (columns whose type has at least one other member).
    pub evaluated_columns: usize,
}

/// Evaluate embeddings against ground-truth labels.
///
/// Columns whose semantic type has no other member are skipped (k would be zero), matching
/// the paper's protocol where `k` is "the total number of columns with the same semantic
/// type in the ground truth".
///
/// # Panics
/// Panics when the number of labels does not match the number of embedding rows.
pub fn evaluate_retrieval(embeddings: &Matrix, labels: &[String]) -> RetrievalScores {
    assert_eq!(
        embeddings.rows(),
        labels.len(),
        "one label per embedding row is required"
    );
    let n = labels.len();
    let sim = similarity_matrix(embeddings);

    // Count label frequencies.
    let mut freq: BTreeMap<&str, usize> = BTreeMap::new();
    for l in labels {
        *freq.entry(l.as_str()).or_insert(0) += 1;
    }

    let mut per_type_precision_acc: BTreeMap<String, (f64, usize)> = BTreeMap::new();
    let mut per_type_recall_acc: BTreeMap<String, (f64, usize)> = BTreeMap::new();
    let mut evaluated = 0usize;

    for i in 0..n {
        let label = labels[i].as_str();
        let same_type = freq[label];
        if same_type < 2 {
            continue;
        }
        // k = number of *other* columns with the same label.
        let k = same_type - 1;
        let neighbors = top_k_neighbors(&sim, i, k);
        let tp = neighbors
            .iter()
            .filter(|&&j| labels[j].as_str() == label)
            .count();
        let precision = tp as f64 / k as f64;
        let recall = tp as f64 / k as f64; // identical here since |retrieved| == |relevant|
        let p = per_type_precision_acc
            .entry(label.to_string())
            .or_insert((0.0, 0));
        p.0 += precision;
        p.1 += 1;
        let r = per_type_recall_acc
            .entry(label.to_string())
            .or_insert((0.0, 0));
        r.0 += recall;
        r.1 += 1;
        evaluated += 1;
    }

    let per_type_precision: BTreeMap<String, f64> = per_type_precision_acc
        .into_iter()
        .map(|(label, (sum, count))| (label, sum / count.max(1) as f64))
        .collect();
    let per_type_recall: Vec<f64> = per_type_recall_acc
        .into_values()
        .map(|(sum, count)| sum / count.max(1) as f64)
        .collect();

    let average_precision = if per_type_precision.is_empty() {
        0.0
    } else {
        per_type_precision.values().sum::<f64>() / per_type_precision.len() as f64
    };
    let average_recall = if per_type_recall.is_empty() {
        0.0
    } else {
        per_type_recall.iter().sum::<f64>() / per_type_recall.len() as f64
    };

    RetrievalScores {
        average_precision,
        average_recall,
        per_type_precision,
        evaluated_columns: evaluated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn perfectly_separated_embeddings_score_one() {
        // Two types living on orthogonal axes.
        let emb = Matrix::from_rows(&[
            vec![1.0, 0.0],
            vec![0.9, 0.01],
            vec![0.95, 0.02],
            vec![0.0, 1.0],
            vec![0.01, 0.9],
        ])
        .unwrap();
        let l = labels(&["a", "a", "a", "b", "b"]);
        let scores = evaluate_retrieval(&emb, &l);
        assert!((scores.average_precision - 1.0).abs() < 1e-9);
        assert!((scores.average_recall - 1.0).abs() < 1e-9);
        assert_eq!(scores.evaluated_columns, 5);
        assert_eq!(scores.per_type_precision.len(), 2);
    }

    #[test]
    fn shuffled_embeddings_score_below_one() {
        // Embeddings that do not reflect the labels at all.
        let emb = Matrix::from_rows(&[
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
        ])
        .unwrap();
        let l = labels(&["a", "a", "b", "b"]);
        let scores = evaluate_retrieval(&emb, &l);
        assert!(scores.average_precision < 0.5);
    }

    #[test]
    fn singleton_types_are_skipped() {
        let emb = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.9, 0.1], vec![0.0, 1.0]]).unwrap();
        let l = labels(&["a", "a", "lonely"]);
        let scores = evaluate_retrieval(&emb, &l);
        assert_eq!(scores.evaluated_columns, 2);
        assert!(!scores.per_type_precision.contains_key("lonely"));
    }

    #[test]
    fn macro_averaging_weights_types_equally() {
        // Type "a" has 4 perfectly clustered columns; type "b" has 2 columns that are
        // poorly clustered (each nearer to "a" columns). Macro average should sit midway
        // rather than being dominated by the larger type.
        let emb = Matrix::from_rows(&[
            vec![1.0, 0.0],
            vec![1.0, 0.01],
            vec![1.0, 0.02],
            vec![1.0, 0.03],
            vec![0.9, 0.2],
            vec![-1.0, 1.0],
        ])
        .unwrap();
        let l = labels(&["a", "a", "a", "a", "b", "b"]);
        let scores = evaluate_retrieval(&emb, &l);
        let pa = scores.per_type_precision["a"];
        let pb = scores.per_type_precision["b"];
        assert!((scores.average_precision - (pa + pb) / 2.0).abs() < 1e-9);
        assert!(pa > pb);
    }

    #[test]
    fn all_singletons_gives_zero_scores() {
        let emb = Matrix::from_rows(&[vec![1.0], vec![2.0]]).unwrap();
        let l = labels(&["a", "b"]);
        let scores = evaluate_retrieval(&emb, &l);
        assert_eq!(scores.average_precision, 0.0);
        assert_eq!(scores.evaluated_columns, 0);
    }

    #[test]
    #[should_panic(expected = "one label per embedding row")]
    fn mismatched_lengths_panic() {
        let emb = Matrix::zeros(3, 2);
        evaluate_retrieval(&emb, &labels(&["a"]));
    }
}
