//! Client-facing model handles.
//!
//! The fit-once/embed-by-handle protocol needs a value clients can hold between
//! requests — and across processes — that names a fitted model without shipping the
//! corpus again. The fingerprint [`ModelKey`] already *is* that value (it addresses both
//! cache tiers and the on-disk snapshot), so a handle is nothing but its canonical hex
//! rendering wrapped in a type: there is no handle table to leak or garbage-collect, any
//! replica holding the same model resolves the same handle, and a client that re-fits an
//! identical corpus gets an identical handle back.

use crate::fingerprint::ModelKey;
use std::fmt;

/// A reference to a fitted model: the hex rendering of its [`ModelKey`]
/// (`<corpus:016x>-<config:016x>`, as returned by a `Fit` request).
///
/// Handles are *resolved*, never fitted: embedding through an unknown handle yields the
/// typed [`crate::ServeError::UnknownModel`] — the service cannot silently refit because
/// a handle carries no corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ModelHandle(ModelKey);

impl ModelHandle {
    /// The underlying model key.
    pub fn key(self) -> ModelKey {
        self.0
    }

    /// The canonical hex rendering (the wire form).
    pub fn to_hex(self) -> String {
        self.0.to_hex()
    }

    /// Parse a [`ModelHandle::to_hex`] rendering; `None` for anything that is not a
    /// canonical `<corpus>-<config>` hex pair.
    pub fn from_hex(text: &str) -> Option<Self> {
        ModelKey::from_hex(text).map(ModelHandle)
    }

    /// [`ModelHandle::from_hex`] with the canonical error message — the single wording
    /// every surface (wire layer, CLI) reports for a malformed handle, so the accepted
    /// format and its description cannot drift apart.
    ///
    /// # Errors
    /// Returns the explanation for anything that is not a canonical handle.
    pub fn parse(text: &str) -> Result<Self, String> {
        Self::from_hex(text).ok_or_else(|| {
            format!(
                "`{text}` is not a <corpus>-<config> model handle (two 16-digit \
                 lower-case hex halves joined by `-`, as returned by a Fit request)"
            )
        })
    }
}

impl From<ModelKey> for ModelHandle {
    fn from(key: ModelKey) -> Self {
        ModelHandle(key)
    }
}

impl fmt::Display for ModelHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handle_round_trips_through_hex() {
        let key = ModelKey {
            corpus: 0xdead_beef_0000_0001,
            config: 0x1234_5678_9abc_def0,
        };
        let handle = ModelHandle::from(key);
        assert_eq!(handle.key(), key);
        assert_eq!(ModelHandle::from_hex(&handle.to_hex()), Some(handle));
        assert_eq!(format!("{handle}"), handle.to_hex());
        assert_eq!(ModelHandle::from_hex("not-a-handle"), None);
    }
}
